//! V2V networking substrate for Cooper's feasibility study (§IV-G).
//!
//! The paper argues that region-of-interest-filtered point clouds fit
//! inside DSRC bandwidth: "the three presented are within the capacity
//! of DSRC bandwidth, as seen in real-world test". This crate provides
//! the machinery behind that claim:
//!
//! * [`DsrcChannel`] — an 802.11p-style channel model: data rates of
//!   3–27 Mbit/s, per-frame MAC/PHY overhead, MTU fragmentation and
//!   configurable loss.
//! * [`fragment`]/[`reassemble`] — splitting an exchange packet into
//!   MTU-sized fragments and recovering it (with explicit errors for
//!   missing or mixed fragments — the failure-injection surface).
//! * [`ExchangeScheduler`] + [`SharedMedium`] — the 1 Hz ROI exchange
//!   policy between cooperating vehicles, with per-second data-volume
//!   accounting that regenerates Figure 12.
//!
//! # Examples
//!
//! ```
//! use cooper_v2x::{DataRate, DsrcChannel, DsrcConfig};
//!
//! let channel = DsrcChannel::new(DsrcConfig::default());
//! let report = channel.transmit_sized(225_000, &mut rand::thread_rng()); // ~1.8 Mbit frame
//! assert!(report.complete);
//! // A full frame at 1 Hz uses a fraction of the 6 Mbit/s default rate.
//! assert!(report.airtime_s < 0.5);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod arq;
mod csma;
mod dsrc;
mod frag;
mod governor;
mod scheduler;

pub use arq::{transmit_with_arq, ArqConfig, ArqReport};
pub use csma::{CsmaConfig, CsmaMedium, CsmaReport};
pub use dsrc::{
    DataRate, DsrcChannel, DsrcConfig, GilbertElliott, LossModel, LossProcess, TransmissionReport,
};
pub use frag::{fragment, reassemble, salvage_prefix, Fragment, ReassemblyError, SalvagedPrefix};
pub use governor::{demand_roi, BandwidthGovernor};
pub use scheduler::{ExchangeScheduler, RoiTrace, SharedMedium};
