//! The DSRC (802.11p) channel model.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// The 802.11p data rates (10 MHz channel), as standardized by IEEE
/// 1609 / the DSRC profile the paper cites \[12\].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataRate {
    /// 3 Mbit/s (BPSK 1/2) — the most robust mandatory rate.
    Mbps3,
    /// 6 Mbit/s (QPSK 1/2) — the common default control rate.
    Mbps6,
    /// 12 Mbit/s (16-QAM 1/2).
    Mbps12,
    /// 27 Mbit/s (64-QAM 3/4) — the highest 10 MHz rate.
    Mbps27,
}

impl DataRate {
    /// All rates, ascending.
    pub const ALL: [DataRate; 4] = [
        DataRate::Mbps3,
        DataRate::Mbps6,
        DataRate::Mbps12,
        DataRate::Mbps27,
    ];

    /// The rate in bits per second.
    pub fn bits_per_second(self) -> f64 {
        match self {
            DataRate::Mbps3 => 3.0e6,
            DataRate::Mbps6 => 6.0e6,
            DataRate::Mbps12 => 12.0e6,
            DataRate::Mbps27 => 27.0e6,
        }
    }
}

impl std::fmt::Display for DataRate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} Mbit/s", self.bits_per_second() / 1e6)
    }
}

/// Channel model parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DsrcConfig {
    /// PHY data rate.
    pub data_rate: DataRate,
    /// Maximum payload bytes per frame (802.11 MSDU bound).
    pub mtu: usize,
    /// MAC + PHY header overhead per frame, bytes.
    pub per_frame_overhead: usize,
    /// Fixed per-frame channel-access time (preamble, SIFS, contention),
    /// seconds.
    pub per_frame_access_time: f64,
    /// Independent per-frame loss probability.
    pub loss_probability: f64,
}

impl Default for DsrcConfig {
    fn default() -> Self {
        DsrcConfig {
            data_rate: DataRate::Mbps6,
            mtu: 1460,
            per_frame_overhead: 64,
            per_frame_access_time: 110e-6,
            loss_probability: 0.0,
        }
    }
}

impl DsrcConfig {
    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns a message for the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.mtu == 0 {
            return Err("MTU must be positive".into());
        }
        if !(0.0..1.0).contains(&self.loss_probability) {
            return Err("loss probability must be in [0, 1)".into());
        }
        if self.per_frame_access_time < 0.0 {
            return Err("access time must be non-negative".into());
        }
        Ok(())
    }
}

/// The outcome of transmitting one application payload.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransmissionReport {
    /// Number of link-layer frames used.
    pub frames: usize,
    /// Frames actually delivered.
    pub frames_delivered: usize,
    /// Total bytes put on the air (payload + per-frame overhead).
    pub bytes_on_air: usize,
    /// Total air time consumed, seconds.
    pub airtime_s: f64,
    /// `true` when every frame was delivered.
    pub complete: bool,
}

/// A DSRC channel.
///
/// # Examples
///
/// ```
/// use cooper_v2x::{DsrcChannel, DsrcConfig};
///
/// let channel = DsrcChannel::new(DsrcConfig::default());
/// // One ~210 KB LiDAR frame (the paper's compressed scan size).
/// let report = channel.transmit_sized(210_000, &mut rand::thread_rng());
/// assert!(report.complete);
/// assert!(report.frames > 100); // fragmented over the MTU
/// ```
#[derive(Debug, Clone)]
pub struct DsrcChannel {
    config: DsrcConfig,
}

impl DsrcChannel {
    /// Creates a channel.
    ///
    /// # Panics
    ///
    /// Panics when `config` fails [`DsrcConfig::validate`].
    pub fn new(config: DsrcConfig) -> Self {
        if let Err(msg) = config.validate() {
            panic!("invalid DSRC config: {msg}");
        }
        DsrcChannel { config }
    }

    /// The channel configuration.
    pub fn config(&self) -> &DsrcConfig {
        &self.config
    }

    /// Number of link-layer frames needed for `payload_bytes`.
    pub fn frames_for(&self, payload_bytes: usize) -> usize {
        payload_bytes.div_ceil(self.config.mtu).max(1)
    }

    /// Air time (seconds) to move `payload_bytes`, ignoring loss.
    pub fn airtime_for(&self, payload_bytes: usize) -> f64 {
        let frames = self.frames_for(payload_bytes);
        let bytes_on_air = payload_bytes + frames * self.config.per_frame_overhead;
        bytes_on_air as f64 * 8.0 / self.config.data_rate.bits_per_second()
            + frames as f64 * self.config.per_frame_access_time
    }

    /// Effective goodput (payload bits per second) for payloads of the
    /// given size — what the feasibility comparison uses.
    pub fn goodput_for(&self, payload_bytes: usize) -> f64 {
        payload_bytes as f64 * 8.0 / self.airtime_for(payload_bytes)
    }

    /// Transmits a payload of the given size, sampling per-frame loss.
    pub fn transmit_sized<R: Rng + ?Sized>(
        &self,
        payload_bytes: usize,
        rng: &mut R,
    ) -> TransmissionReport {
        let frames = self.frames_for(payload_bytes);
        let mut delivered = 0usize;
        for _ in 0..frames {
            if self.config.loss_probability == 0.0
                || rng.gen::<f64>() >= self.config.loss_probability
            {
                delivered += 1;
            }
        }
        TransmissionReport {
            frames,
            frames_delivered: delivered,
            bytes_on_air: payload_bytes + frames * self.config.per_frame_overhead,
            airtime_s: self.airtime_for(payload_bytes),
            complete: delivered == frames,
        }
    }

    /// Fraction of channel capacity consumed by an application sending
    /// `bytes_per_second` continuously. Values above 1.0 mean the
    /// channel cannot carry the load.
    pub fn utilization(&self, bytes_per_second: f64) -> f64 {
        // Approximate: payload of one second, fragmented.
        self.airtime_for(bytes_per_second.ceil() as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rates_ascend() {
        let mut prev = 0.0;
        for r in DataRate::ALL {
            assert!(r.bits_per_second() > prev);
            prev = r.bits_per_second();
            assert!(!format!("{r}").is_empty());
        }
    }

    #[test]
    fn fragmentation_counts() {
        let ch = DsrcChannel::new(DsrcConfig::default());
        assert_eq!(ch.frames_for(0), 1);
        assert_eq!(ch.frames_for(1460), 1);
        assert_eq!(ch.frames_for(1461), 2);
        assert_eq!(ch.frames_for(14600), 10);
    }

    #[test]
    fn airtime_scales_with_payload_and_rate() {
        let slow = DsrcChannel::new(DsrcConfig {
            data_rate: DataRate::Mbps3,
            ..DsrcConfig::default()
        });
        let fast = DsrcChannel::new(DsrcConfig {
            data_rate: DataRate::Mbps27,
            ..DsrcConfig::default()
        });
        let payload = 225_000; // ~1.8 Mbit
        assert!(slow.airtime_for(payload) > fast.airtime_for(payload));
        // 1.8 Mbit over 3 Mbit/s is at least 0.6 s of raw air time.
        assert!(slow.airtime_for(payload) > 0.6);
        // And over 27 Mbit/s well under 0.2 s.
        assert!(fast.airtime_for(payload) < 0.2);
    }

    #[test]
    fn paper_full_frame_fits_at_one_hertz() {
        // The paper's costliest case: ~1.8 Mbit/frame/car at 1 Hz, two
        // cars. Even at the 6 Mbit/s default both directions fit with
        // headroom.
        let ch = DsrcChannel::new(DsrcConfig::default());
        let per_car = ch.airtime_for(225_000);
        assert!(2.0 * per_car < 1.0, "two cars need {} s/s", 2.0 * per_car);
    }

    #[test]
    fn goodput_below_phy_rate() {
        let ch = DsrcChannel::new(DsrcConfig::default());
        let goodput = ch.goodput_for(100_000);
        assert!(goodput < ch.config().data_rate.bits_per_second());
        assert!(goodput > 0.5 * ch.config().data_rate.bits_per_second());
    }

    #[test]
    fn lossless_channel_is_complete() {
        let ch = DsrcChannel::new(DsrcConfig::default());
        let mut rng = StdRng::seed_from_u64(0);
        let r = ch.transmit_sized(50_000, &mut rng);
        assert!(r.complete);
        assert_eq!(r.frames, r.frames_delivered);
        assert!(r.bytes_on_air > 50_000);
    }

    #[test]
    fn lossy_channel_drops_frames() {
        let ch = DsrcChannel::new(DsrcConfig {
            loss_probability: 0.5,
            ..DsrcConfig::default()
        });
        let mut rng = StdRng::seed_from_u64(1);
        let r = ch.transmit_sized(500_000, &mut rng);
        assert!(!r.complete);
        let ratio = r.frames_delivered as f64 / r.frames as f64;
        assert!((0.4..0.6).contains(&ratio), "delivery ratio {ratio}");
    }

    #[test]
    fn utilization_over_capacity() {
        let ch = DsrcChannel::new(DsrcConfig {
            data_rate: DataRate::Mbps3,
            ..DsrcConfig::default()
        });
        // 3 Mbit/s of payload on a 3 Mbit/s channel: overhead pushes it
        // past capacity.
        assert!(ch.utilization(375_000.0) > 1.0);
        assert!(ch.utilization(10_000.0) < 0.1);
    }

    #[test]
    #[should_panic(expected = "invalid DSRC config")]
    fn invalid_config_panics() {
        let _ = DsrcChannel::new(DsrcConfig {
            mtu: 0,
            ..DsrcConfig::default()
        });
    }

    #[test]
    fn validate_messages() {
        let c = DsrcConfig {
            loss_probability: 1.0,
            ..DsrcConfig::default()
        };
        assert!(c.validate().unwrap_err().contains("loss"));
        let c2 = DsrcConfig {
            per_frame_access_time: -1.0,
            ..DsrcConfig::default()
        };
        assert!(c2.validate().unwrap_err().contains("access"));
    }
}
