//! The DSRC (802.11p) channel model.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// The 802.11p data rates (10 MHz channel), as standardized by IEEE
/// 1609 / the DSRC profile the paper cites \[12\].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataRate {
    /// 3 Mbit/s (BPSK 1/2) — the most robust mandatory rate.
    Mbps3,
    /// 6 Mbit/s (QPSK 1/2) — the common default control rate.
    Mbps6,
    /// 12 Mbit/s (16-QAM 1/2).
    Mbps12,
    /// 27 Mbit/s (64-QAM 3/4) — the highest 10 MHz rate.
    Mbps27,
}

impl DataRate {
    /// All rates, ascending.
    pub const ALL: [DataRate; 4] = [
        DataRate::Mbps3,
        DataRate::Mbps6,
        DataRate::Mbps12,
        DataRate::Mbps27,
    ];

    /// The rate in bits per second.
    pub fn bits_per_second(self) -> f64 {
        match self {
            DataRate::Mbps3 => 3.0e6,
            DataRate::Mbps6 => 6.0e6,
            DataRate::Mbps12 => 12.0e6,
            DataRate::Mbps27 => 27.0e6,
        }
    }
}

impl std::fmt::Display for DataRate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} Mbit/s", self.bits_per_second() / 1e6)
    }
}

/// The Gilbert–Elliott two-state burst-loss parameters.
///
/// Real 802.11p channels do not lose frames independently: fades and
/// hidden-terminal collisions arrive in *bursts*. The Gilbert–Elliott
/// model captures this with a two-state Markov chain — a `Good` state
/// with low frame loss and a `Bad` state with high loss — whose state
/// transitions happen once per transmitted frame.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GilbertElliott {
    /// Per-frame probability of entering the bad state from the good
    /// state.
    pub p_good_to_bad: f64,
    /// Per-frame probability of recovering from the bad state. Its
    /// reciprocal is the mean burst length in frames.
    pub p_bad_to_good: f64,
    /// Frame-loss probability while in the good state.
    pub loss_good: f64,
    /// Frame-loss probability while in the bad state.
    pub loss_bad: f64,
}

impl GilbertElliott {
    /// Builds a bursty profile whose long-run frame-loss rate is
    /// approximately `loss_rate`, with a mean burst length of 8 frames
    /// and a 75 % in-burst loss probability.
    ///
    /// # Panics
    ///
    /// Panics when `loss_rate` is outside `[0, 0.7)` — higher rates
    /// cannot be reached with the fixed in-burst loss probability.
    pub fn from_loss_rate(loss_rate: f64) -> Self {
        assert!(
            (0.0..0.7).contains(&loss_rate),
            "burst loss rate must be in [0, 0.7)"
        );
        let loss_bad = 0.75;
        let p_bad_to_good = 0.125; // mean burst length: 8 frames
        let stationary_bad = loss_rate / loss_bad;
        let p_good_to_bad = if stationary_bad == 0.0 {
            0.0
        } else {
            p_bad_to_good * stationary_bad / (1.0 - stationary_bad)
        };
        GilbertElliott {
            p_good_to_bad,
            p_bad_to_good,
            loss_good: 0.0,
            loss_bad,
        }
    }

    /// Long-run fraction of frames spent in the bad state.
    pub fn stationary_bad(&self) -> f64 {
        if self.p_good_to_bad == 0.0 && self.p_bad_to_good == 0.0 {
            return 0.0;
        }
        self.p_good_to_bad / (self.p_good_to_bad + self.p_bad_to_good)
    }

    /// Long-run expected frame-loss rate.
    pub fn expected_loss(&self) -> f64 {
        let bad = self.stationary_bad();
        bad * self.loss_bad + (1.0 - bad) * self.loss_good
    }

    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns a message for the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        for (name, p) in [
            ("p_good_to_bad", self.p_good_to_bad),
            ("p_bad_to_good", self.p_bad_to_good),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{name} must be in [0, 1]"));
            }
        }
        for (name, p) in [("loss_good", self.loss_good), ("loss_bad", self.loss_bad)] {
            if !(0.0..1.0).contains(&p) {
                return Err(format!("{name} must be in [0, 1)"));
            }
        }
        Ok(())
    }
}

/// How per-frame loss is sampled.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum LossModel {
    /// Independent per-frame loss with
    /// [`DsrcConfig::loss_probability`] — the original model.
    #[default]
    Independent,
    /// Gilbert–Elliott burst loss; `loss_probability` is ignored.
    GilbertElliott(GilbertElliott),
}

/// Per-transfer frame-loss sampler.
///
/// Holds the channel state that persists across the frames of one
/// transfer — the Gilbert–Elliott good/bad state — so burst
/// correlation spans fragments (and ARQ retransmission rounds) of one
/// message while outcomes stay independent of how transfers are
/// ordered. Obtain one per transfer via [`DsrcChannel::loss_process`].
#[derive(Debug, Clone)]
pub struct LossProcess {
    model: LossModel,
    iid_loss: f64,
    in_bad: bool,
}

impl LossProcess {
    /// Samples whether the next transmitted frame is lost, advancing
    /// the burst state.
    pub fn frame_lost<R: Rng + ?Sized>(&mut self, rng: &mut R) -> bool {
        match self.model {
            LossModel::Independent => self.iid_loss > 0.0 && rng.gen::<f64>() < self.iid_loss,
            LossModel::GilbertElliott(ge) => {
                let loss = if self.in_bad {
                    ge.loss_bad
                } else {
                    ge.loss_good
                };
                let lost = loss > 0.0 && rng.gen::<f64>() < loss;
                let flip = if self.in_bad {
                    ge.p_bad_to_good
                } else {
                    ge.p_good_to_bad
                };
                if flip > 0.0 && rng.gen::<f64>() < flip {
                    self.in_bad = !self.in_bad;
                }
                lost
            }
        }
    }

    /// Whether the process is currently in the bad (burst) state.
    /// Always `false` for the independent model.
    pub fn in_bad_state(&self) -> bool {
        self.in_bad
    }
}

/// Channel model parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DsrcConfig {
    /// PHY data rate.
    pub data_rate: DataRate,
    /// Maximum payload bytes per frame (802.11 MSDU bound).
    pub mtu: usize,
    /// MAC + PHY header overhead per frame, bytes.
    pub per_frame_overhead: usize,
    /// Fixed per-frame channel-access time (preamble, SIFS, contention),
    /// seconds.
    pub per_frame_access_time: f64,
    /// Independent per-frame loss probability, used when `loss_model`
    /// is [`LossModel::Independent`].
    pub loss_probability: f64,
    /// How per-frame loss is sampled (independent vs burst).
    pub loss_model: LossModel,
    /// Maximum extra per-frame latency (queueing / contention jitter),
    /// seconds; each frame adds a uniform draw from `[0, jitter_s]` to
    /// the delivery latency. Zero (the default) disables jitter and
    /// consumes no randomness.
    pub jitter_s: f64,
    /// Probability that a *delivered* frame arrives damaged (bit flips
    /// or mid-frame truncation that slipped past the PHY) — sampled
    /// independently of loss, per frame. Zero (the default) disables
    /// the corruption process and consumes no randomness, so enabling
    /// it never perturbs the random streams of corruption-free runs.
    pub corruption_probability: f64,
}

impl Default for DsrcConfig {
    fn default() -> Self {
        DsrcConfig {
            data_rate: DataRate::Mbps6,
            mtu: 1460,
            per_frame_overhead: 64,
            per_frame_access_time: 110e-6,
            loss_probability: 0.0,
            loss_model: LossModel::Independent,
            jitter_s: 0.0,
            corruption_probability: 0.0,
        }
    }
}

impl DsrcConfig {
    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns a message for the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.mtu == 0 {
            return Err("MTU must be positive".into());
        }
        if !(0.0..1.0).contains(&self.loss_probability) {
            return Err("loss probability must be in [0, 1)".into());
        }
        if self.per_frame_access_time < 0.0 {
            return Err("access time must be non-negative".into());
        }
        if !(self.jitter_s >= 0.0 && self.jitter_s.is_finite()) {
            return Err("jitter must be non-negative and finite".into());
        }
        if !(0.0..1.0).contains(&self.corruption_probability) {
            return Err("corruption probability must be in [0, 1)".into());
        }
        if let LossModel::GilbertElliott(ge) = &self.loss_model {
            ge.validate()?;
        }
        Ok(())
    }
}

/// The outcome of transmitting one application payload.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransmissionReport {
    /// Number of link-layer frames used.
    pub frames: usize,
    /// Frames actually delivered.
    pub frames_delivered: usize,
    /// Total bytes put on the air (payload + per-frame overhead).
    pub bytes_on_air: usize,
    /// Total air time consumed, seconds.
    pub airtime_s: f64,
    /// End-to-end delivery latency: air time plus any sampled
    /// per-frame jitter, seconds. Equals `airtime_s` when
    /// [`DsrcConfig::jitter_s`] is zero.
    pub latency_s: f64,
    /// `true` when every frame was delivered.
    pub complete: bool,
}

/// A DSRC channel.
///
/// # Examples
///
/// ```
/// use cooper_v2x::{DsrcChannel, DsrcConfig};
///
/// let channel = DsrcChannel::new(DsrcConfig::default());
/// // One ~210 KB LiDAR frame (the paper's compressed scan size).
/// let report = channel.transmit_sized(210_000, &mut rand::thread_rng());
/// assert!(report.complete);
/// assert!(report.frames > 100); // fragmented over the MTU
/// ```
#[derive(Debug, Clone)]
pub struct DsrcChannel {
    config: DsrcConfig,
}

impl DsrcChannel {
    /// Creates a channel.
    ///
    /// # Panics
    ///
    /// Panics when `config` fails [`DsrcConfig::validate`].
    pub fn new(config: DsrcConfig) -> Self {
        if let Err(msg) = config.validate() {
            panic!("invalid DSRC config: {msg}");
        }
        DsrcChannel { config }
    }

    /// The channel configuration.
    pub fn config(&self) -> &DsrcConfig {
        &self.config
    }

    /// Number of link-layer frames needed for `payload_bytes`.
    pub fn frames_for(&self, payload_bytes: usize) -> usize {
        payload_bytes.div_ceil(self.config.mtu).max(1)
    }

    /// Air time (seconds) to move `payload_bytes`, ignoring loss.
    pub fn airtime_for(&self, payload_bytes: usize) -> f64 {
        let frames = self.frames_for(payload_bytes);
        let bytes_on_air = payload_bytes + frames * self.config.per_frame_overhead;
        bytes_on_air as f64 * 8.0 / self.config.data_rate.bits_per_second()
            + frames as f64 * self.config.per_frame_access_time
    }

    /// Effective goodput (payload bits per second) for payloads of the
    /// given size — what the feasibility comparison uses.
    pub fn goodput_for(&self, payload_bytes: usize) -> f64 {
        payload_bytes as f64 * 8.0 / self.airtime_for(payload_bytes)
    }

    /// Starts a fresh per-transfer loss process. For the
    /// Gilbert–Elliott model the initial burst state is sampled from
    /// the chain's stationary distribution using `rng`; the independent
    /// model consumes no randomness here.
    pub fn loss_process<R: Rng + ?Sized>(&self, rng: &mut R) -> LossProcess {
        let in_bad = match &self.config.loss_model {
            LossModel::Independent => false,
            LossModel::GilbertElliott(ge) => {
                let stationary = ge.stationary_bad();
                stationary > 0.0 && rng.gen::<f64>() < stationary
            }
        };
        LossProcess {
            model: self.config.loss_model,
            iid_loss: self.config.loss_probability,
            in_bad,
        }
    }

    /// Samples the extra latency jitter for one frame; zero (and no
    /// randomness consumed) when [`DsrcConfig::jitter_s`] is zero.
    pub fn frame_jitter<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.config.jitter_s == 0.0 {
            0.0
        } else {
            rng.gen::<f64>() * self.config.jitter_s
        }
    }

    /// Transmits a payload of the given size, sampling per-frame loss
    /// (with the configured loss model) and latency jitter.
    pub fn transmit_sized<R: Rng + ?Sized>(
        &self,
        payload_bytes: usize,
        rng: &mut R,
    ) -> TransmissionReport {
        let frames = self.frames_for(payload_bytes);
        let mut process = self.loss_process(rng);
        let mut delivered = 0usize;
        let mut jitter = 0.0;
        for _ in 0..frames {
            if !process.frame_lost(rng) {
                delivered += 1;
            }
            jitter += self.frame_jitter(rng);
        }
        let airtime_s = self.airtime_for(payload_bytes);
        TransmissionReport {
            frames,
            frames_delivered: delivered,
            bytes_on_air: payload_bytes + frames * self.config.per_frame_overhead,
            airtime_s,
            latency_s: airtime_s + jitter,
            complete: delivered == frames,
        }
    }

    /// Fraction of channel capacity consumed by an application sending
    /// `bytes_per_second` continuously. Values above 1.0 mean the
    /// channel cannot carry the load.
    pub fn utilization(&self, bytes_per_second: f64) -> f64 {
        // Approximate: payload of one second, fragmented.
        self.airtime_for(bytes_per_second.ceil() as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rates_ascend() {
        let mut prev = 0.0;
        for r in DataRate::ALL {
            assert!(r.bits_per_second() > prev);
            prev = r.bits_per_second();
            assert!(!format!("{r}").is_empty());
        }
    }

    #[test]
    fn fragmentation_counts() {
        let ch = DsrcChannel::new(DsrcConfig::default());
        assert_eq!(ch.frames_for(0), 1);
        assert_eq!(ch.frames_for(1460), 1);
        assert_eq!(ch.frames_for(1461), 2);
        assert_eq!(ch.frames_for(14600), 10);
    }

    #[test]
    fn airtime_scales_with_payload_and_rate() {
        let slow = DsrcChannel::new(DsrcConfig {
            data_rate: DataRate::Mbps3,
            ..DsrcConfig::default()
        });
        let fast = DsrcChannel::new(DsrcConfig {
            data_rate: DataRate::Mbps27,
            ..DsrcConfig::default()
        });
        let payload = 225_000; // ~1.8 Mbit
        assert!(slow.airtime_for(payload) > fast.airtime_for(payload));
        // 1.8 Mbit over 3 Mbit/s is at least 0.6 s of raw air time.
        assert!(slow.airtime_for(payload) > 0.6);
        // And over 27 Mbit/s well under 0.2 s.
        assert!(fast.airtime_for(payload) < 0.2);
    }

    #[test]
    fn paper_full_frame_fits_at_one_hertz() {
        // The paper's costliest case: ~1.8 Mbit/frame/car at 1 Hz, two
        // cars. Even at the 6 Mbit/s default both directions fit with
        // headroom.
        let ch = DsrcChannel::new(DsrcConfig::default());
        let per_car = ch.airtime_for(225_000);
        assert!(2.0 * per_car < 1.0, "two cars need {} s/s", 2.0 * per_car);
    }

    #[test]
    fn goodput_below_phy_rate() {
        let ch = DsrcChannel::new(DsrcConfig::default());
        let goodput = ch.goodput_for(100_000);
        assert!(goodput < ch.config().data_rate.bits_per_second());
        assert!(goodput > 0.5 * ch.config().data_rate.bits_per_second());
    }

    #[test]
    fn lossless_channel_is_complete() {
        let ch = DsrcChannel::new(DsrcConfig::default());
        let mut rng = StdRng::seed_from_u64(0);
        let r = ch.transmit_sized(50_000, &mut rng);
        assert!(r.complete);
        assert_eq!(r.frames, r.frames_delivered);
        assert!(r.bytes_on_air > 50_000);
    }

    #[test]
    fn lossy_channel_drops_frames() {
        let ch = DsrcChannel::new(DsrcConfig {
            loss_probability: 0.5,
            ..DsrcConfig::default()
        });
        let mut rng = StdRng::seed_from_u64(1);
        let r = ch.transmit_sized(500_000, &mut rng);
        assert!(!r.complete);
        let ratio = r.frames_delivered as f64 / r.frames as f64;
        assert!((0.4..0.6).contains(&ratio), "delivery ratio {ratio}");
    }

    #[test]
    fn utilization_over_capacity() {
        let ch = DsrcChannel::new(DsrcConfig {
            data_rate: DataRate::Mbps3,
            ..DsrcConfig::default()
        });
        // 3 Mbit/s of payload on a 3 Mbit/s channel: overhead pushes it
        // past capacity.
        assert!(ch.utilization(375_000.0) > 1.0);
        assert!(ch.utilization(10_000.0) < 0.1);
    }

    #[test]
    #[should_panic(expected = "invalid DSRC config")]
    fn invalid_config_panics() {
        let _ = DsrcChannel::new(DsrcConfig {
            mtu: 0,
            ..DsrcConfig::default()
        });
    }

    #[test]
    fn gilbert_elliott_hits_target_loss_rate() {
        let ge = GilbertElliott::from_loss_rate(0.1);
        assert!((ge.expected_loss() - 0.1).abs() < 1e-9);
        let ch = DsrcChannel::new(DsrcConfig {
            loss_model: LossModel::GilbertElliott(ge),
            ..DsrcConfig::default()
        });
        let mut rng = StdRng::seed_from_u64(7);
        let mut frames = 0usize;
        let mut lost = 0usize;
        for _ in 0..200 {
            let r = ch.transmit_sized(100_000, &mut rng);
            frames += r.frames;
            lost += r.frames - r.frames_delivered;
        }
        let rate = lost as f64 / frames as f64;
        assert!((0.05..0.15).contains(&rate), "empirical loss {rate}");
    }

    #[test]
    fn gilbert_elliott_losses_are_bursty() {
        // Same long-run loss rate, but burst losses cluster: the number
        // of *incomplete transfers of few frames* must be much lower
        // than under independent loss, while whole transfers still fail.
        let ge = DsrcChannel::new(DsrcConfig {
            loss_model: LossModel::GilbertElliott(GilbertElliott::from_loss_rate(0.1)),
            ..DsrcConfig::default()
        });
        let iid = DsrcChannel::new(DsrcConfig {
            loss_probability: 0.1,
            ..DsrcConfig::default()
        });
        let runs = 400;
        let count_incomplete = |ch: &DsrcChannel, seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..runs)
                .filter(|_| !ch.transmit_sized(30_000, &mut rng).complete)
                .count()
        };
        let ge_incomplete = count_incomplete(&ge, 3);
        let iid_incomplete = count_incomplete(&iid, 3);
        // 21 frames at 10% iid loss: ~89% of transfers lose a frame.
        // Bursty loss concentrates the same frame budget in fewer
        // transfers.
        assert!(
            ge_incomplete * 2 < iid_incomplete,
            "GE {ge_incomplete} vs iid {iid_incomplete}"
        );
        assert!(ge_incomplete > 0);
    }

    #[test]
    fn jitter_extends_latency_only_when_enabled() {
        let quiet = DsrcChannel::new(DsrcConfig::default());
        let mut rng = StdRng::seed_from_u64(5);
        let r = quiet.transmit_sized(50_000, &mut rng);
        assert_eq!(r.latency_s, r.airtime_s);
        let jittery = DsrcChannel::new(DsrcConfig {
            jitter_s: 1e-3,
            ..DsrcConfig::default()
        });
        let r = jittery.transmit_sized(50_000, &mut rng);
        assert!(r.latency_s > r.airtime_s);
        assert!(r.latency_s < r.airtime_s + r.frames as f64 * 1e-3);
    }

    #[test]
    fn validate_messages() {
        let c = DsrcConfig {
            loss_probability: 1.0,
            ..DsrcConfig::default()
        };
        assert!(c.validate().unwrap_err().contains("loss"));
        let c2 = DsrcConfig {
            per_frame_access_time: -1.0,
            ..DsrcConfig::default()
        };
        assert!(c2.validate().unwrap_err().contains("access"));
    }
}
