//! `cooper-exec`: a deterministic scoped work-pool executor.
//!
//! The fleet simulation and the SPOD feature trunk have embarrassingly
//! parallel phases (per-vehicle scans, per-vehicle fusion, per-chunk
//! voxelization). This crate runs them across threads with one hard
//! guarantee: **results are bit-identical at any thread count**.
//!
//! The guarantee comes from the API shape, not from luck:
//!
//! * [`Executor::map`] returns results **in input order**, regardless of
//!   which worker computed which item or in what order items finished.
//! * [`Executor::map_chunks`] splits work into **fixed-size** chunks
//!   whose boundaries depend only on the chunk size — never on the
//!   thread count — so order-sensitive reductions (e.g. floating-point
//!   merges) see the same grouping on 1 thread and on 64.
//! * Closures receive the item index, so callers derive per-item state
//!   (RNG streams, labels) from stable identities instead of from a
//!   shared sequential cursor.
//!
//! Workers are spawned per call via [`std::thread::scope`] — the
//! workspace vendors no thread-pool crate, and scoped threads let the
//! closures borrow from the caller's stack without `'static` bounds. A
//! panic on any worker is propagated to the caller after all workers
//! have been joined, preserving the panic payload.
//!
//! # Examples
//!
//! ```
//! use cooper_exec::Executor;
//!
//! let exec = Executor::new(Some(4));
//! let squares = exec.map(&[1u64, 2, 3, 4, 5], |_, &x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16, 25]);
//! // Same input, any thread count: identical output.
//! assert_eq!(squares, Executor::new(Some(1)).map(&[1u64, 2, 3, 4, 5], |_, &x| x * x));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(clippy::unwrap_used)]

use std::sync::atomic::{AtomicUsize, Ordering};

/// Process-wide default thread count override; 0 means "not set, use
/// the hardware parallelism".
static DEFAULT_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Sets the process-wide default thread count used by
/// [`Executor::new`]`(None)`. `None` restores auto-detection
/// (hardware parallelism). The CLI's `--threads` flag lands here.
pub fn set_default_threads(threads: Option<usize>) {
    DEFAULT_THREADS.store(threads.unwrap_or(0), Ordering::Relaxed);
}

/// The thread count [`Executor::new`]`(None)` resolves to right now:
/// the [`set_default_threads`] override when set, otherwise the
/// hardware parallelism (at least 1).
pub fn default_threads() -> usize {
    match DEFAULT_THREADS.load(Ordering::Relaxed) {
        0 => std::thread::available_parallelism().map_or(1, usize::from),
        n => n,
    }
}

/// A deterministic work-pool executor with a fixed thread budget.
///
/// Cheap to construct (it holds only the thread count); threads are
/// scoped to each `map` call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Executor {
    threads: usize,
}

impl Executor {
    /// Creates an executor. `Some(n)` pins the budget to `n` threads
    /// (clamped to at least 1); `None` uses the process default — see
    /// [`set_default_threads`].
    pub fn new(threads: Option<usize>) -> Self {
        Executor {
            threads: threads.unwrap_or_else(default_threads).max(1),
        }
    }

    /// A single-threaded executor: every `map` runs inline on the
    /// caller's thread.
    pub fn sequential() -> Self {
        Executor { threads: 1 }
    }

    /// The thread budget.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Applies `f` to every item and returns the results **in input
    /// order**. `f` receives `(index, &item)`.
    ///
    /// Work is claimed dynamically (an atomic cursor), so uneven item
    /// costs balance across workers; the output order is fixed by the
    /// input regardless.
    ///
    /// # Panics
    ///
    /// Re-raises the first worker panic after all workers have joined.
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        self.map_in(items, || (), |i, item, ()| f(i, item))
    }

    /// Like [`Executor::map`], but every worker gets a private scratch
    /// value built by `scratch_factory`, passed to `f` as `&mut S`. Hot
    /// loops reuse the scratch's allocations across all items a worker
    /// processes instead of allocating per item.
    ///
    /// Which items share a scratch depends on work-claiming order, so
    /// the determinism guarantee puts one obligation on `f`: treat the
    /// scratch as **reusable buffers, never as carried state** — the
    /// result for an item must not depend on what previous items left
    /// in it.
    ///
    /// # Panics
    ///
    /// Re-raises the first worker panic after all workers have joined.
    pub fn map_in<T, S, R, FS, F>(&self, items: &[T], scratch_factory: FS, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        FS: Fn() -> S + Sync,
        F: Fn(usize, &T, &mut S) -> R + Sync,
    {
        let workers = self.threads.min(items.len());
        if workers <= 1 {
            let mut scratch = scratch_factory();
            return items
                .iter()
                .enumerate()
                .map(|(i, t)| f(i, t, &mut scratch))
                .collect();
        }

        let cursor = AtomicUsize::new(0);
        let mut collected: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut scratch = scratch_factory();
                        let mut local = Vec::new();
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            let Some(item) = items.get(i) else { break };
                            local.push((i, f(i, item, &mut scratch)));
                        }
                        local
                    })
                })
                .collect();
            let mut results = Vec::with_capacity(workers);
            let mut panic_payload = None;
            for handle in handles {
                match handle.join() {
                    Ok(local) => results.push(local),
                    Err(payload) => panic_payload = panic_payload.or(Some(payload)),
                }
            }
            if let Some(payload) = panic_payload {
                std::panic::resume_unwind(payload);
            }
            results
        });

        let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
        slots.resize_with(items.len(), || None);
        for (i, r) in collected.drain(..).flatten() {
            slots[i] = Some(r);
        }
        slots
            .into_iter()
            .map(|slot| slot.expect("every index claimed exactly once"))
            .collect()
    }

    /// Applies `f` to fixed-size chunks of `items` and returns the
    /// per-chunk results in chunk order. `f` receives
    /// `(chunk_index, chunk)`; every chunk except possibly the last has
    /// exactly `chunk_size` items.
    ///
    /// Because chunk boundaries depend only on `chunk_size`, a
    /// reduction over the returned vector (performed by the caller, in
    /// order) is bit-identical at any thread count — the contract the
    /// chunked voxelizer relies on.
    ///
    /// # Panics
    ///
    /// Panics when `chunk_size` is 0; re-raises worker panics.
    pub fn map_chunks<T, R, F>(&self, items: &[T], chunk_size: usize, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &[T]) -> R + Sync,
    {
        self.map_chunks_in(items, chunk_size, || (), |i, chunk, ()| f(i, chunk))
    }

    /// [`Executor::map_chunks`] with per-worker scratch: the chunked
    /// counterpart of [`Executor::map_in`], combining fixed chunk
    /// boundaries with reusable per-worker buffers. `f` receives
    /// `(chunk_index, chunk, &mut scratch)` and the same scratch
    /// obligation applies — buffers only, no carried state.
    ///
    /// # Panics
    ///
    /// Panics when `chunk_size` is 0; re-raises worker panics.
    pub fn map_chunks_in<T, S, R, FS, F>(
        &self,
        items: &[T],
        chunk_size: usize,
        scratch_factory: FS,
        f: F,
    ) -> Vec<R>
    where
        T: Sync,
        R: Send,
        FS: Fn() -> S + Sync,
        F: Fn(usize, &[T], &mut S) -> R + Sync,
    {
        assert!(chunk_size > 0, "chunk size must be positive");
        let chunks: Vec<&[T]> = items.chunks(chunk_size).collect();
        self.map_in(&chunks, scratch_factory, |i, chunk, scratch| {
            f(i, chunk, scratch)
        })
    }
}

impl Default for Executor {
    fn default() -> Self {
        Executor::new(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_input_order() {
        let items: Vec<u64> = (0..257).collect();
        for threads in [1, 2, 3, 8] {
            let exec = Executor::new(Some(threads));
            let out = exec.map(&items, |i, &x| {
                assert_eq!(i as u64, x);
                x * 3 + 1
            });
            assert_eq!(out, items.iter().map(|x| x * 3 + 1).collect::<Vec<_>>());
        }
    }

    #[test]
    fn map_is_thread_count_invariant_for_uneven_work() {
        let items: Vec<usize> = (0..64).collect();
        let work = |i: usize, &x: &usize| {
            // Uneven cost: later items spin longer, so finish order
            // scrambles across workers.
            let mut acc = x as u64;
            for k in 0..(x * 100) {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k as u64);
            }
            (i, acc)
        };
        let one = Executor::new(Some(1)).map(&items, work);
        let many = Executor::new(Some(7)).map(&items, work);
        assert_eq!(one, many);
    }

    #[test]
    fn map_chunks_fixed_boundaries() {
        let items: Vec<u32> = (0..10).collect();
        let exec = Executor::new(Some(4));
        let sums = exec.map_chunks(&items, 4, |ci, chunk| (ci, chunk.to_vec()));
        assert_eq!(sums.len(), 3);
        assert_eq!(sums[0], (0, vec![0, 1, 2, 3]));
        assert_eq!(sums[1], (1, vec![4, 5, 6, 7]));
        assert_eq!(sums[2], (2, vec![8, 9]));
    }

    #[test]
    fn empty_and_single_inputs() {
        let exec = Executor::new(Some(8));
        let empty: Vec<u8> = Vec::new();
        assert!(exec.map(&empty, |_, &x| x).is_empty());
        assert_eq!(exec.map(&[9u8], |_, &x| x + 1), vec![10]);
    }

    #[test]
    fn worker_panic_propagates_with_payload() {
        let exec = Executor::new(Some(4));
        let items: Vec<usize> = (0..32).collect();
        let result = std::panic::catch_unwind(|| {
            exec.map(&items, |_, &x| {
                if x == 17 {
                    panic!("boom at {x}");
                }
                x
            })
        });
        let payload = result.expect_err("panic must propagate");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
            .expect("string payload");
        assert!(msg.contains("boom at 17"), "payload: {msg}");
    }

    #[test]
    fn thread_budget_clamped_and_defaults() {
        assert_eq!(Executor::new(Some(0)).threads(), 1);
        assert_eq!(Executor::sequential().threads(), 1);
        assert!(Executor::new(None).threads() >= 1);
        assert!(default_threads() >= 1);
    }

    #[test]
    #[should_panic(expected = "chunk size must be positive")]
    fn zero_chunk_size_rejected() {
        let _ = Executor::sequential().map_chunks(&[1], 0, |_, c: &[i32]| c.len());
    }

    #[test]
    fn map_in_reuses_scratch_and_keeps_order() {
        let items: Vec<u32> = (0..100).collect();
        for threads in [1, 3, 8] {
            let exec = Executor::new(Some(threads));
            let out = exec.map_in(&items, Vec::<u32>::new, |i, &x, buf| {
                // Scratch used as a buffer: cleared per item, so the
                // result never depends on what a previous item left.
                buf.clear();
                buf.extend(0..=x);
                (i, buf.iter().sum::<u32>())
            });
            let expect: Vec<_> = items
                .iter()
                .map(|&x| (x as usize, x * (x + 1) / 2))
                .collect();
            assert_eq!(out, expect);
        }
    }

    #[test]
    fn map_chunks_in_matches_map_chunks() {
        let items: Vec<u64> = (0..1000).map(|i| i * 7 % 101).collect();
        let plain =
            Executor::new(Some(4)).map_chunks(&items, 128, |ci, c| (ci, c.iter().sum::<u64>()));
        let scratched =
            Executor::new(Some(4)).map_chunks_in(&items, 128, Vec::<u64>::new, |ci, c, buf| {
                buf.clear();
                buf.extend_from_slice(c);
                (ci, buf.iter().sum::<u64>())
            });
        assert_eq!(plain, scratched);
    }

    #[test]
    fn map_in_scratch_built_once_per_worker() {
        use std::sync::atomic::AtomicUsize;
        let factories = AtomicUsize::new(0);
        let items: Vec<u8> = vec![0; 64];
        let exec = Executor::new(Some(4));
        let _ = exec.map_in(
            &items,
            || {
                factories.fetch_add(1, Ordering::Relaxed);
            },
            |i, _, ()| i,
        );
        // One scratch per spawned worker, not one per item.
        assert!(factories.load(Ordering::Relaxed) <= 4);
    }
}
