//! Property-based tests for the LiDAR simulator.

use cooper_geometry::{Attitude, Pose, RigidTransform, Vec3};
use cooper_lidar_sim::{BeamModel, Entity, EntityId, GpsImuModel, LidarScanner, World};
use proptest::prelude::*;

fn small_beams() -> BeamModel {
    BeamModel::vlp16().noiseless().with_azimuth_steps(90)
}

fn car_layout() -> impl Strategy<Value = Vec<(f64, f64, f64)>> {
    prop::collection::vec((8.0..45.0f64, -3.0..3.0f64, -3.0..3.0f64), 1..6).prop_map(|mut cars| {
        // Spread cars radially so they never overlap the sensor or each
        // other: car i sits at radius r_i on its own bearing.
        for (i, car) in cars.iter_mut().enumerate() {
            car.1 = i as f64 * 1.1 - 2.5; // distinct bearings (radians)
        }
        cars
    })
}

fn world_with(cars: &[(f64, f64, f64)]) -> World {
    let mut world = World::new();
    for (i, &(r, bearing, yaw)) in cars.iter().enumerate() {
        let pos = Vec3::new(r * bearing.cos(), r * bearing.sin(), 0.0);
        world.add(Entity::car(EntityId(i as u32 + 1), pos, yaw));
    }
    world
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn every_return_lies_on_a_surface(cars in car_layout(), yaw in -3.0..3.0f64) {
        let world = world_with(&cars);
        let pose = Pose::new(Vec3::new(0.0, 0.0, 1.8), Attitude::from_yaw(yaw));
        let scan = LidarScanner::new(small_beams()).scan(&world, &pose, 0);
        let to_world = RigidTransform::from_pose(&pose);
        for p in scan.iter() {
            let w = to_world.apply(p.position);
            let on_ground = w.z.abs() < 0.05;
            let on_car = world
                .entities()
                .iter()
                .any(|e| e.shape.bounding_aabb().inflated(0.05).contains(w));
            prop_assert!(on_ground || on_car, "stray return at {w}");
        }
    }

    #[test]
    fn ranges_never_exceed_max(cars in car_layout()) {
        let world = world_with(&cars);
        let pose = Pose::new(Vec3::new(0.0, 0.0, 1.8), Attitude::level());
        let beams = small_beams();
        let scan = LidarScanner::new(beams.clone()).scan(&world, &pose, 1);
        for p in scan.iter() {
            prop_assert!(p.range() <= beams.max_range() + 1e-6);
        }
    }

    #[test]
    fn scans_are_reproducible(cars in car_layout(), seed in 0u64..1000) {
        let world = world_with(&cars);
        let pose = Pose::new(Vec3::new(0.0, 0.0, 1.8), Attitude::level());
        let scanner = LidarScanner::new(BeamModel::vlp16().with_azimuth_steps(90));
        prop_assert_eq!(
            scanner.scan(&world, &pose, seed),
            scanner.scan(&world, &pose, seed)
        );
    }

    #[test]
    fn gps_measurement_error_is_bounded(x in -100.0..100.0f64, y in -100.0..100.0f64,
                                        yaw in -3.0..3.0f64, seed in 0u64..100) {
        use cooper_geometry::GpsFix;
        use rand::SeedableRng;
        let origin = GpsFix::new(33.2075, -97.1526, 190.0);
        let model = GpsImuModel::realistic();
        let pose = Pose::new(Vec3::new(x, y, 1.8), Attitude::from_yaw(yaw));
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let est = model.measure(&pose, &origin, &mut rng);
        let err = est.to_pose(&origin).position.distance_xy(pose.position);
        // σ = 3.3 cm ⇒ anything past 30 cm (≈6σ per axis) is a bug.
        prop_assert!(err < 0.3, "GPS error {err}");
    }

    #[test]
    fn pose_estimate_round_trips_under_arbitrary_origins(
        x in -200.0..200.0f64, y in -200.0..200.0f64, z in 0.5..3.0f64,
        yaw in -3.0..3.0f64, pitch in -0.1..0.1f64, roll in -0.1..0.1f64,
        lat in -60.0..60.0f64, lon in -179.0..179.0f64, alt in -100.0..500.0f64,
    ) {
        use cooper_geometry::GpsFix;
        use cooper_lidar_sim::PoseEstimate;
        let origin = GpsFix::new(lat, lon, alt);
        let pose = Pose::new(Vec3::new(x, y, z), Attitude::new(yaw, pitch, roll));
        let back = PoseEstimate::from_pose(&pose, &origin).to_pose(&origin);
        // from_pose/to_pose invert each other through the
        // equirectangular GPS mapping: position error stays sub-mm at
        // V2V ranges for any plausible origin, attitude is copied
        // verbatim.
        prop_assert!(
            (back.position - pose.position).norm() < 1e-3,
            "round-trip drift {} at origin ({lat}, {lon})",
            (back.position - pose.position).norm()
        );
        prop_assert!((back.attitude.yaw - pose.attitude.yaw).abs() < 1e-12);
        prop_assert!((back.attitude.pitch - pose.attitude.pitch).abs() < 1e-12);
        prop_assert!((back.attitude.roll - pose.attitude.roll).abs() < 1e-12);
    }

    #[test]
    fn more_beams_never_fewer_points(cars in car_layout()) {
        let world = world_with(&cars);
        let pose = Pose::new(Vec3::new(0.0, 0.0, 1.8), Attitude::level());
        let sparse = LidarScanner::new(BeamModel::vlp16().noiseless().with_azimuth_steps(90))
            .scan(&world, &pose, 0);
        let dense = LidarScanner::new(BeamModel::hdl64().noiseless().with_azimuth_steps(90))
            .scan(&world, &pose, 0);
        // 64 beams over a narrower vertical FoV still see everything the
        // 16-beam unit sees of the scene below the horizon, plus more.
        prop_assert!(dense.len() >= sparse.len() / 2, "dense {} sparse {}", dense.len(), sparse.len());
    }
}
