//! Gaussian noise sampling (Box–Muller over `rand`).

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A zero-mean Gaussian noise source parameterized by its standard
/// deviation.
///
/// Implemented with the Box–Muller transform so the workspace does not
/// need a distribution crate beyond `rand` itself.
///
/// # Examples
///
/// ```
/// use cooper_lidar_sim::GaussianNoise;
/// use rand::SeedableRng;
///
/// let noise = GaussianNoise::new(0.02);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let sample = noise.sample(&mut rng);
/// assert!(sample.abs() < 0.2); // within 10 sigma, overwhelmingly likely
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct GaussianNoise {
    sigma: f64,
}

impl GaussianNoise {
    /// Creates a noise source with the given standard deviation.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative or non-finite.
    pub fn new(sigma: f64) -> Self {
        assert!(
            sigma >= 0.0 && sigma.is_finite(),
            "sigma must be non-negative, got {sigma}"
        );
        GaussianNoise { sigma }
    }

    /// The standard deviation.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Draws one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.sigma == 0.0 {
            return 0.0;
        }
        // Box–Muller: u1 in (0, 1] avoids ln(0).
        let u1: f64 = 1.0 - rng.gen::<f64>();
        let u2: f64 = rng.gen();
        let mag = (-2.0 * u1.ln()).sqrt();
        mag * (2.0 * std::f64::consts::PI * u2).cos() * self.sigma
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zero_sigma_is_deterministic_zero() {
        let mut rng = StdRng::seed_from_u64(0);
        let n = GaussianNoise::new(0.0);
        for _ in 0..10 {
            assert_eq!(n.sample(&mut rng), 0.0);
        }
    }

    #[test]
    fn sample_statistics_match_sigma() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = GaussianNoise::new(2.0);
        let count = 20_000;
        let samples: Vec<f64> = (0..count).map(|_| n.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / count as f64;
        let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / count as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.05, "std {}", var.sqrt());
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_sigma_panics() {
        let _ = GaussianNoise::new(-1.0);
    }

    #[test]
    fn sigma_accessor() {
        assert_eq!(GaussianNoise::new(0.5).sigma(), 0.5);
    }
}
