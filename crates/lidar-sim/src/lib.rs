//! Synthetic LiDAR world simulator for the Cooper reproduction.
//!
//! The Cooper paper evaluates on two real datasets: KITTI (64-beam
//! Velodyne HDL-64E, road scenes) and the authors' T&J dataset (16-beam
//! VLP-16, parking lots). Neither the raw recordings nor the golf cart
//! are available here, so this crate provides the closest synthetic
//! equivalent that exercises the same code paths:
//!
//! * [`World`] — a static scene of oriented-box entities (cars,
//!   pedestrians, cyclists, walls/buildings) over a ground plane.
//! * [`LidarScanner`] + [`BeamModel`] — a ray-cast scanner with the beam
//!   tables of real Velodyne units (16/32/64 beams), occlusion, range
//!   noise and dropout. Scans reproduce the geometric properties Cooper's
//!   claims rest on: occluded objects yield no points, distant objects
//!   yield few, and two viewpoints see complementary surfaces.
//! * [`GpsImuModel`] — GPS/IMU measurement with configurable drift, plus
//!   the paper's Figure-10 skew protocol ([`SkewMode`]).
//! * [`scenario`] — the scenario library: four KITTI-style road scenes
//!   (T-junction, stop sign, left turn, curve) and four T&J-style parking
//!   lots, each with multiple observer poses at the paper's Δd spacings.
//! * [`dataset`] — labelled random scenes for training and evaluating the
//!   SPOD detector.
//!
//! # Examples
//!
//! ```
//! use cooper_lidar_sim::{scenario, BeamModel, LidarScanner};
//!
//! let scene = scenario::t_junction();
//! let scanner = LidarScanner::new(BeamModel::hdl64());
//! let scan = scanner.scan(&scene.world, &scene.observers[0], 7);
//! assert!(scan.len() > 1_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod beam;
pub mod dataset;
mod entity;
mod faults;
mod noise;
mod ray;
mod scanner;
pub mod scenario;
mod sensors;
mod world;

pub use beam::BeamModel;
pub use entity::{Entity, EntityId, ObjectClass};
pub use faults::{FaultInjector, FaultKind, FaultPlan, FaultSpec, FaultedMeasurement, ScanFaults};
pub use noise::GaussianNoise;
pub use scanner::LidarScanner;
pub use sensors::{GpsImuModel, PoseEstimate, SkewMode};
pub use world::World;
