//! Scene entities: the objects a LiDAR scan can hit.

use std::fmt;

use cooper_geometry::{Obb3, Vec3};
use serde::{Deserialize, Serialize};

/// Identifier of an entity within one [`crate::World`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct EntityId(pub u32);

impl fmt::Display for EntityId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// Semantic class of a scene entity.
///
/// `Car`, `Pedestrian` and `Cyclist` are the detection targets the paper
/// (following KITTI/VoxelNet) evaluates; `Background` covers buildings,
/// walls, parked trailers, trees — geometry that occludes but is not a
/// detection target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ObjectClass {
    /// A passenger vehicle (typical box 4.5 × 1.8 × 1.5 m).
    Car,
    /// A pedestrian (typical box 0.6 × 0.6 × 1.7 m).
    Pedestrian,
    /// A cyclist (typical box 1.8 × 0.6 × 1.7 m).
    Cyclist,
    /// Static occluding geometry — never a detection target.
    Background,
}

impl ObjectClass {
    /// The detection-target classes, in KITTI order.
    pub const TARGETS: [ObjectClass; 3] = [
        ObjectClass::Car,
        ObjectClass::Pedestrian,
        ObjectClass::Cyclist,
    ];

    /// `true` for classes the detector is trained to find.
    pub fn is_target(self) -> bool {
        !matches!(self, ObjectClass::Background)
    }

    /// Canonical box size for the class (metres), used by scene
    /// generators and anchor design.
    pub fn canonical_size(self) -> Vec3 {
        match self {
            ObjectClass::Car => Vec3::new(4.5, 1.8, 1.5),
            ObjectClass::Pedestrian => Vec3::new(0.6, 0.6, 1.7),
            ObjectClass::Cyclist => Vec3::new(1.8, 0.6, 1.7),
            ObjectClass::Background => Vec3::new(1.0, 1.0, 1.0),
        }
    }
}

impl fmt::Display for ObjectClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ObjectClass::Car => "car",
            ObjectClass::Pedestrian => "pedestrian",
            ObjectClass::Cyclist => "cyclist",
            ObjectClass::Background => "background",
        };
        f.write_str(name)
    }
}

/// One object in the simulated world: an oriented box with a semantic
/// class and a surface reflectance.
///
/// # Examples
///
/// ```
/// use cooper_geometry::{Obb3, Vec3};
/// use cooper_lidar_sim::{Entity, EntityId, ObjectClass};
///
/// let car = Entity::car(EntityId(1), Vec3::new(10.0, 2.0, 0.0), 0.3);
/// assert_eq!(car.class, ObjectClass::Car);
/// assert!((car.shape.center.z - 0.75).abs() < 1e-12); // sits on the ground
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Entity {
    /// Identifier, unique within its world.
    pub id: EntityId,
    /// Semantic class.
    pub class: ObjectClass,
    /// Geometry: an oriented box in world coordinates.
    pub shape: Obb3,
    /// Surface reflectance in `[0, 1]`.
    pub reflectance: f32,
    /// World-frame velocity, m/s (zero for parked/static geometry).
    /// Used by [`crate::World::advanced`] to evolve dynamic scenes.
    pub velocity: Vec3,
}

impl Entity {
    /// Creates an entity from explicit geometry.
    pub fn new(id: EntityId, class: ObjectClass, shape: Obb3, reflectance: f32) -> Self {
        Entity {
            id,
            class,
            shape,
            reflectance: reflectance.clamp(0.0, 1.0),
            velocity: Vec3::ZERO,
        }
    }

    /// Returns this entity with a world-frame velocity (m/s).
    pub fn with_velocity(mut self, velocity: Vec3) -> Self {
        self.velocity = velocity;
        self
    }

    /// Returns this entity displaced by `velocity × dt` seconds.
    pub fn advanced(&self, dt: f64) -> Entity {
        let mut moved = self.clone();
        moved.shape = Obb3::new(
            self.shape.center + self.velocity * dt,
            self.shape.size,
            self.shape.yaw,
        );
        moved
    }

    /// Convenience constructor for a class-canonical entity resting on
    /// the ground plane (`z = 0`) at `ground_xy` with heading `yaw`.
    pub fn standing(id: EntityId, class: ObjectClass, ground_xy: Vec3, yaw: f64) -> Self {
        let size = class.canonical_size();
        let center = Vec3::new(ground_xy.x, ground_xy.y, size.z * 0.5);
        let reflectance = match class {
            ObjectClass::Car => 0.45,
            ObjectClass::Pedestrian => 0.30,
            ObjectClass::Cyclist => 0.35,
            ObjectClass::Background => 0.20,
        };
        Entity::new(id, class, Obb3::new(center, size, yaw), reflectance)
    }

    /// A canonical car resting on the ground at `(x, y)` with heading
    /// `yaw`.
    pub fn car(id: EntityId, ground_xy: Vec3, yaw: f64) -> Self {
        Entity::standing(id, ObjectClass::Car, ground_xy, yaw)
    }

    /// A wall segment: a thin, tall background box from `start` to `end`
    /// (ground-plane endpoints), `height` metres tall and `thickness`
    /// metres thick.
    pub fn wall(id: EntityId, start: Vec3, end: Vec3, height: f64, thickness: f64) -> Self {
        let mid = (start + end) * 0.5;
        let length = start.distance_xy(end);
        let yaw = (end - start).azimuth();
        let center = Vec3::new(mid.x, mid.y, height * 0.5);
        Entity::new(
            id,
            ObjectClass::Background,
            Obb3::new(center, Vec3::new(length, thickness, height), yaw),
            0.25,
        )
    }
}

impl fmt::Display for Entity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} at {}", self.class, self.id, self.shape.center)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_targets() {
        assert!(ObjectClass::Car.is_target());
        assert!(ObjectClass::Pedestrian.is_target());
        assert!(ObjectClass::Cyclist.is_target());
        assert!(!ObjectClass::Background.is_target());
        assert_eq!(ObjectClass::TARGETS.len(), 3);
    }

    #[test]
    fn standing_entity_rests_on_ground() {
        for class in ObjectClass::TARGETS {
            let e = Entity::standing(EntityId(0), class, Vec3::new(5.0, 5.0, 0.0), 0.3);
            let (z0, z1) = e.shape.z_range();
            assert!(z0.abs() < 1e-12, "{class} floats: z0 = {z0}");
            assert!((z1 - class.canonical_size().z).abs() < 1e-12);
        }
    }

    #[test]
    fn wall_spans_endpoints() {
        let w = Entity::wall(
            EntityId(9),
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(10.0, 0.0, 0.0),
            3.0,
            0.4,
        );
        assert_eq!(w.class, ObjectClass::Background);
        assert!(w.shape.contains(Vec3::new(0.1, 0.0, 1.0)));
        assert!(w.shape.contains(Vec3::new(9.9, 0.0, 2.9)));
        assert!(!w.shape.contains(Vec3::new(5.0, 1.0, 1.0)));
    }

    #[test]
    fn diagonal_wall_orientation() {
        let w = Entity::wall(
            EntityId(9),
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(10.0, 10.0, 0.0),
            2.0,
            0.2,
        );
        assert!(w.shape.contains(Vec3::new(5.0, 5.0, 1.0)));
        assert!(!w.shape.contains(Vec3::new(5.0, 0.0, 1.0)));
    }

    #[test]
    fn reflectance_clamped() {
        let e = Entity::new(
            EntityId(1),
            ObjectClass::Car,
            Obb3::new(Vec3::ZERO, Vec3::splat(1.0), 0.0),
            7.0,
        );
        assert_eq!(e.reflectance, 1.0);
    }

    #[test]
    fn display_impls() {
        let e = Entity::car(EntityId(3), Vec3::ZERO, 0.0);
        let s = format!("{e}");
        assert!(s.contains("car") && s.contains("#3"));
    }
}
