//! Labelled random scenes for training and evaluating the SPOD detector.
//!
//! The paper trains SPOD on labelled LiDAR data (KITTI). Without that
//! data, the detector in this reproduction is trained on procedurally
//! generated labelled scenes: random arrangements of cars, pedestrians,
//! cyclists and occluders, scanned by the simulated LiDAR. Labels are
//! expressed in the sensor frame, exactly like KITTI annotations.

use cooper_geometry::{Attitude, Obb3, Pose, RigidTransform, Vec3};
use cooper_pointcloud::PointCloud;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::{BeamModel, Entity, EntityId, LidarScanner, ObjectClass, World};

/// One ground-truth label: a class plus its sensor-frame box.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Label {
    /// The object class.
    pub class: ObjectClass,
    /// The box in the sensor frame.
    pub obb: Obb3,
}

/// A labelled scene: the world, the sensor pose that scanned it, the
/// resulting cloud, and the sensor-frame labels.
#[derive(Debug, Clone)]
pub struct LabelledScene {
    /// The generated world.
    pub world: World,
    /// Sensor pose used for the scan.
    pub sensor_pose: Pose,
    /// The scan in the sensor frame.
    pub cloud: PointCloud,
    /// Sensor-frame ground truth for all target-class entities.
    pub labels: Vec<Label>,
}

/// Controls random scene generation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SceneConfig {
    /// Cars per scene, inclusive range.
    pub cars: (usize, usize),
    /// Pedestrians per scene, inclusive range.
    pub pedestrians: (usize, usize),
    /// Cyclists per scene, inclusive range.
    pub cyclists: (usize, usize),
    /// Occluding walls per scene, inclusive range.
    pub walls: (usize, usize),
    /// Maximum placement radius around the sensor, metres.
    pub radius: f64,
    /// Sensor mount height, metres.
    pub mount_height: f64,
}

impl Default for SceneConfig {
    fn default() -> Self {
        SceneConfig {
            cars: (3, 8),
            pedestrians: (0, 3),
            cyclists: (0, 2),
            walls: (1, 3),
            radius: 45.0,
            mount_height: 1.8,
        }
    }
}

impl SceneConfig {
    /// Validates range ordering and geometry.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        for (name, (lo, hi)) in [
            ("cars", self.cars),
            ("pedestrians", self.pedestrians),
            ("cyclists", self.cyclists),
            ("walls", self.walls),
        ] {
            if lo > hi {
                return Err(format!("{name} range is inverted: {lo} > {hi}"));
            }
        }
        if self.radius <= 5.0 {
            return Err("radius must exceed 5 m".into());
        }
        if self.mount_height <= 0.0 {
            return Err("mount height must be positive".into());
        }
        Ok(())
    }
}

fn sample_count<R: Rng + ?Sized>(rng: &mut R, range: (usize, usize)) -> usize {
    if range.0 == range.1 {
        range.0
    } else {
        rng.gen_range(range.0..=range.1)
    }
}

/// Generates one labelled scene.
///
/// Entities are placed with a minimum mutual clearance and never on top
/// of the sensor; placement retries are bounded, so extremely crowded
/// configs may produce fewer entities than requested.
///
/// # Panics
///
/// Panics if `config` fails [`SceneConfig::validate`].
pub fn generate_scene(seed: u64, config: &SceneConfig, beam_model: &BeamModel) -> LabelledScene {
    if let Err(msg) = config.validate() {
        panic!("invalid scene config: {msg}");
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut world = World::new();
    let mut id = 0u32;
    let mut next_id = || {
        id += 1;
        EntityId(id)
    };
    let mut occupied: Vec<Vec3> = vec![Vec3::ZERO]; // sensor keep-out

    let place = |rng: &mut StdRng, occupied: &mut Vec<Vec3>, clearance: f64| -> Option<Vec3> {
        for _ in 0..64 {
            let r = rng.gen_range(6.0..config.radius);
            let theta = rng.gen_range(-std::f64::consts::PI..std::f64::consts::PI);
            let candidate = Vec3::new(r * theta.cos(), r * theta.sin(), 0.0);
            if occupied
                .iter()
                .all(|p| p.distance_xy(candidate) >= clearance)
            {
                occupied.push(candidate);
                return Some(candidate);
            }
        }
        None
    };

    let class_counts = [
        (ObjectClass::Car, sample_count(&mut rng, config.cars)),
        (
            ObjectClass::Pedestrian,
            sample_count(&mut rng, config.pedestrians),
        ),
        (
            ObjectClass::Cyclist,
            sample_count(&mut rng, config.cyclists),
        ),
    ];
    for (class, count) in class_counts {
        for _ in 0..count {
            let clearance = class.canonical_size().x + 2.0;
            if let Some(pos) = place(&mut rng, &mut occupied, clearance) {
                let yaw = rng.gen_range(-std::f64::consts::PI..std::f64::consts::PI);
                world.add(Entity::standing(next_id(), class, pos, yaw));
            }
        }
    }
    for _ in 0..sample_count(&mut rng, config.walls) {
        if let Some(pos) = place(&mut rng, &mut occupied, 10.0) {
            let yaw = rng.gen_range(-std::f64::consts::PI..std::f64::consts::PI);
            let half = rng.gen_range(3.0..8.0);
            let dir = Vec3::new(yaw.cos(), yaw.sin(), 0.0);
            world.add(Entity::wall(
                next_id(),
                pos - dir * half,
                pos + dir * half,
                rng.gen_range(2.0..5.0),
                rng.gen_range(0.3..1.0),
            ));
        }
    }

    let sensor_pose = Pose::new(
        Vec3::new(0.0, 0.0, config.mount_height),
        Attitude::from_yaw(rng.gen_range(-std::f64::consts::PI..std::f64::consts::PI)),
    );
    let scanner = LidarScanner::new(beam_model.clone());
    let cloud = scanner.scan(&world, &sensor_pose, seed ^ 0x9e37_79b9_u64);

    let world_to_sensor = RigidTransform::from_pose(&sensor_pose).inverse();
    let labels = world
        .entities()
        .iter()
        .filter(|e| e.class.is_target())
        .map(|e| Label {
            class: e.class,
            obb: e.shape.transformed(&world_to_sensor),
        })
        .collect();

    LabelledScene {
        world,
        sensor_pose,
        cloud,
        labels,
    }
}

/// Generates one labelled *cooperative* scene: the same world scanned
/// from the default sensor pose plus a second vehicle's pose, with the
/// second scan aligned (ground-truth poses, Equations 1–3) and merged
/// into the first sensor's frame.
///
/// SPOD must handle the density distribution of fused clouds — "not only
/// … high density data, but also … low resolution LiDAR data from nearby
/// vehicles" — so a share of training scenes should be cooperative.
///
/// # Panics
///
/// Panics if `config` fails [`SceneConfig::validate`].
pub fn generate_cooperative_scene(
    seed: u64,
    config: &SceneConfig,
    beam_model: &BeamModel,
) -> LabelledScene {
    let mut scene = generate_scene(seed, config, beam_model);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0005_eed2);
    let r = rng.gen_range(8.0..25.0);
    let theta = rng.gen_range(-std::f64::consts::PI..std::f64::consts::PI);
    let second_pose = Pose::new(
        Vec3::new(r * theta.cos(), r * theta.sin(), config.mount_height),
        Attitude::from_yaw(rng.gen_range(-std::f64::consts::PI..std::f64::consts::PI)),
    );
    let scanner = LidarScanner::new(beam_model.clone());
    let second_scan = scanner.scan(&scene.world, &second_pose, seed ^ 0xface);
    let align = RigidTransform::between(&second_pose, &scene.sensor_pose);
    scene.cloud.merge(&second_scan.transformed(&align));
    scene
}

/// Generates `count` labelled scenes with seeds `base_seed..base_seed +
/// count`.
pub fn generate_dataset(
    base_seed: u64,
    count: usize,
    config: &SceneConfig,
    beam_model: &BeamModel,
) -> Vec<LabelledScene> {
    (0..count)
        .map(|i| generate_scene(base_seed + i as u64, config, beam_model))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scene_generation_is_deterministic() {
        let cfg = SceneConfig::default();
        let beams = BeamModel::vlp16();
        let a = generate_scene(7, &cfg, &beams);
        let b = generate_scene(7, &cfg, &beams);
        assert_eq!(a.cloud, b.cloud);
        assert_eq!(a.labels.len(), b.labels.len());
        let c = generate_scene(8, &cfg, &beams);
        assert_ne!(a.cloud, c.cloud);
    }

    #[test]
    fn labels_are_in_sensor_frame() {
        let cfg = SceneConfig::default();
        let scene = generate_scene(3, &cfg, &BeamModel::vlp16().noiseless());
        // Points that fall inside a label box, measured in the sensor
        // frame, must exist for at least one visible label.
        let visible = scene
            .labels
            .iter()
            .filter(|l| scene.cloud.count_in_box(&l.obb) > 0)
            .count();
        assert!(visible >= 1, "no label received any points");
    }

    #[test]
    fn car_count_within_config() {
        let cfg = SceneConfig {
            cars: (4, 4),
            pedestrians: (0, 0),
            cyclists: (0, 0),
            walls: (0, 0),
            ..SceneConfig::default()
        };
        let scene = generate_scene(5, &cfg, &BeamModel::vlp16());
        assert!(scene.labels.len() <= 4);
        assert!(scene.labels.len() >= 2, "placement failed too often");
        assert!(scene.labels.iter().all(|l| l.class == ObjectClass::Car));
    }

    #[test]
    fn dataset_size_and_distinctness() {
        let cfg = SceneConfig::default();
        let data = generate_dataset(100, 5, &cfg, &BeamModel::vlp16());
        assert_eq!(data.len(), 5);
        assert_ne!(data[0].cloud, data[1].cloud);
    }

    #[test]
    fn entities_respect_sensor_keep_out() {
        let cfg = SceneConfig::default();
        for seed in 0..5 {
            let scene = generate_scene(seed, &cfg, &BeamModel::vlp16());
            for e in scene.world.entities() {
                assert!(
                    e.shape.center.distance_xy(Vec3::ZERO) >= 4.0,
                    "entity too close to sensor: {}",
                    e.shape.center
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "invalid scene config")]
    fn invalid_config_panics() {
        let cfg = SceneConfig {
            cars: (5, 2),
            ..SceneConfig::default()
        };
        let _ = generate_scene(0, &cfg, &BeamModel::vlp16());
    }

    #[test]
    fn config_validation_messages() {
        let cfg = SceneConfig {
            radius: 1.0,
            ..SceneConfig::default()
        };
        assert!(cfg.validate().unwrap_err().contains("radius"));
        let cfg2 = SceneConfig {
            mount_height: 0.0,
            ..SceneConfig::default()
        };
        assert!(cfg2.validate().unwrap_err().contains("mount"));
    }
}
