//! Beam tables of the Velodyne units named in the paper.

use std::fmt;

use serde::{Deserialize, Serialize};

/// The firing geometry and noise envelope of one LiDAR unit.
///
/// §III-B: "Velodyne produces 64-beam, 32-beam and 16-beam LiDAR devices,
/// which provide different density point clouds." The three presets below
/// match those products' vertical beam tables closely enough to reproduce
/// the density contrast the paper builds SPOD around (the T&J point cloud
/// is "4X more sparse" than KITTI's).
///
/// # Examples
///
/// ```
/// use cooper_lidar_sim::BeamModel;
///
/// let dense = BeamModel::hdl64();
/// let sparse = BeamModel::vlp16();
/// assert_eq!(dense.beam_count() / sparse.beam_count(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BeamModel {
    name: String,
    /// Elevation angle of each beam, radians, ascending.
    vertical_angles: Vec<f64>,
    /// Number of azimuth steps per revolution.
    azimuth_steps: usize,
    /// Maximum usable range, metres.
    max_range: f64,
    /// 1-σ range noise, metres.
    range_noise_sigma: f64,
    /// Probability that a valid return is dropped.
    dropout_probability: f64,
}

impl BeamModel {
    /// Builds a custom beam model.
    ///
    /// # Panics
    ///
    /// Panics when the beam table is empty, `azimuth_steps` is zero,
    /// `max_range` is non-positive, or `dropout_probability` is outside
    /// `[0, 1)`.
    pub fn new(
        name: impl Into<String>,
        vertical_angles: Vec<f64>,
        azimuth_steps: usize,
        max_range: f64,
        range_noise_sigma: f64,
        dropout_probability: f64,
    ) -> Self {
        assert!(!vertical_angles.is_empty(), "beam table must not be empty");
        assert!(azimuth_steps > 0, "azimuth steps must be positive");
        assert!(max_range > 0.0, "max range must be positive");
        assert!(
            (0.0..1.0).contains(&dropout_probability),
            "dropout probability must be in [0, 1)"
        );
        BeamModel {
            name: name.into(),
            vertical_angles,
            azimuth_steps,
            max_range,
            range_noise_sigma,
            dropout_probability,
        }
    }

    /// Velodyne VLP-16: 16 beams, ±15° at 2° spacing — the T&J dataset's
    /// sensor ("1 X Velodyne VLP-16 360° LiDAR").
    pub fn vlp16() -> Self {
        let angles = (0..16)
            .map(|i| (-15.0 + 2.0 * i as f64).to_radians())
            .collect();
        BeamModel::new("VLP-16", angles, 1800, 100.0, 0.02, 0.03)
    }

    /// Velodyne HDL-32E: 32 beams from −30.67° to +10.67°.
    pub fn hdl32() -> Self {
        let angles = (0..32)
            .map(|i| (-30.67 + 41.34 / 31.0 * i as f64).to_radians())
            .collect();
        BeamModel::new("HDL-32E", angles, 1440, 100.0, 0.02, 0.03)
    }

    /// Velodyne HDL-64E: 64 beams from −24.8° to +2° — the KITTI sensor.
    pub fn hdl64() -> Self {
        let angles = (0..64)
            .map(|i| (-24.8 + 26.8 / 63.0 * i as f64).to_radians())
            .collect();
        BeamModel::new("HDL-64E", angles, 1800, 120.0, 0.02, 0.03)
    }

    /// Unit name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of beams (rows of the scan).
    pub fn beam_count(&self) -> usize {
        self.vertical_angles.len()
    }

    /// The elevation table, radians, ascending.
    pub fn vertical_angles(&self) -> &[f64] {
        &self.vertical_angles
    }

    /// Azimuth steps per revolution (columns of the scan).
    pub fn azimuth_steps(&self) -> usize {
        self.azimuth_steps
    }

    /// Maximum usable range, metres.
    pub fn max_range(&self) -> f64 {
        self.max_range
    }

    /// 1-σ range noise, metres.
    pub fn range_noise_sigma(&self) -> f64 {
        self.range_noise_sigma
    }

    /// Probability that a valid return is dropped.
    pub fn dropout_probability(&self) -> f64 {
        self.dropout_probability
    }

    /// Rays fired per revolution.
    pub fn rays_per_scan(&self) -> usize {
        self.beam_count() * self.azimuth_steps
    }

    /// Returns a copy with a different azimuth resolution — used by the
    /// benches to trade scan fidelity for speed.
    pub fn with_azimuth_steps(mut self, steps: usize) -> Self {
        assert!(steps > 0, "azimuth steps must be positive");
        self.azimuth_steps = steps;
        self
    }

    /// Returns a copy with all noise disabled (deterministic geometry).
    pub fn noiseless(mut self) -> Self {
        self.range_noise_sigma = 0.0;
        self.dropout_probability = 0.0;
        self
    }
}

impl fmt::Display for BeamModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} beams × {} steps, ≤{} m)",
            self.name,
            self.vertical_angles.len(),
            self.azimuth_steps,
            self.max_range
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_expected_beam_counts() {
        assert_eq!(BeamModel::vlp16().beam_count(), 16);
        assert_eq!(BeamModel::hdl32().beam_count(), 32);
        assert_eq!(BeamModel::hdl64().beam_count(), 64);
    }

    #[test]
    fn vlp16_covers_plus_minus_fifteen_degrees() {
        let m = BeamModel::vlp16();
        let lo = m.vertical_angles()[0].to_degrees();
        let hi = m.vertical_angles()[15].to_degrees();
        assert!((lo + 15.0).abs() < 1e-9);
        assert!((hi - 15.0).abs() < 1e-9);
    }

    #[test]
    fn hdl64_covers_kitti_fov() {
        let m = BeamModel::hdl64();
        assert!((m.vertical_angles()[0].to_degrees() + 24.8).abs() < 1e-9);
        assert!((m.vertical_angles()[63].to_degrees() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn angles_are_ascending() {
        for m in [BeamModel::vlp16(), BeamModel::hdl32(), BeamModel::hdl64()] {
            let a = m.vertical_angles();
            assert!(
                a.windows(2).all(|w| w[0] < w[1]),
                "{} not ascending",
                m.name()
            );
        }
    }

    #[test]
    fn rays_per_scan() {
        assert_eq!(BeamModel::vlp16().rays_per_scan(), 16 * 1800);
    }

    #[test]
    fn builders() {
        let m = BeamModel::hdl64().with_azimuth_steps(100).noiseless();
        assert_eq!(m.azimuth_steps(), 100);
        assert_eq!(m.range_noise_sigma(), 0.0);
        assert_eq!(m.dropout_probability(), 0.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_beam_table_panics() {
        let _ = BeamModel::new("bad", vec![], 10, 100.0, 0.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "dropout")]
    fn bad_dropout_panics() {
        let _ = BeamModel::new("bad", vec![0.0], 10, 100.0, 0.0, 1.5);
    }
}
