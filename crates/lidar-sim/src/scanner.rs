//! The ray-cast LiDAR scanner.

use cooper_geometry::{Pose, Vec3};
use cooper_pointcloud::{Point, PointCloud};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{BeamModel, GaussianNoise, World};

/// A simulated spinning LiDAR.
///
/// One revolution fires `beams × azimuth_steps` rays from the sensor
/// pose, keeps the first surface each ray strikes (entities occlude each
/// other and the ground naturally), perturbs ranges with Gaussian noise
/// and drops a configurable fraction of returns. The output cloud is in
/// the *sensor frame*, exactly like a real unit — alignment into other
/// frames is the fusion pipeline's job.
///
/// # Examples
///
/// ```
/// use cooper_geometry::{Attitude, Pose, Vec3};
/// use cooper_lidar_sim::{BeamModel, Entity, EntityId, LidarScanner, World};
///
/// let mut world = World::new();
/// world.add(Entity::car(EntityId(1), Vec3::new(10.0, 0.0, 0.0), 0.0));
/// let scanner = LidarScanner::new(BeamModel::vlp16().noiseless());
/// let pose = Pose::new(Vec3::new(0.0, 0.0, 1.9), Attitude::level());
/// let scan = scanner.scan(&world, &pose, 0);
/// assert!(!scan.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct LidarScanner {
    beam_model: BeamModel,
}

impl LidarScanner {
    /// Creates a scanner with the given beam model.
    pub fn new(beam_model: BeamModel) -> Self {
        LidarScanner { beam_model }
    }

    /// The beam model in use.
    pub fn beam_model(&self) -> &BeamModel {
        &self.beam_model
    }

    /// Performs one full revolution from `pose`, returning the cloud in
    /// the sensor frame. `seed` makes noise reproducible: the same seed,
    /// world and pose always produce the identical scan.
    pub fn scan(&self, world: &World, pose: &Pose, seed: u64) -> PointCloud {
        let mut rng = StdRng::seed_from_u64(seed);
        let noise = GaussianNoise::new(self.beam_model.range_noise_sigma());
        let dropout = self.beam_model.dropout_probability();
        let rotation = pose.attitude.rotation_matrix();
        let steps = self.beam_model.azimuth_steps();
        let mut cloud = PointCloud::with_capacity(self.beam_model.rays_per_scan() / 4);

        for &elevation in self.beam_model.vertical_angles() {
            let (sin_el, cos_el) = elevation.sin_cos();
            for step in 0..steps {
                let azimuth = -std::f64::consts::PI
                    + (step as f64 + 0.5) / steps as f64 * std::f64::consts::TAU;
                let (sin_az, cos_az) = azimuth.sin_cos();
                let local_dir = Vec3::new(cos_el * cos_az, cos_el * sin_az, sin_el);
                let world_dir = rotation * local_dir;
                let Some(hit) =
                    world.cast_ray(pose.position, world_dir, self.beam_model.max_range())
                else {
                    continue;
                };
                if dropout > 0.0 && rng.gen::<f64>() < dropout {
                    continue;
                }
                let noisy_range = (hit.distance + noise.sample(&mut rng)).max(0.0);
                let reflectance_noise = (noise.sample(&mut rng) * 2.0) as f32;
                cloud.push(Point::new(
                    local_dir * noisy_range,
                    hit.reflectance + reflectance_noise,
                ));
            }
        }
        cloud
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Entity, EntityId, ObjectClass};
    use cooper_geometry::Attitude;

    fn simple_world() -> World {
        let mut w = World::new();
        w.add(Entity::car(EntityId(1), Vec3::new(10.0, 0.0, 0.0), 0.0));
        w
    }

    fn sensor_pose() -> Pose {
        Pose::new(Vec3::new(0.0, 0.0, 1.9), Attitude::level())
    }

    #[test]
    fn scan_is_deterministic_for_seed() {
        let w = simple_world();
        let s = LidarScanner::new(BeamModel::vlp16());
        let a = s.scan(&w, &sensor_pose(), 5);
        let b = s.scan(&w, &sensor_pose(), 5);
        assert_eq!(a, b);
        let c = s.scan(&w, &sensor_pose(), 6);
        assert_ne!(a, c);
    }

    #[test]
    fn car_receives_points() {
        let w = simple_world();
        let s = LidarScanner::new(BeamModel::vlp16().noiseless());
        let scan = s.scan(&w, &sensor_pose(), 0);
        let car_box = w.entity(EntityId(1)).unwrap().shape;
        // Scan is in the sensor frame; move boxes there for counting.
        let pose = sensor_pose();
        let on_car = scan
            .iter()
            .filter(|p| car_box.contains(pose.local_to_world(p.position)))
            .count();
        assert!(on_car > 10, "only {on_car} points on the car");
    }

    #[test]
    fn beam_density_scales_with_beam_count() {
        let w = simple_world();
        let dense = LidarScanner::new(BeamModel::hdl64().noiseless());
        let sparse = LidarScanner::new(BeamModel::vlp16().noiseless().with_azimuth_steps(1800));
        let d = dense.scan(&w, &sensor_pose(), 0).len();
        let s = sparse.scan(&w, &sensor_pose(), 0).len();
        // Same azimuth resolution, 4× the beams: KITTI-vs-T&J density gap.
        assert!(d > 2 * s, "dense {d} vs sparse {s}");
    }

    #[test]
    fn occluded_car_gets_no_points() {
        let mut w = simple_world();
        w.add(Entity::wall(
            EntityId(2),
            Vec3::new(5.0, -6.0, 0.0),
            Vec3::new(5.0, 6.0, 0.0),
            4.0,
            0.3,
        ));
        let s = LidarScanner::new(BeamModel::vlp16().noiseless());
        let scan = s.scan(&w, &sensor_pose(), 0);
        let pose = sensor_pose();
        let car_box = w.entity(EntityId(1)).unwrap().shape;
        let on_car = scan
            .iter()
            .filter(|p| car_box.contains(pose.local_to_world(p.position)))
            .count();
        assert_eq!(on_car, 0, "occluded car must receive no returns");
    }

    #[test]
    fn closer_objects_get_more_points() {
        let mut near_world = World::new();
        near_world.add(Entity::car(EntityId(1), Vec3::new(8.0, 0.0, 0.0), 0.0));
        let mut far_world = World::new();
        far_world.add(Entity::car(EntityId(1), Vec3::new(40.0, 0.0, 0.0), 0.0));
        let s = LidarScanner::new(BeamModel::vlp16().noiseless());
        let pose = sensor_pose();
        let near_box = near_world.entity(EntityId(1)).unwrap().shape;
        let far_box = far_world.entity(EntityId(1)).unwrap().shape;
        let near = s
            .scan(&near_world, &pose, 0)
            .iter()
            .filter(|p| near_box.contains(pose.local_to_world(p.position)))
            .count();
        let far = s
            .scan(&far_world, &pose, 0)
            .iter()
            .filter(|p| far_box.contains(pose.local_to_world(p.position)))
            .count();
        assert!(near > 4 * far, "near {near} vs far {far}");
    }

    #[test]
    fn dropout_reduces_returns() {
        let w = simple_world();
        let clean = LidarScanner::new(BeamModel::vlp16().noiseless());
        let lossy = LidarScanner::new(BeamModel::new(
            "lossy",
            BeamModel::vlp16().vertical_angles().to_vec(),
            BeamModel::vlp16().azimuth_steps(),
            100.0,
            0.0,
            0.5,
        ));
        let full = clean.scan(&w, &sensor_pose(), 0).len();
        let half = lossy.scan(&w, &sensor_pose(), 0).len();
        let ratio = half as f64 / full as f64;
        assert!((0.4..0.6).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn pedestrian_visible_at_close_range() {
        let mut w = World::new();
        w.add(Entity::standing(
            EntityId(1),
            ObjectClass::Pedestrian,
            Vec3::new(6.0, 0.0, 0.0),
            0.0,
        ));
        let s = LidarScanner::new(BeamModel::vlp16().noiseless());
        let pose = sensor_pose();
        let ped = w.entity(EntityId(1)).unwrap().shape;
        let hits = s
            .scan(&w, &pose, 0)
            .iter()
            .filter(|p| ped.contains(pose.local_to_world(p.position)))
            .count();
        assert!(hits >= 3, "pedestrian got {hits} returns");
    }
}
