//! The simulated world: entities over a ground plane.

use std::fmt;

use cooper_geometry::{Obb3, Vec3};
use serde::{Deserialize, Serialize};

use crate::ray::{ray_ground_intersection, ray_obb_intersection, Ray};
use crate::{Entity, EntityId, ObjectClass};

/// A hit returned by [`World::cast_ray`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RayHit {
    /// Distance along the ray, metres.
    pub distance: f64,
    /// World-frame hit position.
    pub position: Vec3,
    /// Reflectance of the struck surface.
    pub reflectance: f32,
    /// The entity struck, or `None` for the ground plane.
    pub entity: Option<EntityId>,
}

/// A static scene: a set of [`Entity`] boxes above an infinite ground
/// plane at `z = 0`.
///
/// # Examples
///
/// ```
/// use cooper_geometry::Vec3;
/// use cooper_lidar_sim::{Entity, EntityId, World};
///
/// let mut world = World::new();
/// world.add(Entity::car(EntityId(1), Vec3::new(10.0, 0.0, 0.0), 0.0));
/// assert_eq!(world.entities().len(), 1);
/// assert_eq!(world.ground_truth_boxes(cooper_lidar_sim::ObjectClass::Car).len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct World {
    entities: Vec<Entity>,
    ground_reflectance: f32,
}

impl World {
    /// Creates an empty world with default ground reflectance.
    pub fn new() -> Self {
        World {
            entities: Vec::new(),
            ground_reflectance: 0.15,
        }
    }

    /// Adds an entity.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when the id duplicates an existing entity.
    pub fn add(&mut self, entity: Entity) {
        debug_assert!(
            self.entities.iter().all(|e| e.id != entity.id),
            "duplicate entity id {}",
            entity.id
        );
        self.entities.push(entity);
    }

    /// All entities.
    pub fn entities(&self) -> &[Entity] {
        &self.entities
    }

    /// Looks an entity up by id.
    pub fn entity(&self, id: EntityId) -> Option<&Entity> {
        self.entities.iter().find(|e| e.id == id)
    }

    /// Removes an entity, returning it if present.
    pub fn remove(&mut self, id: EntityId) -> Option<Entity> {
        let idx = self.entities.iter().position(|e| e.id == id)?;
        Some(self.entities.remove(idx))
    }

    /// The world-frame boxes of all entities of `class` — the ground
    /// truth the evaluation compares detections against.
    pub fn ground_truth_boxes(&self, class: ObjectClass) -> Vec<Obb3> {
        self.entities
            .iter()
            .filter(|e| e.class == class)
            .map(|e| e.shape)
            .collect()
    }

    /// Entities of `class`, with ids.
    pub fn entities_of_class(&self, class: ObjectClass) -> Vec<&Entity> {
        self.entities.iter().filter(|e| e.class == class).collect()
    }

    /// Returns the world advanced by `dt` seconds: every entity moves by
    /// its velocity; static geometry (zero velocity) is unchanged. Used
    /// to model scene evolution between a frame's capture and its use
    /// (exchange staleness) and across fleet simulation steps.
    pub fn advanced(&self, dt: f64) -> World {
        World {
            entities: self.entities.iter().map(|e| e.advanced(dt)).collect(),
            ground_reflectance: self.ground_reflectance,
        }
    }

    /// Casts a ray and returns the nearest surface within `max_range`.
    ///
    /// The ground plane participates, so scans include road returns —
    /// important because ground points dominate real LiDAR data and any
    /// detector must cope with them.
    pub fn cast_ray(&self, origin: Vec3, direction: Vec3, max_range: f64) -> Option<RayHit> {
        let ray = Ray::new(origin, direction);
        let mut best: Option<RayHit> = None;
        let mut consider = |distance: f64, reflectance: f32, entity: Option<EntityId>| {
            if distance <= max_range && best.is_none_or(|b| distance < b.distance) {
                best = Some(RayHit {
                    distance,
                    position: ray.at(distance),
                    reflectance,
                    entity,
                });
            }
        };
        for e in &self.entities {
            if let Some(t) = ray_obb_intersection(&ray, &e.shape) {
                consider(t, e.reflectance, Some(e.id));
            }
        }
        if let Some(t) = ray_ground_intersection(&ray, 0.0) {
            consider(t, self.ground_reflectance, None);
        }
        best
    }
}

impl fmt::Display for World {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "world ({} entities)", self.entities.len())
    }
}

impl Extend<Entity> for World {
    fn extend<I: IntoIterator<Item = Entity>>(&mut self, iter: I) {
        for e in iter {
            self.add(e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world_with_car() -> World {
        let mut w = World::new();
        w.add(Entity::car(EntityId(1), Vec3::new(10.0, 0.0, 0.0), 0.0));
        w
    }

    #[test]
    fn ray_hits_nearest_entity() {
        let mut w = world_with_car();
        w.add(Entity::car(EntityId(2), Vec3::new(20.0, 0.0, 0.0), 0.0));
        let hit = w
            .cast_ray(Vec3::new(0.0, 0.0, 1.0), Vec3::X, 100.0)
            .unwrap();
        assert_eq!(hit.entity, Some(EntityId(1)));
        // Front face of car 1 is at x = 10 - 2.25 = 7.75.
        assert!((hit.distance - 7.75).abs() < 1e-9);
    }

    #[test]
    fn occlusion_blocks_far_entity() {
        let mut w = World::new();
        w.add(Entity::wall(
            EntityId(1),
            Vec3::new(5.0, -5.0, 0.0),
            Vec3::new(5.0, 5.0, 0.0),
            3.0,
            0.3,
        ));
        w.add(Entity::car(EntityId(2), Vec3::new(15.0, 0.0, 0.0), 0.0));
        let hit = w
            .cast_ray(Vec3::new(0.0, 0.0, 1.0), Vec3::X, 100.0)
            .unwrap();
        assert_eq!(hit.entity, Some(EntityId(1)), "wall must occlude the car");
    }

    #[test]
    fn ground_return() {
        let w = World::new();
        let dir = Vec3::new(1.0, 0.0, -0.1).normalized().unwrap();
        let hit = w.cast_ray(Vec3::new(0.0, 0.0, 2.0), dir, 100.0).unwrap();
        assert_eq!(hit.entity, None);
        assert!(hit.position.z.abs() < 1e-9);
        assert!((hit.position.x - 20.0).abs() < 1e-6);
    }

    #[test]
    fn max_range_enforced() {
        let w = world_with_car();
        assert!(w.cast_ray(Vec3::new(0.0, 0.0, 1.0), Vec3::X, 5.0).is_none());
    }

    #[test]
    fn entity_lookup_and_removal() {
        let mut w = world_with_car();
        assert!(w.entity(EntityId(1)).is_some());
        assert!(w.entity(EntityId(9)).is_none());
        let removed = w.remove(EntityId(1)).unwrap();
        assert_eq!(removed.id, EntityId(1));
        assert!(w.remove(EntityId(1)).is_none());
        assert!(w.entities().is_empty());
    }

    #[test]
    fn ground_truth_by_class() {
        let mut w = world_with_car();
        w.add(Entity::standing(
            EntityId(2),
            ObjectClass::Pedestrian,
            Vec3::new(5.0, 5.0, 0.0),
            0.0,
        ));
        w.add(Entity::wall(
            EntityId(3),
            Vec3::new(0.0, 10.0, 0.0),
            Vec3::new(10.0, 10.0, 0.0),
            3.0,
            0.3,
        ));
        assert_eq!(w.ground_truth_boxes(ObjectClass::Car).len(), 1);
        assert_eq!(w.ground_truth_boxes(ObjectClass::Pedestrian).len(), 1);
        assert_eq!(w.entities_of_class(ObjectClass::Background).len(), 1);
    }

    #[test]
    fn extend_adds_entities() {
        let mut w = World::new();
        w.extend([
            Entity::car(EntityId(1), Vec3::ZERO, 0.0),
            Entity::car(EntityId(2), Vec3::new(10.0, 0.0, 0.0), 0.0),
        ]);
        assert_eq!(w.entities().len(), 2);
    }

    #[test]
    fn advanced_moves_only_dynamic_entities() {
        let mut w = World::new();
        w.add(
            Entity::car(EntityId(1), Vec3::new(10.0, 0.0, 0.0), 0.0)
                .with_velocity(Vec3::new(5.0, 0.0, 0.0)),
        );
        w.add(Entity::car(EntityId(2), Vec3::new(20.0, 5.0, 0.0), 0.0));
        let later = w.advanced(2.0);
        assert!((later.entity(EntityId(1)).unwrap().shape.center.x - 20.0).abs() < 1e-12);
        assert_eq!(
            later.entity(EntityId(2)).unwrap().shape.center,
            w.entity(EntityId(2)).unwrap().shape.center
        );
        // Zero advance is identity.
        assert_eq!(w.advanced(0.0), w);
    }

    #[test]
    fn upward_ray_misses_everything() {
        let w = world_with_car();
        assert!(w
            .cast_ray(Vec3::new(0.0, 0.0, 1.0), Vec3::Z, 100.0)
            .is_none());
    }
}
