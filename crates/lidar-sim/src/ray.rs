//! Ray intersection primitives used by the scanner.

use cooper_geometry::{Obb3, Vec3};

/// A ray: origin plus unit direction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct Ray {
    pub origin: Vec3,
    pub direction: Vec3,
}

impl Ray {
    pub(crate) fn new(origin: Vec3, direction: Vec3) -> Self {
        Ray { origin, direction }
    }

    pub(crate) fn at(&self, t: f64) -> Vec3 {
        self.origin + self.direction * t
    }
}

/// Distance along the ray to the first intersection with an oriented box,
/// or `None` when the ray misses (or starts past the box).
///
/// Slab method in the box's local frame (the box only rotates about `z`).
pub(crate) fn ray_obb_intersection(ray: &Ray, obb: &Obb3) -> Option<f64> {
    // Move the ray into the box frame.
    let (s, c) = obb.yaw.sin_cos();
    let rel = ray.origin - obb.center;
    let local_origin = Vec3::new(c * rel.x + s * rel.y, -s * rel.x + c * rel.y, rel.z);
    let d = ray.direction;
    let local_dir = Vec3::new(c * d.x + s * d.y, -s * d.x + c * d.y, d.z);
    let half = obb.size * 0.5;

    let mut t_min = 0.0f64;
    let mut t_max = f64::INFINITY;
    for axis in 0..3 {
        let o = local_origin[axis];
        let v = local_dir[axis];
        let h = half[axis];
        if v.abs() < 1e-12 {
            if o.abs() > h {
                return None;
            }
            continue;
        }
        let inv = 1.0 / v;
        let mut t0 = (-h - o) * inv;
        let mut t1 = (h - o) * inv;
        if t0 > t1 {
            std::mem::swap(&mut t0, &mut t1);
        }
        t_min = t_min.max(t0);
        t_max = t_max.min(t1);
        if t_min > t_max {
            return None;
        }
    }
    // The sensor may sit inside a box's bounding volume (e.g. scanning
    // from the roof of the ego car); report the exit face then.
    Some(if t_min > 1e-9 { t_min } else { t_max })
}

/// Distance along the ray to the ground plane `z = ground_z`, or `None`
/// when the ray points away from it.
pub(crate) fn ray_ground_intersection(ray: &Ray, ground_z: f64) -> Option<f64> {
    if ray.direction.z.abs() < 1e-12 {
        return None;
    }
    let t = (ground_z - ray.origin.z) / ray.direction.z;
    (t > 1e-9).then_some(t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ray_hits_axis_aligned_box() {
        let ray = Ray::new(Vec3::new(-10.0, 0.0, 0.0), Vec3::X);
        let obb = Obb3::new(Vec3::ZERO, Vec3::new(2.0, 2.0, 2.0), 0.0);
        let t = ray_obb_intersection(&ray, &obb).unwrap();
        assert!((t - 9.0).abs() < 1e-12);
        assert!((ray.at(t) - Vec3::new(-1.0, 0.0, 0.0)).norm() < 1e-12);
    }

    #[test]
    fn ray_misses_offset_box() {
        let ray = Ray::new(Vec3::new(-10.0, 5.0, 0.0), Vec3::X);
        let obb = Obb3::new(Vec3::ZERO, Vec3::new(2.0, 2.0, 2.0), 0.0);
        assert!(ray_obb_intersection(&ray, &obb).is_none());
    }

    #[test]
    fn ray_hits_rotated_box() {
        // A 45°-rotated 10×1 box only reaches |x| ≈ 3.9, so a ray along
        // +y at x = 4.5 misses it but hits the unrotated variant
        // (which spans |x| ≤ 5).
        let rot = Obb3::new(
            Vec3::ZERO,
            Vec3::new(10.0, 1.0, 2.0),
            std::f64::consts::FRAC_PI_4,
        );
        let unrot = Obb3::new(Vec3::ZERO, Vec3::new(10.0, 1.0, 2.0), 0.0);
        let ray = Ray::new(Vec3::new(4.5, -10.0, 0.0), Vec3::Y);
        assert!(ray_obb_intersection(&ray, &unrot).is_some());
        assert!(ray_obb_intersection(&ray, &rot).is_none());
        // A ray at x = 2 does strike the rotated box, on its surface.
        let ray2 = Ray::new(Vec3::new(2.0, -10.0, 0.0), Vec3::Y);
        let t = ray_obb_intersection(&ray2, &rot).unwrap();
        assert!(rot.contains(ray2.at(t)), "hit {} not on box", ray2.at(t));
    }

    #[test]
    fn ray_behind_box_misses() {
        let ray = Ray::new(Vec3::new(10.0, 0.0, 0.0), Vec3::X);
        let obb = Obb3::new(Vec3::ZERO, Vec3::new(2.0, 2.0, 2.0), 0.0);
        assert!(ray_obb_intersection(&ray, &obb).is_none());
    }

    #[test]
    fn ray_from_inside_reports_exit() {
        let ray = Ray::new(Vec3::ZERO, Vec3::X);
        let obb = Obb3::new(Vec3::ZERO, Vec3::new(4.0, 4.0, 4.0), 0.0);
        let t = ray_obb_intersection(&ray, &obb).unwrap();
        assert!((t - 2.0).abs() < 1e-12);
    }

    #[test]
    fn parallel_ray_outside_slab_misses() {
        let ray = Ray::new(Vec3::new(-10.0, 0.0, 5.0), Vec3::X);
        let obb = Obb3::new(Vec3::ZERO, Vec3::new(2.0, 2.0, 2.0), 0.0);
        assert!(ray_obb_intersection(&ray, &obb).is_none());
    }

    #[test]
    fn ground_intersection() {
        let down = Ray::new(
            Vec3::new(0.0, 0.0, 2.0),
            Vec3::new(1.0, 0.0, -1.0).normalized().unwrap(),
        );
        let t = ray_ground_intersection(&down, 0.0).unwrap();
        let hit = down.at(t);
        assert!(hit.z.abs() < 1e-9);
        assert!((hit.x - 2.0).abs() < 1e-9);
        // Upward ray never lands.
        let up = Ray::new(
            Vec3::new(0.0, 0.0, 2.0),
            Vec3::new(1.0, 0.0, 0.5).normalized().unwrap(),
        );
        assert!(ray_ground_intersection(&up, 0.0).is_none());
        // Horizontal ray never lands.
        let flat = Ray::new(Vec3::new(0.0, 0.0, 2.0), Vec3::X);
        assert!(ray_ground_intersection(&flat, 0.0).is_none());
    }
}
