//! Pose-fault injection: scheduled GPS/IMU failures for robustness
//! campaigns.
//!
//! The paper's Figure 10 skews a single transmitter's GPS fix once; a
//! fleet-scale robustness study needs faults that are *scheduled* —
//! per vehicle, per step window — and *reproducible* at any thread
//! count. A [`FaultPlan`] lists [`FaultSpec`]s; a [`FaultInjector`]
//! applies the active ones to each clean pose measurement. Every
//! random draw comes from a per-(vehicle, step) SplitMix64-derived
//! stream, so a faulted run is bit-identical no matter how the fleet
//! phases are parallelised.
//!
//! # Fault taxonomy
//!
//! * [`FaultKind::GpsDrift`] — random-walk position drift: a planar
//!   Gaussian increment accumulates every step from the fault's onset,
//!   the classic slow GPS wander past the paper's drift bound.
//! * [`FaultKind::GpsBias`] — a fixed east/north offset, the paper's
//!   Figure-10 skew generalised to any magnitude and window.
//! * [`FaultKind::ImuYawBias`] — a constant heading error; small
//!   angles produce alignment error growing with range.
//! * [`FaultKind::FrozenPose`] — the estimate latches at the onset
//!   step (a hung GPS/IMU pipeline) while the vehicle keeps moving.
//! * [`FaultKind::StaleScan`] — the reading (and the packet's frame
//!   stamp) lags `age_steps` behind real time.
//!
//! # Adversarial (content-level) kinds
//!
//! Three kinds model a *misbehaving sender* rather than a failed
//! sensor: they leave the vehicle's own pose estimate untouched and
//! instead direct the fleet loop to tamper with what the vehicle
//! **broadcasts** — its own perception stays honest, its peers' inputs
//! do not.
//!
//! * [`FaultKind::GhostClusters`] — car-sized point clusters injected
//!   into the broadcast cloud at plausible ranges, fabricating objects
//!   that do not exist ([`FaultInjector::ghost_cloud`] generates them
//!   deterministically per (vehicle, step)).
//! * [`FaultKind::ScanReplay`] — the broadcast scan, pose estimate and
//!   frame stamp freeze at the fault's onset: every peer receives the
//!   same stale content re-stamped step after step.
//! * [`FaultKind::PayloadCorruption`] — at-source byte flips in the
//!   encoded broadcast payload, modeling a faulty encoder or deliberate
//!   bit-twiddling that wire CRC checks must catch.
//!
//! # Examples
//!
//! ```
//! use cooper_lidar_sim::{FaultKind, FaultPlan};
//!
//! let plan = FaultPlan::parse("2:drift:0.5@3..8,1:freeze@4").unwrap();
//! assert_eq!(plan.faults().len(), 2);
//! assert!(matches!(
//!     plan.faults()[0].kind,
//!     FaultKind::GpsDrift { .. }
//! ));
//! ```

use cooper_geometry::{normalize_angle, GpsFix, Pose, Vec3};
use cooper_pointcloud::{Point, PointCloud};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::{GaussianNoise, GpsImuModel, PoseEstimate};

/// One kind of scheduled pose fault.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// GPS random-walk drift: each step since onset adds an independent
    /// planar Gaussian increment with this standard deviation (metres),
    /// so the expected error grows with the square root of the fault's
    /// age.
    GpsDrift {
        /// Per-step increment standard deviation, metres.
        sigma_m_per_step: f64,
    },
    /// A fixed GPS offset in the local east-north frame — the paper's
    /// Figure-10 skew at an arbitrary magnitude.
    GpsBias {
        /// East offset, metres.
        east_m: f64,
        /// North offset, metres.
        north_m: f64,
    },
    /// A constant IMU yaw bias, radians.
    ImuYawBias {
        /// Heading error, radians.
        bias_rad: f64,
    },
    /// The pose estimate freezes at the fault's onset step: the vehicle
    /// keeps broadcasting where it *was* while it keeps moving.
    FrozenPose,
    /// The reading lags behind real time: at step `s` the vehicle
    /// reports the measurement (and stamps its packets) from step
    /// `s - age_steps`.
    StaleScan {
        /// How many steps the reading lags, at least 1.
        age_steps: usize,
    },
    /// Adversarial: the vehicle injects car-sized ghost point clusters
    /// into every cloud it broadcasts, fabricating objects for its
    /// peers to fuse. Its own perception is unaffected.
    GhostClusters {
        /// Ghost clusters injected per broadcast.
        clusters: usize,
    },
    /// Adversarial: the broadcast content (scan, pose estimate, frame
    /// stamp) freezes at the fault's onset step — peers keep receiving
    /// the identical stale frame with a duplicate stamp.
    ScanReplay,
    /// Adversarial: random byte flips are applied to the encoded
    /// broadcast payload at the source, before the channel ever sees
    /// it.
    PayloadCorruption {
        /// Fraction of payload bytes flipped, in `(0, 1]`.
        rate: f64,
    },
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultKind::GpsDrift { sigma_m_per_step } => {
                write!(f, "gps drift σ={sigma_m_per_step} m/step")
            }
            FaultKind::GpsBias { east_m, north_m } => {
                write!(f, "gps bias ({east_m}, {north_m}) m")
            }
            FaultKind::ImuYawBias { bias_rad } => write!(f, "yaw bias {bias_rad} rad"),
            FaultKind::FrozenPose => f.write_str("frozen pose"),
            FaultKind::StaleScan { age_steps } => write!(f, "stale by {age_steps} steps"),
            FaultKind::GhostClusters { clusters } => {
                write!(f, "ghost injection ({clusters} clusters)")
            }
            FaultKind::ScanReplay => f.write_str("scan replay"),
            FaultKind::PayloadCorruption { rate } => {
                write!(f, "payload corruption ({rate} of bytes)")
            }
        }
    }
}

/// One scheduled fault: which vehicle, which step window, which
/// failure. The window is `from_step..until_step` (half-open);
/// `until_step == None` means the fault persists to the end of the run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultSpec {
    /// The affected vehicle.
    pub vehicle_id: u32,
    /// First step (inclusive) the fault is active.
    pub from_step: usize,
    /// First step the fault is no longer active; `None` = forever.
    pub until_step: Option<usize>,
    /// What fails.
    pub kind: FaultKind,
}

impl FaultSpec {
    /// Whether this fault is active for `vehicle_id` at `step`.
    pub fn active_at(&self, vehicle_id: u32, step: usize) -> bool {
        self.vehicle_id == vehicle_id
            && step >= self.from_step
            && self.until_step.is_none_or(|until| step < until)
    }
}

/// A schedule of pose faults for a fleet run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    faults: Vec<FaultSpec>,
}

impl FaultPlan {
    /// Builds a plan from explicit specs.
    pub fn new(faults: Vec<FaultSpec>) -> Self {
        FaultPlan { faults }
    }

    /// The scheduled faults.
    pub fn faults(&self) -> &[FaultSpec] {
        &self.faults
    }

    /// `true` when no faults are scheduled.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Parses the compact CLI grammar, one entry per comma:
    ///
    /// ```text
    /// entry := VEHICLE ':' kind ['@' FROM ['..' [UNTIL]]]
    /// kind  := 'drift:' SIGMA | 'bias:' EAST ':' NORTH
    ///        | 'yaw:' RAD | 'freeze' | 'stale:' AGE
    ///        | 'ghost:' CLUSTERS | 'replay' | 'corrupt:' RATE
    /// ```
    ///
    /// Examples: `2:drift:0.5`, `1:bias:2.0:-1.0@3..7`, `3:freeze@4`,
    /// `1:yaw:0.05@2..`, `2:stale:3`; adversarial senders:
    /// `2:ghost:3@4`, `1:replay@5..12`, `3:corrupt:0.02`.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message naming the offending entry.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut faults = Vec::new();
        for entry in spec.split(',') {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            faults.push(Self::parse_entry(entry)?);
        }
        if faults.is_empty() {
            return Err("fault plan is empty".to_string());
        }
        Ok(FaultPlan { faults })
    }

    fn parse_entry(entry: &str) -> Result<FaultSpec, String> {
        let bad = |why: &str| format!("invalid fault entry {entry:?}: {why}");
        let (head, window) = match entry.split_once('@') {
            Some((head, window)) => (head, Some(window)),
            None => (entry, None),
        };
        let (from_step, until_step) = match window {
            None => (0, None),
            Some(w) => match w.split_once("..") {
                None => {
                    let from = w.parse().map_err(|_| bad("bad start step"))?;
                    (from, None)
                }
                Some((from, "")) => {
                    let from = from.parse().map_err(|_| bad("bad start step"))?;
                    (from, None)
                }
                Some((from, until)) => {
                    let from: usize = from.parse().map_err(|_| bad("bad start step"))?;
                    let until: usize = until.parse().map_err(|_| bad("bad end step"))?;
                    if until <= from {
                        return Err(bad("window end must be after its start"));
                    }
                    (from, Some(until))
                }
            },
        };
        let mut parts = head.split(':');
        let vehicle_id: u32 = parts
            .next()
            .ok_or_else(|| bad("missing vehicle id"))?
            .parse()
            .map_err(|_| bad("bad vehicle id"))?;
        let kind_name = parts.next().ok_or_else(|| bad("missing fault kind"))?;
        let mut param = |what: &str| -> Result<f64, String> {
            parts
                .next()
                .ok_or_else(|| bad(&format!("missing {what}")))?
                .parse()
                .map_err(|_| bad(&format!("bad {what}")))
        };
        let kind = match kind_name {
            "drift" => {
                let sigma = param("drift sigma")?;
                if !(sigma > 0.0 && sigma.is_finite()) {
                    return Err(bad("drift sigma must be positive and finite"));
                }
                FaultKind::GpsDrift {
                    sigma_m_per_step: sigma,
                }
            }
            "bias" => {
                let east_m = param("east offset")?;
                let north_m = param("north offset")?;
                if !(east_m.is_finite() && north_m.is_finite()) {
                    return Err(bad("bias offsets must be finite"));
                }
                FaultKind::GpsBias { east_m, north_m }
            }
            "yaw" => {
                let bias_rad = param("yaw bias")?;
                if !bias_rad.is_finite() {
                    return Err(bad("yaw bias must be finite"));
                }
                FaultKind::ImuYawBias { bias_rad }
            }
            "freeze" => FaultKind::FrozenPose,
            "stale" => {
                let age = param("stale age")?;
                if age < 1.0 || age.fract() != 0.0 {
                    return Err(bad("stale age must be a positive integer"));
                }
                FaultKind::StaleScan {
                    age_steps: age as usize,
                }
            }
            "ghost" => {
                let clusters = param("ghost cluster count")?;
                if clusters < 1.0 || clusters.fract() != 0.0 {
                    return Err(bad("ghost cluster count must be a positive integer"));
                }
                FaultKind::GhostClusters {
                    clusters: clusters as usize,
                }
            }
            "replay" => FaultKind::ScanReplay,
            "corrupt" => {
                let rate = param("corruption rate")?;
                if !(rate > 0.0 && rate <= 1.0) {
                    return Err(bad("corruption rate must be in (0, 1]"));
                }
                FaultKind::PayloadCorruption { rate }
            }
            other => return Err(bad(&format!("unknown fault kind {other:?}"))),
        };
        if parts.next().is_some() {
            return Err(bad("trailing parameters"));
        }
        Ok(FaultSpec {
            vehicle_id,
            from_step,
            until_step,
            kind,
        })
    }
}

/// A faulted pose measurement: the estimate the vehicle would attach
/// to its broadcasts plus the frame stamp it would put on the packet
/// (differs from the true step only under [`FaultKind::StaleScan`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultedMeasurement {
    /// The (possibly faulted) pose estimate.
    pub estimate: PoseEstimate,
    /// The step the packet is stamped with.
    pub stamp_step: usize,
    /// `true` when at least one fault was active.
    pub faulted: bool,
}

/// The adversarial broadcast behavior a fault plan prescribes for one
/// (vehicle, step): what the vehicle tampers with before transmitting.
/// The measurement path never sees these — the vehicle's own perception
/// stays honest, which is exactly what makes the attacks hard to spot
/// from the outside.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ScanFaults {
    /// Ghost clusters to inject into the broadcast scan (summed over
    /// active [`FaultKind::GhostClusters`] specs).
    pub ghost_clusters: usize,
    /// `Some(step)` when a [`FaultKind::ScanReplay`] fault is active:
    /// the vehicle rebroadcasts the scan, estimate, and stamp it
    /// captured at `step` (the earliest active onset).
    pub replay_from: Option<usize>,
    /// Fraction of broadcast payload bytes to flip at the source
    /// (summed over active specs, capped at 1.0); zero when inactive.
    pub corrupt_rate: f64,
}

impl ScanFaults {
    /// `true` when any adversarial broadcast behavior is active.
    pub fn any(&self) -> bool {
        self.ghost_clusters > 0 || self.replay_from.is_some() || self.corrupt_rate > 0.0
    }
}

/// Salt separating the fault-injection RNG streams from the scan and
/// measurement streams derived from the same fleet seed.
const FAULT_STREAM: u64 = 0x7A5E_11DA_7E00_00F1;

/// Salt separating ghost-cluster geometry draws from the pose-fault
/// streams sharing the same (seed, vehicle, step).
const GHOST_STREAM: u64 = 0x7A5E_11DA_7E00_00F7;

/// Points per injected ghost cluster — dense enough that SPOD treats
/// the cluster as a real car-sized object.
const GHOST_POINTS_PER_CLUSTER: usize = 60;

/// Derives the seed of the (vehicle, step) fault stream — the same
/// SplitMix64 finalizer the fleet uses for its measurement streams, so
/// faulted draws are independent of execution order.
fn fault_stream_seed(seed: u64, vehicle_id: u32, step: usize) -> u64 {
    let mut z = seed
        ^ FAULT_STREAM
        ^ u64::from(vehicle_id).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (step as u64).wrapping_mul(0xD1B5_4A32_D192_ED03);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Applies a [`FaultPlan`] to clean pose measurements.
///
/// The injector is immutable and side-effect free: the faulted
/// estimate for a given (vehicle, step) depends only on the plan, the
/// seed and the trajectory, never on which measurements were computed
/// before it — the property that keeps faulted fleet runs bit-identical
/// at any thread count.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    model: GpsImuModel,
    origin: GpsFix,
    seed: u64,
}

impl FaultInjector {
    /// Binds a plan to the sensor model, shared origin and fleet seed.
    pub fn new(plan: FaultPlan, model: GpsImuModel, origin: GpsFix, seed: u64) -> Self {
        FaultInjector {
            plan,
            model,
            origin,
            seed,
        }
    }

    /// The plan this injector applies.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Applies every fault active for `vehicle_id` at `step` to the
    /// clean measurement `clean`. `pose_at` must return the vehicle's
    /// true pose at any past step (used by frozen/stale faults).
    ///
    /// Faults compose in plan order; replacement faults (freeze,
    /// stale) re-measure from the historic pose with a deterministic
    /// fault-stream RNG, additive faults (drift, bias, yaw) offset
    /// whatever estimate the preceding faults produced.
    pub fn measure(
        &self,
        vehicle_id: u32,
        step: usize,
        pose_at: &dyn Fn(usize) -> Pose,
        clean: PoseEstimate,
    ) -> FaultedMeasurement {
        let mut estimate = clean;
        let mut stamp_step = step;
        let mut faulted = false;
        for spec in &self.plan.faults {
            if !spec.active_at(vehicle_id, step) {
                continue;
            }
            // Adversarial kinds tamper with broadcast *content*, not
            // the pose measurement: the fleet loop applies them via
            // `scan_faults` / `ghost_cloud`, and the sensor reading
            // itself stays honest — they do not mark the measurement
            // as faulted.
            if matches!(
                spec.kind,
                FaultKind::GhostClusters { .. }
                    | FaultKind::ScanReplay
                    | FaultKind::PayloadCorruption { .. }
            ) {
                continue;
            }
            faulted = true;
            match spec.kind {
                FaultKind::GpsDrift { sigma_m_per_step } => {
                    let walk = self.random_walk(vehicle_id, spec.from_step, step, sigma_m_per_step);
                    estimate.gps = estimate.gps.offset_by(walk);
                }
                FaultKind::GpsBias { east_m, north_m } => {
                    estimate.gps = estimate.gps.offset_by(Vec3::new(east_m, north_m, 0.0));
                }
                FaultKind::ImuYawBias { bias_rad } => {
                    estimate.attitude.yaw = normalize_angle(estimate.attitude.yaw + bias_rad);
                }
                FaultKind::FrozenPose => {
                    estimate = self.measure_at(vehicle_id, spec.from_step, pose_at);
                }
                FaultKind::StaleScan { age_steps } => {
                    let src = step.saturating_sub(age_steps);
                    estimate = self.measure_at(vehicle_id, src, pose_at);
                    stamp_step = src;
                }
                // Filtered out above — broadcast-content kinds never
                // reach the measurement path.
                FaultKind::GhostClusters { .. }
                | FaultKind::ScanReplay
                | FaultKind::PayloadCorruption { .. } => {}
            }
        }
        FaultedMeasurement {
            estimate,
            stamp_step,
            faulted,
        }
    }

    /// Re-measures the vehicle's pose as of `src_step` with the
    /// deterministic fault-stream RNG: the same value no matter which
    /// later step asks for it.
    fn measure_at(
        &self,
        vehicle_id: u32,
        src_step: usize,
        pose_at: &dyn Fn(usize) -> Pose,
    ) -> PoseEstimate {
        let mut rng = StdRng::seed_from_u64(fault_stream_seed(self.seed, vehicle_id, src_step));
        self.model
            .measure(&pose_at(src_step), &self.origin, &mut rng)
    }

    /// The adversarial broadcast behavior active for `vehicle_id` at
    /// `step` — what the fleet loop consults when assembling the
    /// vehicle's outgoing broadcast.
    pub fn scan_faults(&self, vehicle_id: u32, step: usize) -> ScanFaults {
        let mut out = ScanFaults::default();
        for spec in &self.plan.faults {
            if !spec.active_at(vehicle_id, step) {
                continue;
            }
            match spec.kind {
                FaultKind::GhostClusters { clusters } => out.ghost_clusters += clusters,
                FaultKind::ScanReplay => {
                    out.replay_from = Some(
                        out.replay_from
                            .map_or(spec.from_step, |f| f.min(spec.from_step)),
                    );
                }
                FaultKind::PayloadCorruption { rate } => {
                    out.corrupt_rate = (out.corrupt_rate + rate).min(1.0);
                }
                _ => {}
            }
        }
        out
    }

    /// The ghost clusters `vehicle_id` injects into its broadcast at
    /// `step`, as points in the vehicle's own sensor frame — empty when
    /// no [`FaultKind::GhostClusters`] fault is active. Each cluster is
    /// a car-sized box of points at a plausible range, drawn from the
    /// (vehicle, step) fault stream so the injection is bit-identical
    /// at any thread count.
    pub fn ghost_cloud(&self, vehicle_id: u32, step: usize) -> PointCloud {
        let clusters = self.scan_faults(vehicle_id, step).ghost_clusters;
        let mut cloud = PointCloud::new();
        if clusters == 0 {
            return cloud;
        }
        let mut rng = StdRng::seed_from_u64(fault_stream_seed(
            self.seed ^ GHOST_STREAM,
            vehicle_id,
            step,
        ));
        for _ in 0..clusters {
            // A plausible car: 8–20 m out at a random bearing, roughly
            // 4.2 x 1.8 x 1.4 m of returns centred at car mid-height
            // (the sensor sits ~1.8 m up, so the cluster is below it).
            let range = 8.0 + rng.gen::<f64>() * 12.0;
            let azimuth = rng.gen::<f64>() * std::f64::consts::TAU;
            let center = Vec3::new(range * azimuth.cos(), range * azimuth.sin(), -1.0);
            for _ in 0..GHOST_POINTS_PER_CLUSTER {
                let offset = Vec3::new(
                    (rng.gen::<f64>() - 0.5) * 4.2,
                    (rng.gen::<f64>() - 0.5) * 1.8,
                    (rng.gen::<f64>() - 0.5) * 1.4,
                );
                let reflectance = (0.45 + rng.gen::<f64>() * 0.4) as f32;
                cloud.push(Point::new(center + offset, reflectance));
            }
        }
        cloud
    }

    /// The accumulated random walk at `step` for a drift fault that
    /// began at `from_step`: the sum of one planar Gaussian increment
    /// per elapsed step, each drawn from its own (vehicle, step)
    /// stream so the sum is execution-order independent.
    fn random_walk(&self, vehicle_id: u32, from_step: usize, step: usize, sigma: f64) -> Vec3 {
        let noise = GaussianNoise::new(sigma);
        let mut walk = Vec3::ZERO;
        for k in from_step..=step {
            let mut rng = StdRng::seed_from_u64(fault_stream_seed(self.seed, vehicle_id, k));
            walk.x += noise.sample(&mut rng);
            walk.y += noise.sample(&mut rng);
        }
        walk
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cooper_geometry::{Attitude, Pose};

    fn origin() -> GpsFix {
        GpsFix::new(33.2075, -97.1526, 190.0)
    }

    fn injector(plan: FaultPlan) -> FaultInjector {
        FaultInjector::new(plan, GpsImuModel::ideal(), origin(), 7)
    }

    fn straight(step: usize) -> Pose {
        Pose::new(Vec3::new(step as f64 * 2.0, 0.0, 1.8), Attitude::level())
    }

    fn clean_at(step: usize) -> PoseEstimate {
        PoseEstimate::from_pose(&straight(step), &origin())
    }

    #[test]
    fn parse_full_grammar() {
        let plan = FaultPlan::parse(
            "2:drift:0.5@3..8, 1:bias:2.0:-1.0, 3:freeze@4.., 1:yaw:0.05@2, 4:stale:3",
        )
        .unwrap();
        assert_eq!(plan.faults().len(), 5);
        assert_eq!(
            plan.faults()[0],
            FaultSpec {
                vehicle_id: 2,
                from_step: 3,
                until_step: Some(8),
                kind: FaultKind::GpsDrift {
                    sigma_m_per_step: 0.5
                },
            }
        );
        assert_eq!(plan.faults()[1].from_step, 0);
        assert_eq!(plan.faults()[1].until_step, None);
        assert_eq!(plan.faults()[2].kind, FaultKind::FrozenPose);
        assert_eq!(plan.faults()[3].from_step, 2);
        assert_eq!(plan.faults()[4].kind, FaultKind::StaleScan { age_steps: 3 });
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in [
            "",
            "x:drift:0.5",
            "1:drift",
            "1:drift:-1",
            "1:explode:9",
            "1:freeze@5..2",
            "1:stale:0",
            "1:bias:1.0",
            "1:yaw:0.1:extra",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn windows_gate_activity() {
        let spec = FaultPlan::parse("2:freeze@3..6").unwrap().faults()[0];
        assert!(!spec.active_at(2, 2));
        assert!(spec.active_at(2, 3));
        assert!(spec.active_at(2, 5));
        assert!(!spec.active_at(2, 6));
        assert!(!spec.active_at(1, 4));
    }

    #[test]
    fn unaffected_vehicles_pass_through() {
        let inj = injector(FaultPlan::parse("2:bias:5.0:0.0").unwrap());
        let clean = clean_at(1);
        let out = inj.measure(1, 1, &straight, clean);
        assert!(!out.faulted);
        assert_eq!(out.estimate, clean);
        assert_eq!(out.stamp_step, 1);
    }

    #[test]
    fn bias_offsets_east_north() {
        let inj = injector(FaultPlan::parse("1:bias:3.0:-4.0").unwrap());
        let out = inj.measure(1, 2, &straight, clean_at(2));
        let delta = out.estimate.to_pose(&origin()).position - straight(2).position;
        assert!((delta - Vec3::new(3.0, -4.0, 0.0)).norm() < 1e-4, "{delta}");
        assert!(out.faulted);
    }

    #[test]
    fn drift_is_deterministic_and_accumulates() {
        let inj = injector(FaultPlan::parse("1:drift:0.5@2").unwrap());
        let at = |step: usize| {
            inj.measure(1, step, &straight, clean_at(step))
                .estimate
                .to_pose(&origin())
                .position
                - straight(step).position
        };
        // Same step, repeated or out-of-order queries: identical.
        let a = at(5);
        let _ = at(3);
        assert!((at(5) - a).norm() < 1e-12);
        // The walk is a prefix sum: consecutive steps differ by exactly
        // one increment.
        let step6_minus_step5 = at(6) - at(5);
        assert!(step6_minus_step5.norm() > 0.0);
        assert!(
            step6_minus_step5.norm() < 0.5 * 6.0,
            "increment implausibly large"
        );
        // Before onset, no drift.
        let before = inj.measure(1, 1, &straight, clean_at(1));
        assert!(!before.faulted);
    }

    #[test]
    fn frozen_pose_latches_at_onset() {
        let inj = injector(FaultPlan::parse("1:freeze@3").unwrap());
        let at4 = inj.measure(1, 4, &straight, clean_at(4)).estimate;
        let at9 = inj.measure(1, 9, &straight, clean_at(9)).estimate;
        assert_eq!(at4, at9, "frozen estimate must not move");
        let frozen_pos = at4.to_pose(&origin()).position;
        assert!((frozen_pos - straight(3).position).norm() < 1e-4);
    }

    #[test]
    fn stale_scan_lags_and_restamps() {
        let inj = injector(FaultPlan::parse("1:stale:3@5").unwrap());
        let out = inj.measure(1, 6, &straight, clean_at(6));
        assert_eq!(out.stamp_step, 3);
        let pos = out.estimate.to_pose(&origin()).position;
        assert!((pos - straight(3).position).norm() < 1e-4);
        // Clamps at step 0.
        let inj0 = injector(FaultPlan::parse("1:stale:9@0").unwrap());
        assert_eq!(inj0.measure(1, 2, &straight, clean_at(2)).stamp_step, 0);
    }

    #[test]
    fn faults_compose_in_plan_order() {
        // Freeze first, then bias: the bias applies on top of the
        // frozen estimate.
        let inj = injector(FaultPlan::parse("1:freeze@2,1:bias:10.0:0.0").unwrap());
        let out = inj.measure(1, 5, &straight, clean_at(5));
        let pos = out.estimate.to_pose(&origin()).position;
        assert!((pos - (straight(2).position + Vec3::new(10.0, 0.0, 0.0))).norm() < 1e-4);
    }

    #[test]
    fn yaw_bias_wraps() {
        let inj = injector(FaultPlan::parse("1:yaw:3.0").unwrap());
        let mut clean = clean_at(0);
        clean.attitude.yaw = 1.0;
        let out = inj.measure(1, 0, &straight, clean);
        assert!((out.estimate.attitude.yaw - normalize_angle(4.0)).abs() < 1e-12);
    }

    #[test]
    fn parse_adversarial_kinds() {
        let plan = FaultPlan::parse("2:ghost:3@4, 1:replay@5..12, 3:corrupt:0.02").unwrap();
        assert_eq!(
            plan.faults()[0].kind,
            FaultKind::GhostClusters { clusters: 3 }
        );
        assert_eq!(plan.faults()[0].from_step, 4);
        assert_eq!(plan.faults()[1].kind, FaultKind::ScanReplay);
        assert_eq!(plan.faults()[1].until_step, Some(12));
        assert_eq!(
            plan.faults()[2].kind,
            FaultKind::PayloadCorruption { rate: 0.02 }
        );
    }

    #[test]
    fn parse_rejects_adversarial_garbage() {
        for bad in [
            "1:ghost:0",
            "1:ghost",
            "1:ghost:1.5",
            "1:replay:extra",
            "1:corrupt:0",
            "1:corrupt:1.5",
            "1:corrupt",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn adversarial_kinds_leave_the_measurement_honest() {
        let inj = injector(FaultPlan::parse("1:ghost:2, 1:replay, 1:corrupt:0.5").unwrap());
        let out = inj.measure(1, 3, &straight, clean_at(3));
        assert!(!out.faulted);
        assert_eq!(out.stamp_step, 3);
        assert_eq!(out.estimate, clean_at(3));
    }

    #[test]
    fn scan_faults_accumulate_over_active_specs() {
        let inj = injector(
            FaultPlan::parse("1:ghost:2@3, 1:ghost:1@5, 1:replay@4, 1:corrupt:0.6, 1:corrupt:0.7")
                .unwrap(),
        );
        let at5 = inj.scan_faults(1, 5);
        assert_eq!(at5.ghost_clusters, 3);
        assert_eq!(at5.replay_from, Some(4));
        assert!((at5.corrupt_rate - 1.0).abs() < 1e-12, "rate caps at 1.0");
        assert!(at5.any());
        let clean = inj.scan_faults(2, 5);
        assert_eq!(clean, ScanFaults::default());
        assert!(!clean.any());
    }

    #[test]
    fn ghost_cloud_is_deterministic_and_car_sized() {
        let inj = injector(FaultPlan::parse("1:ghost:2@3").unwrap());
        assert!(inj.ghost_cloud(1, 0).is_empty(), "inactive before onset");
        let a = inj.ghost_cloud(1, 4);
        let b = inj.ghost_cloud(1, 4);
        assert_eq!(a.len(), 120);
        for (pa, pb) in a.iter().zip(b.iter()) {
            assert_eq!(pa.position, pb.position);
        }
        // Different steps draw different geometry.
        let c = inj.ghost_cloud(1, 5);
        assert!(a
            .iter()
            .zip(c.iter())
            .any(|(x, y)| x.position != y.position));
        // Every point sits at a plausible car range from the sensor.
        for p in a.iter() {
            let planar = (p.position.x * p.position.x + p.position.y * p.position.y).sqrt();
            assert!((5.0..23.0).contains(&planar), "range {planar}");
            assert!(p.position.z < 0.5, "below the sensor");
        }
    }
}
