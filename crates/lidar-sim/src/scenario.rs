//! The scenario library: synthetic stand-ins for the paper's evaluation
//! scenes.
//!
//! The paper evaluates 4 KITTI road scenarios (T-junction, stop sign,
//! left turn, curve — Figure 3) and 4 T&J parking-lot scenarios
//! (Figure 6), each pairing two observer positions `Δd` metres apart.
//! The raw recordings are unavailable, so each function here builds a
//! procedural scene with the same *structure*: the same Δd spacings, a
//! comparable car count, and occluders arranged so that each single shot
//! misses objects the other can see — the property every Cooper figure
//! rests on.

use cooper_geometry::{Attitude, Obb3, Pose, Vec3};
use serde::{Deserialize, Serialize};

use crate::{BeamModel, Entity, EntityId, ObjectClass, World};

/// Sensor mount height used for KITTI-style scenes (HDL-64E on a station
/// wagon roof).
pub const KITTI_MOUNT_HEIGHT: f64 = 1.73;
/// Sensor mount height used for T&J-style scenes (VLP-16 on a golf
/// cart).
pub const TJ_MOUNT_HEIGHT: f64 = 1.9;

/// Which dataset family a scenario emulates, selecting the beam model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DatasetKind {
    /// KITTI-style: dense 64-beam scans of road scenes.
    Kitti,
    /// T&J-style: sparse 16-beam scans of parking lots.
    TJ,
}

impl DatasetKind {
    /// The beam model the paper used for this dataset family.
    pub fn beam_model(self) -> BeamModel {
        match self {
            DatasetKind::Kitti => BeamModel::hdl64(),
            DatasetKind::TJ => BeamModel::vlp16(),
        }
    }
}

impl std::fmt::Display for DatasetKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            DatasetKind::Kitti => "KITTI",
            DatasetKind::TJ => "T&J",
        })
    }
}

/// One evaluation scene: a world, a set of candidate observer poses and
/// the cooperative pairs evaluated in the corresponding figure.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Scenario {
    /// Human-readable name ("KITTI scenario 1 (T-junction)").
    pub name: String,
    /// Which dataset family this emulates.
    pub kind: DatasetKind,
    /// The static world.
    pub world: World,
    /// Candidate sensor poses (mount height included).
    pub observers: Vec<Pose>,
    /// Index pairs `(i, j)` into `observers` forming the cooperative
    /// cases of the paper's figure, in column order.
    pub pairs: Vec<(usize, usize)>,
}

impl Scenario {
    /// The world-frame boxes of all cars — the ground truth.
    pub fn ground_truth_cars(&self) -> Vec<Obb3> {
        self.world.ground_truth_boxes(ObjectClass::Car)
    }

    /// The `Δd` between the two observers of `pair` (planar metres).
    ///
    /// # Panics
    ///
    /// Panics when either index is out of range.
    pub fn delta_d(&self, pair: (usize, usize)) -> f64 {
        self.observers[pair.0].delta_d(&self.observers[pair.1])
    }

    /// Validates internal consistency (pair indices in range, observers
    /// above ground, at least one car).
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency found.
    pub fn validate(&self) -> Result<(), String> {
        for &(a, b) in &self.pairs {
            if a >= self.observers.len() || b >= self.observers.len() {
                return Err(format!("pair ({a}, {b}) out of range in {}", self.name));
            }
            if a == b {
                return Err(format!("degenerate pair ({a}, {b}) in {}", self.name));
            }
        }
        if self.observers.iter().any(|o| o.position.z <= 0.0) {
            return Err(format!("observer below ground in {}", self.name));
        }
        if self.ground_truth_cars().is_empty() {
            return Err(format!("no cars in {}", self.name));
        }
        Ok(())
    }
}

/// An id allocator so scenario builders never collide.
struct Ids(u32);

impl Ids {
    fn next(&mut self) -> EntityId {
        self.0 += 1;
        EntityId(self.0)
    }
}

fn observer(x: f64, y: f64, yaw: f64, mount: f64) -> Pose {
    Pose::new(Vec3::new(x, y, mount), Attitude::from_yaw(yaw))
}

/// KITTI scenario 1: a T-junction (Δd ≈ 14.7 m between the two shots).
///
/// An east-west road meets a north-south road; buildings on the junction
/// corners occlude the crossing traffic until the observer is close.
pub fn t_junction() -> Scenario {
    let mut ids = Ids(0);
    let mut world = World::new();

    // Corner buildings flanking the junction (the occluders).
    world.add(Entity::wall(
        ids.next(),
        Vec3::new(18.0, 8.0, 0.0),
        Vec3::new(38.0, 8.0, 0.0),
        6.0,
        1.0,
    ));
    world.add(Entity::wall(
        ids.next(),
        Vec3::new(18.0, -8.0, 0.0),
        Vec3::new(38.0, -8.0, 0.0),
        6.0,
        1.0,
    ));
    world.add(Entity::wall(
        ids.next(),
        Vec3::new(52.0, 8.0, 0.0),
        Vec3::new(70.0, 8.0, 0.0),
        6.0,
        1.0,
    ));
    world.add(Entity::wall(
        ids.next(),
        Vec3::new(52.0, -8.0, 0.0),
        Vec3::new(70.0, -8.0, 0.0),
        6.0,
        1.0,
    ));

    // Crossing traffic on the north-south road (x ≈ 45), hidden behind
    // the corner buildings from far away.
    world.add(Entity::car(
        ids.next(),
        Vec3::new(45.0, 14.0, 0.0),
        std::f64::consts::FRAC_PI_2,
    ));
    world.add(Entity::car(
        ids.next(),
        Vec3::new(45.0, 22.0, 0.0),
        -std::f64::consts::FRAC_PI_2,
    ));
    world.add(Entity::car(
        ids.next(),
        Vec3::new(44.0, -13.0, 0.0),
        std::f64::consts::FRAC_PI_2,
    ));
    world.add(Entity::car(
        ids.next(),
        Vec3::new(46.0, -21.0, 0.0),
        std::f64::consts::FRAC_PI_2,
    ));

    // Oncoming and parked cars along the east-west approach road.
    world.add(Entity::car(
        ids.next(),
        Vec3::new(24.0, 3.0, 0.0),
        std::f64::consts::PI,
    ));
    world.add(Entity::car(
        ids.next(),
        Vec3::new(33.0, 3.2, 0.0),
        std::f64::consts::PI,
    ));
    world.add(Entity::car(ids.next(), Vec3::new(15.0, -3.4, 0.0), 0.0));
    // A car immediately behind the lead parked one: occluded from the
    // first shot, visible from the second.
    world.add(Entity::car(ids.next(), Vec3::new(21.0, -3.4, 0.0), 0.0));
    world.add(Entity::car(
        ids.next(),
        Vec3::new(56.0, 3.0, 0.0),
        std::f64::consts::PI,
    ));

    let observers = vec![
        observer(-6.7, 0.0, 0.0, KITTI_MOUNT_HEIGHT),
        observer(8.0, 0.0, 0.0, KITTI_MOUNT_HEIGHT),
    ];
    Scenario {
        name: "KITTI scenario 1 (T-junction)".into(),
        kind: DatasetKind::Kitti,
        world,
        observers,
        pairs: vec![(0, 1)],
    }
}

/// KITTI scenario 2: a stop-sign street (Δd ≈ 13.3 m).
///
/// Parked cars line both curbs; a van-sized occluder hides two vehicles
/// from the first shot.
pub fn stop_sign() -> Scenario {
    let mut ids = Ids(100);
    let mut world = World::new();

    // Roadside buildings.
    world.add(Entity::wall(
        ids.next(),
        Vec3::new(0.0, 9.0, 0.0),
        Vec3::new(60.0, 9.0, 0.0),
        5.0,
        1.0,
    ));
    world.add(Entity::wall(
        ids.next(),
        Vec3::new(0.0, -9.0, 0.0),
        Vec3::new(60.0, -9.0, 0.0),
        5.0,
        1.0,
    ));

    // A tall van-sized occluder parked mid-block.
    let van = Entity::new(
        ids.next(),
        ObjectClass::Background,
        Obb3::new(Vec3::new(22.0, -5.0, 1.25), Vec3::new(7.0, 2.4, 2.5), 0.0),
        0.35,
    );
    world.add(van);

    // Parked cars along the curbs; two sit in the van's shadow.
    world.add(Entity::car(ids.next(), Vec3::new(12.0, -5.5, 0.0), 0.0));
    world.add(Entity::car(ids.next(), Vec3::new(30.0, -5.5, 0.0), 0.0)); // shadowed from shot 1
    world.add(Entity::car(ids.next(), Vec3::new(36.0, -5.5, 0.0), 0.0)); // shadowed from shot 1
    world.add(Entity::car(
        ids.next(),
        Vec3::new(16.0, 5.5, 0.0),
        std::f64::consts::PI,
    ));
    world.add(Entity::car(
        ids.next(),
        Vec3::new(27.0, 5.5, 0.0),
        std::f64::consts::PI,
    ));
    world.add(Entity::car(
        ids.next(),
        Vec3::new(44.0, 5.5, 0.0),
        std::f64::consts::PI,
    ));
    // Stopped traffic near the sign, far out.
    world.add(Entity::car(ids.next(), Vec3::new(52.0, 1.8, 0.0), 0.0));

    let observers = vec![
        observer(-5.0, -1.8, 0.0, KITTI_MOUNT_HEIGHT),
        observer(8.3, -1.8, 0.0, KITTI_MOUNT_HEIGHT),
    ];
    Scenario {
        name: "KITTI scenario 2 (stop sign)".into(),
        kind: DatasetKind::Kitti,
        world,
        observers,
        pairs: vec![(0, 1)],
    }
}

/// KITTI scenario 3: a left turn (Δd = 0 m — the same position, rotated).
///
/// The two shots share a position but different headings, so each sees a
/// different 120°-relevant sector of the junction.
pub fn left_turn() -> Scenario {
    let mut ids = Ids(200);
    let mut world = World::new();

    // Buildings boxing the junction.
    world.add(Entity::wall(
        ids.next(),
        Vec3::new(12.0, 10.0, 0.0),
        Vec3::new(40.0, 10.0, 0.0),
        6.0,
        1.0,
    ));
    world.add(Entity::wall(
        ids.next(),
        Vec3::new(-12.0, -10.0, 0.0),
        Vec3::new(-12.0, -40.0, 0.0),
        6.0,
        1.0,
    ));

    // Traffic ahead (seen by the pre-turn heading).
    world.add(Entity::car(ids.next(), Vec3::new(18.0, -2.5, 0.0), 0.0));
    world.add(Entity::car(ids.next(), Vec3::new(26.0, -2.5, 0.0), 0.0));
    world.add(Entity::car(
        ids.next(),
        Vec3::new(24.0, 3.0, 0.0),
        std::f64::consts::PI,
    ));
    // Traffic on the target road (seen after turning left / north).
    world.add(Entity::car(
        ids.next(),
        Vec3::new(-2.5, 18.0, 0.0),
        std::f64::consts::FRAC_PI_2,
    ));
    world.add(Entity::car(
        ids.next(),
        Vec3::new(-2.8, 27.0, 0.0),
        std::f64::consts::FRAC_PI_2,
    ));
    world.add(Entity::car(
        ids.next(),
        Vec3::new(3.0, 23.0, 0.0),
        -std::f64::consts::FRAC_PI_2,
    ));
    // One car in the rear-left blind spot of both headings... visible to the second.
    world.add(Entity::car(
        ids.next(),
        Vec3::new(-14.0, 6.0, 0.0),
        std::f64::consts::FRAC_PI_2,
    ));

    let observers = vec![
        observer(0.0, 0.0, 0.0, KITTI_MOUNT_HEIGHT),
        observer(
            0.0,
            0.0,
            std::f64::consts::FRAC_PI_2 * 0.9,
            KITTI_MOUNT_HEIGHT,
        ),
    ];
    Scenario {
        name: "KITTI scenario 3 (left turn)".into(),
        kind: DatasetKind::Kitti,
        world,
        observers,
        pairs: vec![(0, 1)],
    }
}

/// KITTI scenario 4: a curve (Δd ≈ 48.1 m — the farthest pairing).
///
/// A long bend with an inner-curve embankment wall; each shot covers one
/// end of the bend.
pub fn curve() -> Scenario {
    let mut ids = Ids(300);
    let mut world = World::new();

    // Inner-curve wall: a chord of segments approximating the bend.
    let mut prev = Vec3::new(0.0, 12.0, 0.0);
    for i in 1..=6 {
        let angle = i as f64 / 6.0 * 0.9;
        let next = Vec3::new(
            60.0 * angle.sin() / 0.9,
            12.0 + 30.0 * (1.0 - angle.cos()) / 0.9,
            0.0,
        );
        world.add(Entity::wall(ids.next(), prev, next, 4.0, 1.0));
        prev = next;
    }

    // Cars strung along the curve (y drifts with x).
    let curve_y = |x: f64| 0.004 * x * x;
    for (i, x) in [10.0f64, 20.0, 30.0, 42.0, 55.0, 65.0].iter().enumerate() {
        let yaw = (0.008 * x).atan();
        let y = curve_y(*x) + if i % 2 == 0 { -2.5 } else { 2.8 };
        world.add(Entity::car(ids.next(), Vec3::new(*x, y, 0.0), yaw));
    }
    // Two cars past the bend, invisible from the first shot.
    world.add(Entity::car(
        ids.next(),
        Vec3::new(76.0, curve_y(76.0) - 2.5, 0.0),
        0.55,
    ));
    world.add(Entity::car(
        ids.next(),
        Vec3::new(84.0, curve_y(84.0) + 2.8, 0.0),
        0.6,
    ));

    let observers = vec![
        observer(-10.0, 0.0, 0.0, KITTI_MOUNT_HEIGHT),
        observer(
            38.0,
            curve_y(38.0) + 0.3,
            (0.008 * 38.0f64).atan(),
            KITTI_MOUNT_HEIGHT,
        ),
    ];
    Scenario {
        name: "KITTI scenario 4 (curve)".into(),
        kind: DatasetKind::Kitti,
        world,
        observers,
        pairs: vec![(0, 1)],
    }
}

/// All four KITTI-style scenarios in Figure-3 order.
pub fn kitti_scenarios() -> Vec<Scenario> {
    vec![t_junction(), stop_sign(), left_turn(), curve()]
}

/// Builds a T&J-style parking lot: `rows × cols` stalls with `occupancy`
/// of them holding parked cars (deterministic pattern), plus a perimeter
/// fence.
fn parking_lot(
    ids: &mut Ids,
    world: &mut World,
    origin: Vec3,
    rows: usize,
    cols: usize,
    skip: &[usize],
) {
    let stall_w = 3.0;
    let aisle = 7.0;
    let mut index = 0;
    for row in 0..rows {
        for col in 0..cols {
            let here = index;
            index += 1;
            if skip.contains(&here) {
                continue;
            }
            let x = origin.x + col as f64 * stall_w;
            let y = origin.y + row as f64 * (5.0 + aisle);
            // Parked nose-in: heading perpendicular to the aisle.
            world.add(Entity::car(
                ids.next(),
                Vec3::new(x, y, 0.0),
                std::f64::consts::FRAC_PI_2,
            ));
        }
    }
}

/// T&J scenario 1: one parking row plus scattered visitors
/// (pairs at Δd ≈ 5.5 / 14.5 / 26.9 m — Figure 6a).
pub fn tj_scenario_1() -> Scenario {
    let mut ids = Ids(400);
    let mut world = World::new();

    parking_lot(
        &mut ids,
        &mut world,
        Vec3::new(8.0, 10.0, 0.0),
        1,
        8,
        &[2, 5],
    );
    // A second, farther row partially shadowed by the first.
    parking_lot(
        &mut ids,
        &mut world,
        Vec3::new(9.5, 22.0, 0.0),
        1,
        6,
        &[1, 4],
    );
    // Perimeter fence behind everything.
    world.add(Entity::wall(
        ids.next(),
        Vec3::new(0.0, 30.0, 0.0),
        Vec3::new(40.0, 30.0, 0.0),
        2.5,
        0.3,
    ));

    let observers = vec![
        observer(4.0, 0.0, 1.1, TJ_MOUNT_HEIGHT),  // car1
        observer(9.5, 0.5, 1.3, TJ_MOUNT_HEIGHT),  // car2 (Δd ≈ 5.5)
        observer(18.4, 2.0, 1.6, TJ_MOUNT_HEIGHT), // car3 (Δd ≈ 14.5)
        observer(30.5, 3.0, 1.9, TJ_MOUNT_HEIGHT), // car4 (Δd ≈ 26.9)
    ];
    Scenario {
        name: "T&J scenario 1 (parking row)".into(),
        kind: DatasetKind::TJ,
        world,
        observers,
        pairs: vec![(0, 1), (0, 2), (0, 3)],
    }
}

/// T&J scenario 2: a crowded double lot (pairs at Δd ≈ 15.0 / 33.1 /
/// 20.0 / 15.7 m between five carts — Figure 6b).
pub fn tj_scenario_2() -> Scenario {
    let mut ids = Ids(500);
    let mut world = World::new();

    parking_lot(
        &mut ids,
        &mut world,
        Vec3::new(6.0, 12.0, 0.0),
        2,
        6,
        &[3, 8],
    );
    // A maintenance shed in the middle of the lot — a hard occluder.
    world.add(Entity::wall(
        ids.next(),
        Vec3::new(20.0, 4.0, 0.0),
        Vec3::new(28.0, 4.0, 0.0),
        3.0,
        2.0,
    ));

    let observers = vec![
        observer(0.0, 0.0, 0.9, TJ_MOUNT_HEIGHT),    // car1
        observer(15.0, -1.0, 1.2, TJ_MOUNT_HEIGHT),  // car2 (Δd ≈ 15.0 from car1)
        observer(33.0, 2.5, 1.9, TJ_MOUNT_HEIGHT),   // car3 (Δd ≈ 33.1 from car1)
        observer(44.0, -14.0, 2.4, TJ_MOUNT_HEIGHT), // car4 (Δd ≈ 20.0 from car3)
        observer(48.0, 1.0, 2.2, TJ_MOUNT_HEIGHT),   // car5 (Δd ≈ 15.7 from car4)
    ];
    Scenario {
        name: "T&J scenario 2 (crowded lot)".into(),
        kind: DatasetKind::TJ,
        world,
        observers,
        pairs: vec![(0, 1), (0, 2), (2, 3), (3, 4)],
    }
}

/// T&J scenario 3: campus road beside a lot (Δd ≈ 4.8 / 16.6 / 21.8 /
/// 18.7 m — Figure 6c).
pub fn tj_scenario_3() -> Scenario {
    let mut ids = Ids(600);
    let mut world = World::new();

    parking_lot(&mut ids, &mut world, Vec3::new(10.0, 14.0, 0.0), 1, 7, &[3]);
    // Cars moving on the campus road.
    world.add(Entity::car(ids.next(), Vec3::new(18.0, -4.0, 0.0), 0.0));
    world.add(Entity::car(ids.next(), Vec3::new(30.0, -4.2, 0.0), 0.0));
    world.add(Entity::car(
        ids.next(),
        Vec3::new(26.0, 4.0, 0.0),
        std::f64::consts::PI,
    ));
    // A delivery truck blocking the lot entrance.
    world.add(Entity::new(
        ids.next(),
        ObjectClass::Background,
        Obb3::new(Vec3::new(12.0, 5.0, 1.5), Vec3::new(8.0, 2.5, 3.0), 0.1),
        0.35,
    ));

    let observers = vec![
        observer(2.0, 0.0, 0.6, TJ_MOUNT_HEIGHT),   // car1
        observer(6.8, 0.5, 0.8, TJ_MOUNT_HEIGHT),   // car2 (Δd ≈ 4.8)
        observer(18.5, 1.5, 1.1, TJ_MOUNT_HEIGHT),  // car3 (Δd ≈ 16.6)
        observer(24.0, -2.0, 1.4, TJ_MOUNT_HEIGHT), // car4 (Δd ≈ 21.8 from car1)
        observer(42.0, 2.5, 1.7, TJ_MOUNT_HEIGHT),  // car5 (Δd ≈ 18.7 from car4)
    ];
    Scenario {
        name: "T&J scenario 3 (campus road)".into(),
        kind: DatasetKind::TJ,
        world,
        observers,
        pairs: vec![(0, 1), (0, 2), (0, 3), (3, 4)],
    }
}

/// T&J scenario 4: the densest lot (rows up to 17 detected cars; Δd ≈
/// 3.9 / 9.9 / 15.7 / 23.1 m — Figure 6d).
pub fn tj_scenario_4() -> Scenario {
    let mut ids = Ids(700);
    let mut world = World::new();

    parking_lot(
        &mut ids,
        &mut world,
        Vec3::new(6.0, 10.0, 0.0),
        2,
        9,
        &[4, 10, 13],
    );
    // A second lot across the aisle behind a hedge.
    world.add(Entity::wall(
        ids.next(),
        Vec3::new(4.0, -8.0, 0.0),
        Vec3::new(34.0, -8.0, 0.0),
        1.6,
        0.8,
    ));
    parking_lot(&mut ids, &mut world, Vec3::new(8.0, -14.0, 0.0), 1, 5, &[2]);

    let observers = vec![
        observer(0.0, 0.0, 0.7, TJ_MOUNT_HEIGHT),   // car1
        observer(3.9, 0.0, 0.8, TJ_MOUNT_HEIGHT),   // car2 (Δd ≈ 3.9)
        observer(9.6, 2.5, 1.0, TJ_MOUNT_HEIGHT),   // car3 (Δd ≈ 9.9)
        observer(15.4, -3.0, 1.3, TJ_MOUNT_HEIGHT), // car4 (Δd ≈ 15.7)
        observer(22.6, 4.5, 1.6, TJ_MOUNT_HEIGHT),  // car5 (Δd ≈ 23.1)
    ];
    Scenario {
        name: "T&J scenario 4 (dense lot)".into(),
        kind: DatasetKind::TJ,
        world,
        observers,
        pairs: vec![(0, 1), (0, 2), (0, 3), (0, 4)],
    }
}

/// All four T&J-style scenarios in Figure-6 order.
pub fn tj_scenarios() -> Vec<Scenario> {
    vec![
        tj_scenario_1(),
        tj_scenario_2(),
        tj_scenario_3(),
        tj_scenario_4(),
    ]
}

/// Extended scenario (beyond the paper's eight): a divided highway with
/// *moving* traffic in both directions. Entities carry velocities, so
/// [`crate::World::advanced`] evolves the scene — the substrate for the
/// exchange-staleness experiments.
pub fn highway() -> Scenario {
    let mut ids = Ids(800);
    let mut world = World::new();

    // Median barrier.
    world.add(Entity::wall(
        ids.next(),
        Vec3::new(-60.0, 0.0, 0.0),
        Vec3::new(90.0, 0.0, 0.0),
        1.0,
        0.5,
    ));
    // Sound walls flanking the carriageways.
    world.add(Entity::wall(
        ids.next(),
        Vec3::new(-60.0, 12.0, 0.0),
        Vec3::new(90.0, 12.0, 0.0),
        4.0,
        0.6,
    ));
    world.add(Entity::wall(
        ids.next(),
        Vec3::new(-60.0, -12.0, 0.0),
        Vec3::new(90.0, -12.0, 0.0),
        4.0,
        0.6,
    ));

    // Eastbound traffic (y < 0) at 25 m/s, westbound (y > 0) at 22 m/s.
    for (i, x) in [-40.0f64, -15.0, 5.0, 30.0, 55.0].iter().enumerate() {
        let lane = if i % 2 == 0 { -3.0 } else { -7.0 };
        world.add(
            Entity::car(ids.next(), Vec3::new(*x, lane, 0.0), 0.0)
                .with_velocity(Vec3::new(25.0, 0.0, 0.0)),
        );
    }
    for (i, x) in [-30.0f64, 0.0, 20.0, 45.0].iter().enumerate() {
        let lane = if i % 2 == 0 { 3.0 } else { 7.0 };
        world.add(
            Entity::car(ids.next(), Vec3::new(*x, lane, 0.0), std::f64::consts::PI)
                .with_velocity(Vec3::new(-22.0, 0.0, 0.0)),
        );
    }

    // Two cooperating vehicles in the eastbound slow lane, 40 m apart.
    let observers = vec![
        observer(-25.0, -3.0, 0.0, KITTI_MOUNT_HEIGHT),
        observer(15.0, -3.0, 0.0, KITTI_MOUNT_HEIGHT),
    ];
    Scenario {
        name: "Extended scenario (highway, moving traffic)".into(),
        kind: DatasetKind::Kitti,
        world,
        observers,
        pairs: vec![(0, 1)],
    }
}

/// Extended scenario (beyond the paper's eight): a crosswalk crowded
/// with pedestrians and cyclists — the small classes the paper's
/// introduction motivates. A stopped bus hides half the crossing from
/// the first observer.
pub fn crosswalk() -> Scenario {
    let mut ids = Ids(900);
    let mut world = World::new();

    // The stopped bus (a tall occluder) just before the crossing.
    world.add(Entity::new(
        ids.next(),
        ObjectClass::Background,
        Obb3::new(Vec3::new(14.0, 3.2, 1.6), Vec3::new(11.0, 2.5, 3.2), 0.0),
        0.4,
    ));
    // Pedestrians on the crossing (x ≈ 22), walking.
    for (i, y) in [-4.0f64, -1.5, 0.5, 2.0, 5.0].iter().enumerate() {
        world.add(
            Entity::standing(
                ids.next(),
                ObjectClass::Pedestrian,
                Vec3::new(22.0 + 0.4 * i as f64, *y, 0.0),
                1.5,
            )
            .with_velocity(Vec3::new(0.0, 1.4, 0.0)),
        );
    }
    // Cyclists in the bike lane.
    world.add(
        Entity::standing(
            ids.next(),
            ObjectClass::Cyclist,
            Vec3::new(19.0, -6.5, 0.0),
            0.0,
        )
        .with_velocity(Vec3::new(5.0, 0.0, 0.0)),
    );
    world.add(
        Entity::standing(
            ids.next(),
            ObjectClass::Cyclist,
            Vec3::new(28.0, 6.5, 0.0),
            std::f64::consts::PI,
        )
        .with_velocity(Vec3::new(-5.0, 0.0, 0.0)),
    );
    // Queued cars on both sides of the crossing.
    world.add(Entity::car(ids.next(), Vec3::new(8.0, -2.8, 0.0), 0.0));
    world.add(Entity::car(ids.next(), Vec3::new(2.0, -2.8, 0.0), 0.0));
    world.add(Entity::car(
        ids.next(),
        Vec3::new(30.0, 2.8, 0.0),
        std::f64::consts::PI,
    ));

    let observers = vec![
        observer(0.0, -2.8, 0.0, KITTI_MOUNT_HEIGHT),
        // The oncoming vehicle sees behind the bus.
        observer(38.0, 2.8, std::f64::consts::PI, KITTI_MOUNT_HEIGHT),
    ];
    Scenario {
        name: "Extended scenario (crosswalk, small objects)".into(),
        kind: DatasetKind::Kitti,
        world,
        observers,
        pairs: vec![(0, 1)],
    }
}

/// The extended scenarios that go beyond the paper's evaluation set.
pub fn extended_scenarios() -> Vec<Scenario> {
    vec![highway(), crosswalk()]
}

/// Every scenario in the evaluation (4 KITTI + 4 T&J).
pub fn all_scenarios() -> Vec<Scenario> {
    let mut v = kitti_scenarios();
    v.extend(tj_scenarios());
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_scenarios_validate() {
        for s in all_scenarios() {
            s.validate().unwrap_or_else(|e| panic!("{e}"));
        }
    }

    #[test]
    fn kitti_delta_d_matches_paper() {
        let expected = [14.7, 13.3, 0.0, 48.1];
        for (s, want) in kitti_scenarios().iter().zip(expected) {
            let got = s.delta_d(s.pairs[0]);
            assert!(
                (got - want).abs() < 1.0,
                "{}: Δd {got:.1} wanted ≈{want}",
                s.name
            );
        }
    }

    #[test]
    fn tj_delta_d_matches_paper() {
        let expected: [&[f64]; 4] = [
            &[5.5, 14.5, 26.9],
            &[15.03, 33.1, 20.02, 15.7],
            &[4.82, 16.6, 21.8, 18.7],
            &[3.9, 9.9, 15.7, 23.1],
        ];
        for (s, wants) in tj_scenarios().iter().zip(expected) {
            assert_eq!(s.pairs.len(), wants.len(), "{}", s.name);
            for (&pair, &want) in s.pairs.iter().zip(wants) {
                let got = s.delta_d(pair);
                assert!(
                    (got - want).abs() < 1.5,
                    "{}: pair {pair:?} Δd {got:.2} wanted ≈{want}",
                    s.name
                );
            }
        }
    }

    #[test]
    fn scenario_car_counts_are_plausible() {
        for s in kitti_scenarios() {
            let n = s.ground_truth_cars().len();
            assert!((5..=12).contains(&n), "{}: {n} cars", s.name);
        }
        for s in tj_scenarios() {
            let n = s.ground_truth_cars().len();
            assert!((6..=20).contains(&n), "{}: {n} cars", s.name);
        }
    }

    #[test]
    fn kinds_select_beam_models() {
        assert_eq!(DatasetKind::Kitti.beam_model().beam_count(), 64);
        assert_eq!(DatasetKind::TJ.beam_model().beam_count(), 16);
        for s in kitti_scenarios() {
            assert_eq!(s.kind, DatasetKind::Kitti);
        }
        for s in tj_scenarios() {
            assert_eq!(s.kind, DatasetKind::TJ);
        }
    }

    #[test]
    fn left_turn_shares_position() {
        let s = left_turn();
        assert!(s.delta_d((0, 1)) < 1e-9);
        // But the headings differ substantially.
        let d_yaw = (s.observers[0].attitude.yaw - s.observers[1].attitude.yaw).abs();
        assert!(d_yaw > 1.0);
    }

    #[test]
    fn validate_catches_bad_pairs() {
        let mut s = t_junction();
        s.pairs.push((0, 9));
        assert!(s.validate().is_err());
        let mut s2 = t_junction();
        s2.pairs = vec![(1, 1)];
        assert!(s2.validate().is_err());
    }

    #[test]
    fn extended_scenarios_are_consistent() {
        for s in extended_scenarios() {
            // `validate` requires at least one car; the crosswalk holds
            // cars too, so both pass.
            s.validate().unwrap_or_else(|e| panic!("{e}"));
        }
        // The highway's traffic actually moves.
        let hw = highway();
        let moving = hw
            .world
            .entities()
            .iter()
            .filter(|e| e.velocity.norm() > 0.0)
            .count();
        assert!(moving >= 9, "only {moving} moving entities");
        // Advancing the world shifts the moving cars.
        let later = hw.world.advanced(1.0);
        let before = hw.world.ground_truth_boxes(ObjectClass::Car);
        let after = later.ground_truth_boxes(ObjectClass::Car);
        assert!(before
            .iter()
            .zip(&after)
            .any(|(b, a)| b.center.distance(a.center) > 10.0));
        // The crosswalk carries the small classes.
        let cw = crosswalk();
        assert!(cw.world.ground_truth_boxes(ObjectClass::Pedestrian).len() >= 5);
        assert!(cw.world.ground_truth_boxes(ObjectClass::Cyclist).len() >= 2);
    }

    #[test]
    fn occlusion_structure_exists_in_t_junction() {
        // At least one car must be invisible (zero returns) from observer
        // 0 but visible from observer 1 — the premise of Figure 2.
        use crate::LidarScanner;
        let s = t_junction();
        let scanner = LidarScanner::new(BeamModel::hdl64().noiseless().with_azimuth_steps(900));
        let scan0 = scanner.scan(&s.world, &s.observers[0], 0);
        let scan1 = scanner.scan(&s.world, &s.observers[1], 0);
        let mut complementary = 0;
        for car in s.ground_truth_cars() {
            let c0 = scan0
                .iter()
                .filter(|p| car.contains(s.observers[0].local_to_world(p.position)))
                .count();
            let c1 = scan1
                .iter()
                .filter(|p| car.contains(s.observers[1].local_to_world(p.position)))
                .count();
            if (c0 < 5) != (c1 < 5) {
                complementary += 1;
            }
        }
        assert!(
            complementary >= 1,
            "no complementary visibility in T-junction"
        );
    }
}
