//! GPS/IMU measurement models, including the paper's Figure-10 skew
//! protocol.

use cooper_geometry::{enu_offset, Attitude, GpsFix, Pose, Vec3};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::GaussianNoise;

/// The pose measurement a vehicle would attach to an exchange package:
/// a GPS fix plus the IMU attitude (§II-D: the package "should be
/// constituted from LiDAR sensor installation information and its GPS
/// reading … Vehicle's IMU reading is also required").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PoseEstimate {
    /// Measured GPS fix.
    pub gps: GpsFix,
    /// Measured IMU attitude.
    pub attitude: Attitude,
}

impl PoseEstimate {
    /// Converts a true pose (in the local ENU world frame anchored at
    /// `origin`) into the equivalent noiseless measurement.
    pub fn from_pose(pose: &Pose, origin: &GpsFix) -> Self {
        PoseEstimate {
            gps: origin.offset_by(pose.position),
            attitude: pose.attitude,
        }
    }

    /// Reconstructs the pose in the ENU world frame anchored at `origin`.
    pub fn to_pose(&self, origin: &GpsFix) -> Pose {
        Pose::new(enu_offset(origin, &self.gps), self.attitude)
    }
}

/// The Figure-10 GPS skew protocol.
///
/// "We skew the GPS data as follows: skewing both x and y coordinates to
/// the maximum bounds of known GPS drifting; skewing just one axis to the
/// limit of GPS drifting; pushing past that boundary by doubling the
/// maximum GPS drifting to simulate abnormal instances."
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SkewMode {
    /// Both x and y skewed to the maximum drift bound.
    BothAxesMax,
    /// A single axis (x) skewed to the maximum drift bound.
    SingleAxisMax,
    /// Both axes skewed to twice the maximum drift bound (abnormal).
    DoubleDrift,
}

impl SkewMode {
    /// All modes in Figure-10 order.
    pub const ALL: [SkewMode; 3] = [
        SkewMode::BothAxesMax,
        SkewMode::SingleAxisMax,
        SkewMode::DoubleDrift,
    ];

    /// The planar offset this mode applies, given the maximum drift bound
    /// in metres.
    pub fn offset(self, max_drift_m: f64) -> Vec3 {
        match self {
            SkewMode::BothAxesMax => Vec3::new(max_drift_m, max_drift_m, 0.0),
            SkewMode::SingleAxisMax => Vec3::new(max_drift_m, 0.0, 0.0),
            SkewMode::DoubleDrift => Vec3::new(2.0 * max_drift_m, 2.0 * max_drift_m, 0.0),
        }
    }
}

impl std::fmt::Display for SkewMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            SkewMode::BothAxesMax => "both axes at max drift",
            SkewMode::SingleAxisMax => "one axis at max drift",
            SkewMode::DoubleDrift => "double max drift",
        };
        f.write_str(name)
    }
}

/// An integrated GPS/IMU measurement model.
///
/// The paper cites integrated INS/GPS yielding "less than 10 cm in
/// positional errors" \[6\]; [`GpsImuModel::realistic`] reproduces that
/// envelope. [`GpsImuModel::measure_skewed`] applies the Figure-10
/// protocol on top of a measurement.
///
/// # Examples
///
/// ```
/// use cooper_geometry::{GpsFix, Pose};
/// use cooper_lidar_sim::GpsImuModel;
/// use rand::SeedableRng;
///
/// let model = GpsImuModel::realistic();
/// let origin = GpsFix::new(33.2075, -97.1526, 190.0);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let est = model.measure(&Pose::origin(), &origin, &mut rng);
/// let err = est.to_pose(&origin).position.norm();
/// assert!(err < 0.5); // well within a few sigma of the 10 cm envelope
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpsImuModel {
    position_noise: GaussianNoise,
    attitude_noise: GaussianNoise,
    /// The "maximum bounds of known GPS drifting" used by the skew modes.
    max_drift_m: f64,
}

impl GpsImuModel {
    /// A perfect sensor: zero noise. Useful for isolating other effects.
    pub fn ideal() -> Self {
        GpsImuModel {
            position_noise: GaussianNoise::new(0.0),
            attitude_noise: GaussianNoise::new(0.0),
            max_drift_m: 0.10,
        }
    }

    /// The paper's cited envelope: ~10 cm integrated positional error
    /// (1-σ ≈ 3.3 cm so that 3σ ≈ 10 cm) and 0.2° attitude noise.
    pub fn realistic() -> Self {
        GpsImuModel {
            position_noise: GaussianNoise::new(0.033),
            attitude_noise: GaussianNoise::new(0.2f64.to_radians()),
            max_drift_m: 0.10,
        }
    }

    /// Builds a custom model.
    pub fn new(position_sigma_m: f64, attitude_sigma_rad: f64, max_drift_m: f64) -> Self {
        GpsImuModel {
            position_noise: GaussianNoise::new(position_sigma_m),
            attitude_noise: GaussianNoise::new(attitude_sigma_rad),
            max_drift_m,
        }
    }

    /// The drift bound used by the skew modes, metres.
    pub fn max_drift_m(&self) -> f64 {
        self.max_drift_m
    }

    /// Measures a true pose, producing the GPS+IMU estimate a vehicle
    /// would transmit.
    pub fn measure<R: Rng + ?Sized>(
        &self,
        true_pose: &Pose,
        origin: &GpsFix,
        rng: &mut R,
    ) -> PoseEstimate {
        let noisy_position = true_pose.position
            + Vec3::new(
                self.position_noise.sample(rng),
                self.position_noise.sample(rng),
                self.position_noise.sample(rng) * 0.5,
            );
        let noisy_attitude = Attitude::new(
            true_pose.attitude.yaw + self.attitude_noise.sample(rng),
            true_pose.attitude.pitch + self.attitude_noise.sample(rng),
            true_pose.attitude.roll + self.attitude_noise.sample(rng),
        );
        PoseEstimate::from_pose(&Pose::new(noisy_position, noisy_attitude), origin)
    }

    /// Measures a pose and then applies a Figure-10 skew to the GPS fix.
    pub fn measure_skewed<R: Rng + ?Sized>(
        &self,
        true_pose: &Pose,
        origin: &GpsFix,
        mode: SkewMode,
        rng: &mut R,
    ) -> PoseEstimate {
        let mut estimate = self.measure(true_pose, origin, rng);
        estimate.gps = estimate.gps.offset_by(mode.offset(self.max_drift_m));
        estimate
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn origin() -> GpsFix {
        GpsFix::new(33.2075, -97.1526, 190.0)
    }

    #[test]
    fn pose_estimate_round_trip() {
        let pose = Pose::new(Vec3::new(12.0, -7.0, 0.5), Attitude::new(0.4, 0.02, -0.01));
        let est = PoseEstimate::from_pose(&pose, &origin());
        let back = est.to_pose(&origin());
        assert!((back.position - pose.position).norm() < 1e-5);
        assert_eq!(back.attitude, pose.attitude);
    }

    #[test]
    fn ideal_model_is_exact() {
        let model = GpsImuModel::ideal();
        let pose = Pose::new(Vec3::new(5.0, 5.0, 0.0), Attitude::from_yaw(1.0));
        let mut rng = StdRng::seed_from_u64(0);
        let est = model.measure(&pose, &origin(), &mut rng);
        let back = est.to_pose(&origin());
        assert!((back.position - pose.position).norm() < 1e-5);
        assert!((back.attitude.yaw - 1.0).abs() < 1e-12);
    }

    #[test]
    fn realistic_model_errors_are_bounded() {
        let model = GpsImuModel::realistic();
        let pose = Pose::origin();
        let mut rng = StdRng::seed_from_u64(11);
        let mut worst: f64 = 0.0;
        for _ in 0..200 {
            let est = model.measure(&pose, &origin(), &mut rng);
            worst = worst.max(est.to_pose(&origin()).position.distance_xy(Vec3::ZERO));
        }
        // 200 draws at σ=3.3 cm: all should sit well inside 25 cm.
        assert!(worst < 0.25, "worst error {worst}");
        assert!(worst > 0.01, "suspiciously perfect: {worst}");
    }

    #[test]
    fn skew_modes_offset_magnitudes() {
        let d = 0.10;
        assert!((SkewMode::BothAxesMax.offset(d).norm() - d * 2f64.sqrt()).abs() < 1e-12);
        assert!((SkewMode::SingleAxisMax.offset(d).norm() - d).abs() < 1e-12);
        assert!((SkewMode::DoubleDrift.offset(d).norm() - 2.0 * d * 2f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn skewed_measurement_shifts_by_mode_offset() {
        let model = GpsImuModel::ideal();
        let pose = Pose::new(Vec3::new(10.0, 20.0, 0.0), Attitude::level());
        let mut rng = StdRng::seed_from_u64(0);
        for mode in SkewMode::ALL {
            let plain = model.measure(&pose, &origin(), &mut rng);
            let skewed = model.measure_skewed(&pose, &origin(), mode, &mut rng);
            let delta = skewed.to_pose(&origin()).position - plain.to_pose(&origin()).position;
            assert!(
                (delta - mode.offset(0.10)).norm() < 1e-4,
                "{mode}: delta {delta}"
            );
        }
    }

    #[test]
    fn display_modes() {
        for mode in SkewMode::ALL {
            assert!(!format!("{mode}").is_empty());
        }
    }
}
