//! Property-based tests for point-cloud containers and the wire codec.

use cooper_geometry::{Attitude, Pose, RigidTransform, Vec3};
use cooper_pointcloud::codec::encoded_size;
use cooper_pointcloud::{
    decode_cloud, encode_cloud, Point, PointCloud, RangeImage, RangeImageConfig, VoxelGrid,
    VoxelGridConfig,
};
use proptest::prelude::*;

fn point() -> impl Strategy<Value = Point> {
    (-80.0..80.0f64, -80.0..80.0f64, -5.0..5.0f64, 0.0..1.0f32)
        .prop_map(|(x, y, z, r)| Point::new(Vec3::new(x, y, z), r))
}

fn cloud(max: usize) -> impl Strategy<Value = PointCloud> {
    prop::collection::vec(point(), 0..max).prop_map(PointCloud::from_points)
}

fn pose() -> impl Strategy<Value = Pose> {
    (
        -50.0..50.0f64,
        -50.0..50.0f64,
        -1.0..1.0f64,
        -3.0..3.0f64,
        -0.2..0.2f64,
        -0.2..0.2f64,
    )
        .prop_map(|(x, y, z, yaw, pitch, roll)| {
            Pose::new(Vec3::new(x, y, z), Attitude::new(yaw, pitch, roll))
        })
}

proptest! {
    #[test]
    fn codec_round_trip_is_lossless_to_quantization(c in cloud(300)) {
        let bytes = encode_cloud(&c).unwrap();
        prop_assert_eq!(bytes.len(), encoded_size(c.len()));
        let decoded = decode_cloud(&bytes).unwrap();
        prop_assert_eq!(decoded.len(), c.len());
        for (a, b) in c.iter().zip(decoded.iter()) {
            prop_assert!((a.position - b.position).norm() <= 0.009);
            prop_assert!((a.reflectance - b.reflectance).abs() <= 1.0 / 255.0 + 1e-6);
        }
    }

    #[test]
    fn codec_double_round_trip_is_exact(c in cloud(200)) {
        // Quantization is idempotent: decode(encode(decode(encode(c))))
        // equals decode(encode(c)) exactly.
        let once = decode_cloud(&encode_cloud(&c).unwrap()).unwrap();
        let twice = decode_cloud(&encode_cloud(&once).unwrap()).unwrap();
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn merge_preserves_point_counts(a in cloud(200), b in cloud(200)) {
        let m = a.merged(&b);
        prop_assert_eq!(m.len(), a.len() + b.len());
        // Order: a's points first, then b's.
        for (i, p) in a.iter().enumerate() {
            prop_assert_eq!(m.as_slice()[i], *p);
        }
    }

    #[test]
    fn transform_round_trip(c in cloud(100), p1 in pose(), p2 in pose()) {
        let t = RigidTransform::between(&p1, &p2);
        let back = c.transformed(&t).transformed(&t.inverse());
        for (a, b) in c.iter().zip(back.iter()) {
            prop_assert!((a.position - b.position).norm() < 1e-7);
        }
    }

    #[test]
    fn voxelization_never_creates_points(c in cloud(400)) {
        let grid = VoxelGrid::from_cloud(&c, VoxelGridConfig::voxelnet_car());
        prop_assert!(grid.total_points() <= c.len());
        // Every sample retained must be within the extent.
        for (_, v) in grid.iter() {
            prop_assert!(v.count >= v.samples.len());
            prop_assert!(v.count >= 1);
            for s in &v.samples {
                prop_assert!(grid.config().extent.contains(s.position));
            }
        }
    }

    #[test]
    fn soa_voxelization_matches_btreemap_reference(c in cloud(500)) {
        // The SoA grid (sorted coordinate + payload arrays) replaced a
        // per-point BTreeMap accumulation. The stable sort keeps cloud
        // order within each voxel, so the result — including every
        // floating-point aggregate and the capped sample list — must
        // equal the old map's output bit for bit.
        use std::collections::BTreeMap;
        use cooper_pointcloud::{Voxel, VoxelCoord};
        let config = VoxelGridConfig::voxelnet_car();
        let mut reference: BTreeMap<VoxelCoord, Voxel> = BTreeMap::new();
        for p in c.iter() {
            if let Some(coord) = config.coord_of(p.position) {
                let v = reference.entry(coord).or_default();
                if v.samples.len() < config.max_points_per_voxel {
                    v.samples.push(*p);
                }
                v.count += 1;
                v.position_sum += p.position;
                v.reflectance_sum += f64::from(p.reflectance);
                v.min_position = v.min_position.min(p.position);
                v.max_position = v.max_position.max(p.position);
                let range_xy = p.range_xy();
                v.min_range_xy = v.min_range_xy.min(range_xy);
                v.max_range_xy = v.max_range_xy.max(range_xy);
            }
        }
        let grid = VoxelGrid::from_cloud(&c, config);
        prop_assert_eq!(grid.occupied_count(), reference.len());
        for ((coord, voxel), (ref_coord, ref_voxel)) in grid.iter().zip(reference.iter()) {
            prop_assert_eq!(coord, ref_coord);
            prop_assert_eq!(voxel, ref_voxel);
        }
        // The chunk-parallel path agrees on the discrete surface (its
        // float sums may differ in the last bits because chunking
        // regroups them) and is invariant to executor width.
        let chunked1 =
            VoxelGrid::from_cloud_chunked(&c, config, 64, &cooper_exec::Executor::new(Some(1)));
        let chunked4 =
            VoxelGrid::from_cloud_chunked(&c, config, 64, &cooper_exec::Executor::new(Some(4)));
        prop_assert_eq!(&chunked1, &chunked4);
        prop_assert_eq!(chunked1.coords(), grid.coords());
        prop_assert_eq!(chunked1.total_points(), grid.total_points());
    }

    #[test]
    fn voxel_centroid_inside_voxel(c in cloud(400)) {
        let grid = VoxelGrid::from_cloud(&c, VoxelGridConfig::voxelnet_car());
        for (coord, v) in grid.iter() {
            let centroid = v.centroid();
            // The centroid of a voxel's points maps back to that voxel.
            prop_assert_eq!(grid.config().coord_of(centroid), Some(*coord));
        }
    }

    #[test]
    fn range_image_back_projection_preserves_range(c in cloud(200)) {
        let img = RangeImage::project(&c, RangeImageConfig::vlp16());
        let back = img.to_cloud();
        prop_assert!(back.len() <= c.len());
        // Every back-projected range must equal some original in-FoV
        // range (the closest in its cell) to within quantization of the
        // cell direction.
        for p in back.iter() {
            let r = p.range();
            let close = c.iter().any(|q| (q.range() - r).abs() < 1e-3);
            prop_assert!(close, "range {r} not among originals");
        }
    }

    #[test]
    fn densify_only_adds_cells(c in cloud(300)) {
        let mut img = RangeImage::project(&c, RangeImageConfig::vlp16());
        let before = img.occupied_cells();
        let filled = img.densify_pass();
        prop_assert_eq!(img.occupied_cells(), before + filled);
    }

    #[test]
    fn roi_categories_monotone(c in cloud(300)) {
        use cooper_pointcloud::roi::{extract_roi, RoiCategory};
        let full = extract_roi(&c, RoiCategory::FullFrame);
        let fov = extract_roi(&c, RoiCategory::FrontFov120);
        let fwd = extract_roi(&c, RoiCategory::ForwardOneWay);
        prop_assert_eq!(full.len(), c.len());
        prop_assert!(fov.len() <= full.len());
        prop_assert!(fwd.len() <= fov.len());
    }

    #[test]
    fn blind_sector_contains_matches_membership(
        // Sectors in the blind_sectors convention: start in (-π, π],
        // width up to the full circle, so `end` may cross the seam and
        // exceed π by nearly 2π.
        start in -std::f64::consts::PI..std::f64::consts::PI,
        width in 0.01..std::f64::consts::TAU,
        sample in -std::f64::consts::PI..std::f64::consts::PI,
    ) {
        use cooper_geometry::normalize_angle;
        use cooper_pointcloud::roi::BlindSector;
        let s = BlindSector { start, end: start + width, occluder_range: 5.0 };
        prop_assert!((s.width() - width).abs() < 1e-12);
        // Membership computed directly in the unwrapped sector frame.
        let unwrapped = {
            let rel = normalize_angle(sample - start);
            let rel = if rel < 0.0 { rel + std::f64::consts::TAU } else { rel };
            rel <= width
        };
        // Tolerate only boundary disagreement (floating-point edges).
        let rel_center = normalize_angle(sample - s.center()).abs();
        let boundary = (rel_center - width * 0.5).abs() < 1e-9
            || (normalize_angle(sample - start)).abs() < 1e-9;
        if !boundary {
            prop_assert_eq!(s.contains(sample), unwrapped);
        }
        // The center is always inside, however the sector wraps.
        prop_assert!(s.contains(s.center()));
        // And the center stays normalized.
        prop_assert!(s.center() > -std::f64::consts::PI - 1e-12);
        prop_assert!(s.center() <= std::f64::consts::PI + 1e-12);
    }

    #[test]
    fn blind_sectors_cover_their_occluders(
        center in -std::f64::consts::PI..std::f64::consts::PI,
        half_width in 0.1..1.2f64,
    ) {
        use cooper_pointcloud::roi::blind_sectors;
        // A near arc occluder centered anywhere — including across the
        // seam — over a far background ring.
        let mut c = PointCloud::new();
        let step = 0.5f64.to_radians();
        let mut az = center - half_width;
        while az <= center + half_width {
            c.push(Point::new(Vec3::new(5.0 * az.cos(), 5.0 * az.sin(), 0.0), 0.5));
            az += step;
        }
        for i in 0..720 {
            let bg = (i as f64) * step - std::f64::consts::PI;
            c.push(Point::new(Vec3::new(60.0 * bg.cos(), 60.0 * bg.sin(), 0.0), 0.5));
        }
        let sectors = blind_sectors(&c, 360, 15.0, 0.05, -1.0);
        // Exactly one merged sector, containing the occluder's center —
        // wherever that center lies relative to ±π.
        prop_assert_eq!(sectors.len(), 1);
        prop_assert!(sectors[0].contains(center));
        prop_assert!((sectors[0].width() - 2.0 * half_width).abs() < 0.1);
    }

    #[test]
    fn bounds_contain_all_points(c in cloud(200)) {
        if let Some(b) = c.bounds() {
            for p in c.iter() {
                prop_assert!(b.contains(p.position));
            }
        } else {
            prop_assert!(c.is_empty());
        }
    }
}

proptest! {
    #[test]
    fn boundary_coordinates_round_trip(
        // Sample tightly around the ±327.675/−327.685 rounding edges so
        // the quantized-value validation is exercised on both sides.
        x in -327.69..327.69f64,
        r in -2.0..3.0f32,
    ) {
        let c: PointCloud =
            std::iter::once(Point::new(Vec3::new(x, -x, x / 2.0), r)).collect();
        let q = (x * 100.0).round();
        let in_range = (f64::from(i16::MIN)..=f64::from(i16::MAX)).contains(&q);
        match encode_cloud(&c) {
            Ok(bytes) => {
                prop_assert!(in_range, "out-of-range {x} encoded");
                let back = decode_cloud(&bytes).unwrap();
                let p = back.as_slice()[0];
                prop_assert!((p.position.x - x).abs() <= 0.005 + 1e-9);
                // Reflectance decodes clamped into [0, 1].
                prop_assert!((0.0..=1.0).contains(&p.reflectance));
                prop_assert!((p.reflectance - r.clamp(0.0, 1.0)).abs() <= 1.0 / 255.0 + 1e-6);
            }
            Err(cooper_pointcloud::CodecError::CoordinateOutOfRange { .. }) => {
                prop_assert!(!in_range, "encodable boundary value {x} rejected");
            }
            Err(e) => panic!("unexpected error {e}"),
        }
    }

    #[test]
    fn v2_delta_stream_round_trips(
        c in cloud(200),
        keyframe_every in 1u32..6,
        frames in 1usize..8,
    ) {
        use cooper_pointcloud::{DeltaDecoder, DeltaEncoder, FrameKind};
        let mut enc = DeltaEncoder::new(VoxelGridConfig::voxelnet_car(), keyframe_every);
        let mut dec = DeltaDecoder::new();
        for i in 0..frames {
            let frame = enc.encode_next(&c, false).unwrap();
            prop_assert_eq!(
                frame.kind,
                if (i as u32).is_multiple_of(keyframe_every) {
                    FrameKind::Keyframe
                } else {
                    FrameKind::Delta
                }
            );
            prop_assert!(frame.points_sent <= c.len());
            // A static scene reconstructs to at least the keyframe's view.
            let got = dec.decode_next(&frame.bytes).unwrap();
            prop_assert!(got.len() >= frame.points_sent);
            prop_assert!(got.len() <= 2 * c.len());
        }
    }

    #[test]
    fn incremental_voxelizer_matches_from_scratch_on_delta_stream(
        clouds in prop::collection::vec(cloud(150), 2..6),
        keyframe_every in 1u32..4,
    ) {
        use cooper_pointcloud::{DeltaDecoder, DeltaEncoder, IncrementalVoxelizer};
        // Drive the incremental voxelizer with the receiver-side
        // reconstruction of a v2 delta stream — exactly the clouds the
        // perception cache sees — and require the maintained grid to be
        // bit-identical to from-scratch chunked voxelization at every
        // step, at two executor widths.
        let config = VoxelGridConfig::voxelnet_car();
        let e1 = cooper_exec::Executor::new(Some(1));
        let e4 = cooper_exec::Executor::new(Some(4));
        let mut enc = DeltaEncoder::new(config, keyframe_every);
        let mut dec = DeltaDecoder::new();
        let mut inc1 = IncrementalVoxelizer::new(config, 64);
        let mut inc4 = IncrementalVoxelizer::new(config, 64);
        for c in &clouds {
            let frame = enc.encode_next(c, false).unwrap();
            let reconstructed = dec.decode_next(&frame.bytes).unwrap();
            let u1 = inc1.update(&reconstructed, &e1);
            let u4 = inc4.update(&reconstructed, &e4);
            let scratch = VoxelGrid::from_cloud_chunked(&reconstructed, config, 64, &e1);
            prop_assert_eq!(inc1.grid(), &scratch);
            prop_assert_eq!(inc4.grid(), &scratch);
            // Reuse accounting is executor-independent too.
            prop_assert_eq!(u1.chunks_reused, u4.chunks_reused);
            prop_assert_eq!(u1.prefix_points, u4.prefix_points);
        }
    }

    #[test]
    fn cloud_decoder_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..4096)) {
        let _ = decode_cloud(&bytes);
        let _ = cooper_pointcloud::decode_cloud_prefix(&bytes);
    }

    #[test]
    fn feature_decoder_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..4096)) {
        let _ = cooper_pointcloud::decode_features(&bytes);
        let _ = cooper_pointcloud::decode_features_prefix(&bytes);
        let _ = cooper_pointcloud::verify_frame_crc(&bytes);
    }

    #[test]
    fn hostile_headers_never_over_allocate(
        // A syntactically valid header whose declared count is hostile:
        // up to u32::MAX points over an (almost) empty payload. The
        // decoders must bound-check the declared count against the
        // bytes that actually arrived *before* reserving storage — a
        // 14-byte frame claiming 4 billion points must cost an error,
        // not a 28 GB allocation.
        version_index in 0usize..3,
        flags in any::<u8>(),
        count in any::<u32>(),
        tail in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        let version = [1u8, 2, 3][version_index];
        let mut frame = Vec::new();
        frame.extend_from_slice(b"CPR1");
        frame.push(version);
        frame.push(flags);
        frame.extend_from_slice(&count.to_be_bytes());
        frame.extend_from_slice(&tail);
        // Whole-frame decoders reject a payload shorter than declared.
        if count as usize > tail.len() {
            prop_assert!(decode_cloud(&frame).is_err());
            prop_assert!(cooper_pointcloud::decode_features(&frame).is_err());
        }
        // Prefix salvage never recovers more than the bytes on hand
        // can hold, whatever the header claims.
        if let Ok((salvaged, declared)) = cooper_pointcloud::decode_cloud_prefix(&frame) {
            prop_assert_eq!(declared, count as usize);
            prop_assert!(salvaged.len() * cooper_pointcloud::WIRE_BYTES_PER_POINT <= tail.len());
        }
        if let Ok((salvaged, declared)) = cooper_pointcloud::decode_features_prefix(&frame) {
            prop_assert_eq!(declared, count as usize);
            prop_assert!(salvaged.len() <= tail.len());
        }
    }

    #[test]
    fn truncated_and_mutated_frames_never_panic(
        c in cloud(60),
        with_crc in any::<bool>(),
        cut in 0usize..600,
        flip_at in 0usize..600,
        flip_mask in 1u8..=255,
    ) {
        // Structure-aware fuzz: a well-formed frame, truncated at an
        // arbitrary byte and with one byte XOR-mutated. Every decoder
        // must return Ok or Err — never panic — and prefix salvage must
        // stay within the byte budget it was handed.
        let encoded = encode_cloud(&c).unwrap();
        let framed: Vec<u8> = if with_crc {
            cooper_pointcloud::append_crc(&encoded).unwrap().to_vec()
        } else {
            encoded.to_vec()
        };
        let mut bytes = framed[..cut.min(framed.len())].to_vec();
        let flip_index = flip_at.min(bytes.len().saturating_sub(1));
        if let Some(b) = bytes.get_mut(flip_index) {
            *b ^= flip_mask;
        }
        let _ = decode_cloud(&bytes);
        let _ = cooper_pointcloud::decode_features(&bytes);
        let _ = cooper_pointcloud::verify_frame_crc(&bytes);
        if let Ok((salvaged, _)) = cooper_pointcloud::decode_cloud_prefix(&bytes) {
            let budget = bytes.len().saturating_sub(10);
            prop_assert!(salvaged.len() * cooper_pointcloud::WIRE_BYTES_PER_POINT <= budget);
        }
    }

    #[test]
    fn truncated_feature_frames_never_panic(
        channels in 1usize..6,
        raw_cells in prop::collection::vec((-50i32..50, -50i32..50), 0..30),
        with_crc in any::<bool>(),
        cut in 0usize..400,
        flip_at in 0usize..400,
        flip_mask in 1u8..=255,
    ) {
        use cooper_pointcloud::FeatureFrame;
        let mut cells: Vec<(i32, i32)> = raw_cells;
        cells.sort_unstable();
        cells.dedup();
        let features = vec![0.25f32; cells.len() * channels];
        let frame = FeatureFrame::new(channels, cells, features);
        let encoded = cooper_pointcloud::encode_features(&frame).unwrap();
        let framed: Vec<u8> = if with_crc {
            cooper_pointcloud::append_crc(&encoded).unwrap().to_vec()
        } else {
            encoded.to_vec()
        };
        let mut bytes = framed[..cut.min(framed.len())].to_vec();
        let flip_index = flip_at.min(bytes.len().saturating_sub(1));
        if let Some(b) = bytes.get_mut(flip_index) {
            *b ^= flip_mask;
        }
        let _ = cooper_pointcloud::decode_features(&bytes);
        let _ = cooper_pointcloud::verify_frame_crc(&bytes);
        if let Ok((salvaged, declared)) = cooper_pointcloud::decode_features_prefix(&bytes) {
            prop_assert!(salvaged.len() <= declared.max(frame.len()));
        }
    }

    #[test]
    fn interchange_readers_never_panic(text in "[ -~\n]{0,2048}") {
        use std::io::BufReader;
        let _ = cooper_pointcloud::io::read_xyz(BufReader::new(text.as_bytes()));
        let _ = cooper_pointcloud::io::read_ply(BufReader::new(text.as_bytes()));
        let _ = cooper_pointcloud::io::read_pcd(BufReader::new(text.as_bytes()));
    }
}
