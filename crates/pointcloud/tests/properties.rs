//! Property-based tests for point-cloud containers and the wire codec.

use cooper_geometry::{Attitude, Pose, RigidTransform, Vec3};
use cooper_pointcloud::codec::encoded_size;
use cooper_pointcloud::{
    decode_cloud, encode_cloud, Point, PointCloud, RangeImage, RangeImageConfig, VoxelGrid,
    VoxelGridConfig,
};
use proptest::prelude::*;

fn point() -> impl Strategy<Value = Point> {
    (-80.0..80.0f64, -80.0..80.0f64, -5.0..5.0f64, 0.0..1.0f32)
        .prop_map(|(x, y, z, r)| Point::new(Vec3::new(x, y, z), r))
}

fn cloud(max: usize) -> impl Strategy<Value = PointCloud> {
    prop::collection::vec(point(), 0..max).prop_map(PointCloud::from_points)
}

fn pose() -> impl Strategy<Value = Pose> {
    (
        -50.0..50.0f64,
        -50.0..50.0f64,
        -1.0..1.0f64,
        -3.0..3.0f64,
        -0.2..0.2f64,
        -0.2..0.2f64,
    )
        .prop_map(|(x, y, z, yaw, pitch, roll)| {
            Pose::new(Vec3::new(x, y, z), Attitude::new(yaw, pitch, roll))
        })
}

proptest! {
    #[test]
    fn codec_round_trip_is_lossless_to_quantization(c in cloud(300)) {
        let bytes = encode_cloud(&c).unwrap();
        prop_assert_eq!(bytes.len(), encoded_size(c.len()));
        let decoded = decode_cloud(&bytes).unwrap();
        prop_assert_eq!(decoded.len(), c.len());
        for (a, b) in c.iter().zip(decoded.iter()) {
            prop_assert!((a.position - b.position).norm() <= 0.009);
            prop_assert!((a.reflectance - b.reflectance).abs() <= 1.0 / 255.0 + 1e-6);
        }
    }

    #[test]
    fn codec_double_round_trip_is_exact(c in cloud(200)) {
        // Quantization is idempotent: decode(encode(decode(encode(c))))
        // equals decode(encode(c)) exactly.
        let once = decode_cloud(&encode_cloud(&c).unwrap()).unwrap();
        let twice = decode_cloud(&encode_cloud(&once).unwrap()).unwrap();
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn merge_preserves_point_counts(a in cloud(200), b in cloud(200)) {
        let m = a.merged(&b);
        prop_assert_eq!(m.len(), a.len() + b.len());
        // Order: a's points first, then b's.
        for (i, p) in a.iter().enumerate() {
            prop_assert_eq!(m.as_slice()[i], *p);
        }
    }

    #[test]
    fn transform_round_trip(c in cloud(100), p1 in pose(), p2 in pose()) {
        let t = RigidTransform::between(&p1, &p2);
        let back = c.transformed(&t).transformed(&t.inverse());
        for (a, b) in c.iter().zip(back.iter()) {
            prop_assert!((a.position - b.position).norm() < 1e-7);
        }
    }

    #[test]
    fn voxelization_never_creates_points(c in cloud(400)) {
        let grid = VoxelGrid::from_cloud(&c, VoxelGridConfig::voxelnet_car());
        prop_assert!(grid.total_points() <= c.len());
        // Every sample retained must be within the extent.
        for (_, v) in grid.iter() {
            prop_assert!(v.count >= v.samples.len());
            prop_assert!(v.count >= 1);
            for s in &v.samples {
                prop_assert!(grid.config().extent.contains(s.position));
            }
        }
    }

    #[test]
    fn voxel_centroid_inside_voxel(c in cloud(400)) {
        let grid = VoxelGrid::from_cloud(&c, VoxelGridConfig::voxelnet_car());
        for (coord, v) in grid.iter() {
            let centroid = v.centroid();
            // The centroid of a voxel's points maps back to that voxel.
            prop_assert_eq!(grid.config().coord_of(centroid), Some(*coord));
        }
    }

    #[test]
    fn range_image_back_projection_preserves_range(c in cloud(200)) {
        let img = RangeImage::project(&c, RangeImageConfig::vlp16());
        let back = img.to_cloud();
        prop_assert!(back.len() <= c.len());
        // Every back-projected range must equal some original in-FoV
        // range (the closest in its cell) to within quantization of the
        // cell direction.
        for p in back.iter() {
            let r = p.range();
            let close = c.iter().any(|q| (q.range() - r).abs() < 1e-3);
            prop_assert!(close, "range {r} not among originals");
        }
    }

    #[test]
    fn densify_only_adds_cells(c in cloud(300)) {
        let mut img = RangeImage::project(&c, RangeImageConfig::vlp16());
        let before = img.occupied_cells();
        let filled = img.densify_pass();
        prop_assert_eq!(img.occupied_cells(), before + filled);
    }

    #[test]
    fn roi_categories_monotone(c in cloud(300)) {
        use cooper_pointcloud::roi::{extract_roi, RoiCategory};
        let full = extract_roi(&c, RoiCategory::FullFrame);
        let fov = extract_roi(&c, RoiCategory::FrontFov120);
        let fwd = extract_roi(&c, RoiCategory::ForwardOneWay);
        prop_assert_eq!(full.len(), c.len());
        prop_assert!(fov.len() <= full.len());
        prop_assert!(fwd.len() <= fov.len());
    }

    #[test]
    fn bounds_contain_all_points(c in cloud(200)) {
        if let Some(b) = c.bounds() {
            for p in c.iter() {
                prop_assert!(b.contains(p.position));
            }
        } else {
            prop_assert!(c.is_empty());
        }
    }
}

proptest! {
    #[test]
    fn cloud_decoder_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..4096)) {
        let _ = decode_cloud(&bytes);
    }

    #[test]
    fn interchange_readers_never_panic(text in "[ -~\n]{0,2048}") {
        use std::io::BufReader;
        let _ = cooper_pointcloud::io::read_xyz(BufReader::new(text.as_bytes()));
        let _ = cooper_pointcloud::io::read_ply(BufReader::new(text.as_bytes()));
        let _ = cooper_pointcloud::io::read_pcd(BufReader::new(text.as_bytes()));
    }
}
