//! The point-cloud container and the paper's Equation 2 merge.

use std::fmt;

use cooper_geometry::{Aabb3, Obb3, RigidTransform, Vec3};
use serde::{Deserialize, Serialize};

use crate::Point;

/// An owned collection of LiDAR returns.
///
/// Supports the two operations at the heart of Cooper:
///
/// * [`PointCloud::transformed`] / [`PointCloud::transform`] — apply the
///   alignment transform of Equation 3 to every point;
/// * [`PointCloud::merged`] / [`PointCloud::merge`] — the set union of
///   Equation 2, producing the cooperative cloud.
///
/// # Examples
///
/// ```
/// use cooper_geometry::Vec3;
/// use cooper_pointcloud::{Point, PointCloud};
///
/// let cloud: PointCloud = (0..10)
///     .map(|i| Point::new(Vec3::new(i as f64, 0.0, 0.0), 0.5))
///     .collect();
/// assert_eq!(cloud.len(), 10);
/// let near = cloud.filtered(|p| p.range() < 5.0);
/// assert_eq!(near.len(), 5);
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct PointCloud {
    points: Vec<Point>,
}

impl PointCloud {
    /// Creates an empty cloud.
    pub fn new() -> Self {
        PointCloud { points: Vec::new() }
    }

    /// Creates an empty cloud with reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        PointCloud {
            points: Vec::with_capacity(capacity),
        }
    }

    /// Wraps an existing vector of points.
    pub fn from_points(points: Vec<Point>) -> Self {
        PointCloud { points }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` when the cloud holds no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Appends a point.
    pub fn push(&mut self, point: Point) {
        self.points.push(point);
    }

    /// Borrows the points as a slice.
    pub fn as_slice(&self) -> &[Point] {
        &self.points
    }

    /// Iterates over the points.
    pub fn iter(&self) -> std::slice::Iter<'_, Point> {
        self.points.iter()
    }

    /// Consumes the cloud, returning the underlying vector.
    pub fn into_inner(self) -> Vec<Point> {
        self.points
    }

    /// Applies a rigid transform to every point in place (Equation 3).
    pub fn transform(&mut self, t: &RigidTransform) {
        for p in &mut self.points {
            *p = p.transformed(t);
        }
    }

    /// Returns a transformed copy (Equation 3).
    pub fn transformed(&self, t: &RigidTransform) -> PointCloud {
        PointCloud {
            points: self.points.iter().map(|p| p.transformed(t)).collect(),
        }
    }

    /// Appends all points of `other` (the paper's Equation 2 set union,
    /// assuming `other` has already been aligned into this cloud's frame).
    pub fn merge(&mut self, other: &PointCloud) {
        self.points.extend_from_slice(&other.points);
    }

    /// Appends all points of `other` transformed by `t`: the fusion
    /// fast path, equivalent to `merge(&other.transformed(t))` without
    /// materialising the intermediate transformed copy.
    pub fn merge_transformed(&mut self, other: &PointCloud, t: &RigidTransform) {
        self.points.reserve(other.points.len());
        self.points
            .extend(other.points.iter().map(|p| p.transformed(t)));
    }

    /// Returns the union of this cloud and `other` as a new cloud.
    pub fn merged(&self, other: &PointCloud) -> PointCloud {
        let mut out = self.clone();
        out.merge(other);
        out
    }

    /// Returns the subset of points satisfying `keep`.
    pub fn filtered<F: FnMut(&Point) -> bool>(&self, mut keep: F) -> PointCloud {
        PointCloud {
            points: self.points.iter().copied().filter(|p| keep(p)).collect(),
        }
    }

    /// Retains only points satisfying `keep`, in place.
    pub fn retain<F: FnMut(&Point) -> bool>(&mut self, keep: F) {
        self.points.retain(keep);
    }

    /// The tight axis-aligned bounds of the cloud, or `None` when empty.
    pub fn bounds(&self) -> Option<Aabb3> {
        Aabb3::from_points(self.points.iter().map(|p| p.position))
    }

    /// Counts points inside an oriented box — the "point evidence" that
    /// detection confidence grows with.
    pub fn count_in_box(&self, obb: &Obb3) -> usize {
        self.points
            .iter()
            .filter(|p| obb.contains(p.position))
            .count()
    }

    /// Returns every `step`-th point — cheap uniform downsampling used to
    /// emulate lower-beam-count sensors and to bound wire payloads.
    ///
    /// # Panics
    ///
    /// Panics if `step == 0`.
    pub fn downsampled(&self, step: usize) -> PointCloud {
        assert!(step > 0, "downsample step must be positive");
        PointCloud {
            points: self.points.iter().copied().step_by(step).collect(),
        }
    }

    /// Crops the cloud to an axis-aligned box.
    pub fn cropped(&self, aabb: &Aabb3) -> PointCloud {
        self.filtered(|p| aabb.contains(p.position))
    }

    /// The centroid of the cloud, or `None` when empty.
    pub fn centroid(&self) -> Option<Vec3> {
        if self.points.is_empty() {
            return None;
        }
        let sum: Vec3 = self.points.iter().map(|p| p.position).sum();
        Some(sum / self.points.len() as f64)
    }
}

impl fmt::Display for PointCloud {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "point cloud ({} points)", self.len())
    }
}

impl FromIterator<Point> for PointCloud {
    fn from_iter<I: IntoIterator<Item = Point>>(iter: I) -> Self {
        PointCloud {
            points: iter.into_iter().collect(),
        }
    }
}

impl Extend<Point> for PointCloud {
    fn extend<I: IntoIterator<Item = Point>>(&mut self, iter: I) {
        self.points.extend(iter);
    }
}

impl IntoIterator for PointCloud {
    type Item = Point;
    type IntoIter = std::vec::IntoIter<Point>;

    fn into_iter(self) -> Self::IntoIter {
        self.points.into_iter()
    }
}

impl<'a> IntoIterator for &'a PointCloud {
    type Item = &'a Point;
    type IntoIter = std::slice::Iter<'a, Point>;

    fn into_iter(self) -> Self::IntoIter {
        self.points.iter()
    }
}

impl From<Vec<Point>> for PointCloud {
    fn from(points: Vec<Point>) -> Self {
        PointCloud::from_points(points)
    }
}

impl AsRef<[Point]> for PointCloud {
    fn as_ref(&self) -> &[Point] {
        &self.points
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cooper_geometry::{Attitude, Mat3, Pose};

    fn line_cloud(n: usize) -> PointCloud {
        (0..n)
            .map(|i| Point::new(Vec3::new(i as f64, 0.0, 0.0), 0.5))
            .collect()
    }

    #[test]
    fn push_len_iter() {
        let mut c = PointCloud::new();
        assert!(c.is_empty());
        c.push(Point::new(Vec3::X, 0.1));
        c.push(Point::new(Vec3::Y, 0.2));
        assert_eq!(c.len(), 2);
        let xs: Vec<f64> = c.iter().map(|p| p.position.x).collect();
        assert_eq!(xs, vec![1.0, 0.0]);
    }

    #[test]
    fn merge_is_union() {
        let a = line_cloud(3);
        let b = line_cloud(2);
        let m = a.merged(&b);
        assert_eq!(m.len(), 5);
        // Merge does not deduplicate: raw fusion keeps all returns.
        let mut c = a.clone();
        c.merge(&b);
        assert_eq!(c, m);
    }

    #[test]
    fn transform_round_trip() {
        let cloud = line_cloud(10);
        let pose = Pose::new(Vec3::new(5.0, -1.0, 0.3), Attitude::new(0.4, 0.05, -0.02));
        let t = RigidTransform::from_pose(&pose);
        let back = cloud.transformed(&t).transformed(&t.inverse());
        for (p, q) in cloud.iter().zip(back.iter()) {
            assert!((p.position - q.position).norm() < 1e-9);
        }
    }

    #[test]
    fn merge_transformed_matches_transform_then_merge() {
        let local = line_cloud(4);
        let remote = line_cloud(7);
        let t = RigidTransform::new(Mat3::rotation_z(0.3), Vec3::new(1.0, 2.0, 3.0));
        let mut expected = local.clone();
        expected.merge(&remote.transformed(&t));
        let mut fused = local;
        fused.merge_transformed(&remote, &t);
        assert_eq!(fused, expected);
    }

    #[test]
    fn transform_in_place_matches_copy() {
        let cloud = line_cloud(5);
        let t = RigidTransform::new(Mat3::rotation_z(0.3), Vec3::new(1.0, 2.0, 3.0));
        let copy = cloud.transformed(&t);
        let mut inplace = cloud;
        inplace.transform(&t);
        assert_eq!(copy, inplace);
    }

    #[test]
    fn filtered_and_retain() {
        let c = line_cloud(10);
        let near = c.filtered(|p| p.position.x < 3.0);
        assert_eq!(near.len(), 3);
        let mut c2 = c;
        c2.retain(|p| p.position.x >= 3.0);
        assert_eq!(c2.len(), 7);
    }

    #[test]
    fn bounds_and_centroid() {
        assert!(PointCloud::new().bounds().is_none());
        assert!(PointCloud::new().centroid().is_none());
        let c = line_cloud(5); // x: 0..4
        let b = c.bounds().unwrap();
        assert_eq!(b.min(), Vec3::ZERO);
        assert_eq!(b.max(), Vec3::new(4.0, 0.0, 0.0));
        assert_eq!(c.centroid().unwrap(), Vec3::new(2.0, 0.0, 0.0));
    }

    #[test]
    fn count_in_box() {
        let c = line_cloud(10);
        let obb = Obb3::new(Vec3::new(2.0, 0.0, 0.0), Vec3::new(3.0, 1.0, 1.0), 0.0);
        // Covers x in [0.5, 3.5] -> points 1, 2, 3.
        assert_eq!(c.count_in_box(&obb), 3);
    }

    #[test]
    fn downsample() {
        let c = line_cloud(10);
        assert_eq!(c.downsampled(1).len(), 10);
        assert_eq!(c.downsampled(2).len(), 5);
        assert_eq!(c.downsampled(3).len(), 4);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn downsample_zero_panics() {
        let _ = line_cloud(3).downsampled(0);
    }

    #[test]
    fn cropped() {
        let c = line_cloud(10);
        let crop = c.cropped(&Aabb3::new(
            Vec3::new(2.0, -1.0, -1.0),
            Vec3::new(5.0, 1.0, 1.0),
        ));
        assert_eq!(crop.len(), 4); // x = 2,3,4,5
    }

    #[test]
    fn collection_traits() {
        let mut c: PointCloud = vec![Point::new(Vec3::X, 0.5)].into();
        c.extend([Point::new(Vec3::Y, 0.6)]);
        assert_eq!(c.len(), 2);
        let total: usize = (&c).into_iter().count();
        assert_eq!(total, 2);
        let v = c.into_inner();
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn display_shows_count() {
        assert_eq!(format!("{}", line_cloud(3)), "point cloud (3 points)");
    }
}
