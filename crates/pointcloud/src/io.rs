//! Plain-text point-cloud interchange: XYZ, ASCII PLY and ASCII PCD.
//!
//! The wire codec ([`crate::codec`]) is for vehicle-to-vehicle exchange;
//! these formats are for everything else — dumping a fused cloud for a
//! external viewer (CloudCompare, MeshLab, Open3D all read ASCII PLY),
//! or importing a captured cloud into the pipeline.

use std::io::{BufRead, Write};

use cooper_geometry::Vec3;

use crate::{Point, PointCloud};

/// Errors reading interchange files.
#[derive(Debug)]
pub enum IoFormatError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed line or header, with its 1-based line number.
    Parse {
        /// Line number where parsing failed.
        line: usize,
        /// What was wrong.
        message: String,
    },
}

impl std::fmt::Display for IoFormatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoFormatError::Io(e) => write!(f, "I/O error: {e}"),
            IoFormatError::Parse { line, message } => write!(f, "line {line}: {message}"),
        }
    }
}

impl std::error::Error for IoFormatError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IoFormatError::Io(e) => Some(e),
            IoFormatError::Parse { .. } => None,
        }
    }
}

impl From<std::io::Error> for IoFormatError {
    fn from(e: std::io::Error) -> Self {
        IoFormatError::Io(e)
    }
}

/// Writes `x y z reflectance` lines. A mutable reference works as the
/// writer (`&mut Vec<u8>`, `&mut File`, …).
///
/// # Errors
///
/// Propagates writer errors.
pub fn write_xyz<W: Write>(cloud: &PointCloud, mut writer: W) -> Result<(), IoFormatError> {
    for p in cloud.iter() {
        writeln!(
            writer,
            "{} {} {} {}",
            p.position.x, p.position.y, p.position.z, p.reflectance
        )?;
    }
    Ok(())
}

/// Reads `x y z [reflectance]` lines (missing reflectance defaults to
/// 0.5). Empty lines and `#` comments are skipped.
///
/// # Errors
///
/// Returns [`IoFormatError::Parse`] with the offending line number for
/// malformed content.
pub fn read_xyz<R: BufRead>(reader: R) -> Result<PointCloud, IoFormatError> {
    let mut cloud = PointCloud::new();
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = trimmed.split_whitespace().collect();
        if fields.len() < 3 || fields.len() > 4 {
            return Err(IoFormatError::Parse {
                line: idx + 1,
                message: format!("expected 3 or 4 fields, got {}", fields.len()),
            });
        }
        let parse = |s: &str, what: &str| -> Result<f64, IoFormatError> {
            s.parse().map_err(|_| IoFormatError::Parse {
                line: idx + 1,
                message: format!("invalid {what}: {s:?}"),
            })
        };
        let x = parse(fields[0], "x")?;
        let y = parse(fields[1], "y")?;
        let z = parse(fields[2], "z")?;
        let reflectance = if fields.len() == 4 {
            parse(fields[3], "reflectance")? as f32
        } else {
            0.5
        };
        if !(x.is_finite() && y.is_finite() && z.is_finite()) {
            return Err(IoFormatError::Parse {
                line: idx + 1,
                message: "non-finite coordinate".into(),
            });
        }
        cloud.push(Point::new(Vec3::new(x, y, z), reflectance));
    }
    Ok(cloud)
}

/// Writes an ASCII PLY file with `x y z intensity` vertex properties —
/// directly loadable by CloudCompare/MeshLab/Open3D.
///
/// # Errors
///
/// Propagates writer errors.
pub fn write_ply<W: Write>(cloud: &PointCloud, mut writer: W) -> Result<(), IoFormatError> {
    writeln!(writer, "ply")?;
    writeln!(writer, "format ascii 1.0")?;
    writeln!(writer, "comment cooper point cloud")?;
    writeln!(writer, "element vertex {}", cloud.len())?;
    writeln!(writer, "property float x")?;
    writeln!(writer, "property float y")?;
    writeln!(writer, "property float z")?;
    writeln!(writer, "property float intensity")?;
    writeln!(writer, "end_header")?;
    for p in cloud.iter() {
        writeln!(
            writer,
            "{} {} {} {}",
            p.position.x as f32, p.position.y as f32, p.position.z as f32, p.reflectance
        )?;
    }
    Ok(())
}

/// Reads the ASCII PLY subset written by [`write_ply`]: vertices with at
/// least `x y z` float properties; an `intensity` property is used when
/// present, other properties and elements are ignored.
///
/// # Errors
///
/// Returns [`IoFormatError::Parse`] for missing/invalid headers or
/// truncated vertex data.
pub fn read_ply<R: BufRead>(reader: R) -> Result<PointCloud, IoFormatError> {
    let mut lines = reader.lines();
    let mut next_line = |expect: &str| -> Result<String, IoFormatError> {
        match lines.next() {
            Some(Ok(l)) => Ok(l),
            Some(Err(e)) => Err(IoFormatError::Io(e)),
            None => Err(IoFormatError::Parse {
                line: 0,
                message: format!("unexpected end of file, expected {expect}"),
            }),
        }
    };
    let magic = next_line("ply magic")?;
    if magic.trim() != "ply" {
        return Err(IoFormatError::Parse {
            line: 1,
            message: "not a PLY file".into(),
        });
    }
    let mut vertex_count: Option<usize> = None;
    let mut properties: Vec<String> = Vec::new();
    let mut in_vertex_element = false;
    let mut line_no = 1usize;
    loop {
        let line = next_line("header line")?;
        line_no += 1;
        let line = line.trim().to_string();
        if line == "end_header" {
            break;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        match fields.as_slice() {
            ["format", "ascii", _] | ["comment", ..] => {}
            ["format", other, ..] => {
                return Err(IoFormatError::Parse {
                    line: line_no,
                    message: format!("unsupported PLY format {other:?} (only ascii)"),
                });
            }
            ["element", "vertex", n] => {
                vertex_count = Some(n.parse().map_err(|_| IoFormatError::Parse {
                    line: line_no,
                    message: format!("bad vertex count {n:?}"),
                })?);
                in_vertex_element = true;
            }
            ["element", ..] => in_vertex_element = false,
            ["property", _ty, name] if in_vertex_element => {
                properties.push((*name).to_string());
            }
            ["property", ..] => {}
            _ => {
                return Err(IoFormatError::Parse {
                    line: line_no,
                    message: format!("unrecognized header line {line:?}"),
                });
            }
        }
    }
    let count = vertex_count.ok_or(IoFormatError::Parse {
        line: line_no,
        message: "missing `element vertex` declaration".into(),
    })?;
    let index_of = |name: &str| properties.iter().position(|p| p == name);
    let (ix, iy, iz) = match (index_of("x"), index_of("y"), index_of("z")) {
        (Some(a), Some(b), Some(c)) => (a, b, c),
        _ => {
            return Err(IoFormatError::Parse {
                line: line_no,
                message: "vertex element lacks x/y/z properties".into(),
            });
        }
    };
    let ii = index_of("intensity");

    let mut cloud = PointCloud::with_capacity(count);
    for _ in 0..count {
        let line = next_line("vertex line")?;
        line_no += 1;
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() < properties.len() {
            return Err(IoFormatError::Parse {
                line: line_no,
                message: format!(
                    "vertex has {} fields, header declares {}",
                    fields.len(),
                    properties.len()
                ),
            });
        }
        let get = |i: usize, what: &str| -> Result<f64, IoFormatError> {
            fields[i].parse().map_err(|_| IoFormatError::Parse {
                line: line_no,
                message: format!("invalid {what}: {:?}", fields[i]),
            })
        };
        let position = Vec3::new(get(ix, "x")?, get(iy, "y")?, get(iz, "z")?);
        let reflectance = match ii {
            Some(i) => get(i, "intensity")? as f32,
            None => 0.5,
        };
        cloud.push(Point::new(position, reflectance));
    }
    Ok(cloud)
}

/// Writes an ASCII PCD (Point Cloud Library) file with
/// `x y z intensity` fields.
///
/// # Errors
///
/// Propagates writer errors.
pub fn write_pcd<W: Write>(cloud: &PointCloud, mut writer: W) -> Result<(), IoFormatError> {
    writeln!(writer, "# .PCD v0.7 - Point Cloud Data file format")?;
    writeln!(writer, "VERSION 0.7")?;
    writeln!(writer, "FIELDS x y z intensity")?;
    writeln!(writer, "SIZE 4 4 4 4")?;
    writeln!(writer, "TYPE F F F F")?;
    writeln!(writer, "COUNT 1 1 1 1")?;
    writeln!(writer, "WIDTH {}", cloud.len())?;
    writeln!(writer, "HEIGHT 1")?;
    writeln!(writer, "VIEWPOINT 0 0 0 1 0 0 0")?;
    writeln!(writer, "POINTS {}", cloud.len())?;
    writeln!(writer, "DATA ascii")?;
    for p in cloud.iter() {
        writeln!(
            writer,
            "{} {} {} {}",
            p.position.x as f32, p.position.y as f32, p.position.z as f32, p.reflectance
        )?;
    }
    Ok(())
}

/// Reads the ASCII PCD subset written by [`write_pcd`]: `FIELDS`
/// containing at least `x y z` (an `intensity` field is used when
/// present), `DATA ascii`.
///
/// # Errors
///
/// Returns [`IoFormatError::Parse`] for binary PCD, missing fields or
/// truncated data.
pub fn read_pcd<R: BufRead>(reader: R) -> Result<PointCloud, IoFormatError> {
    let mut fields: Vec<String> = Vec::new();
    let mut points: Option<usize> = None;
    let mut cloud = PointCloud::new();
    let mut in_data = false;
    let mut read_so_far = 0usize;
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let line_no = idx + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        if !in_data {
            let parts: Vec<&str> = trimmed.split_whitespace().collect();
            match parts.as_slice() {
                ["FIELDS", rest @ ..] => {
                    fields = rest.iter().map(|s| s.to_string()).collect();
                }
                ["POINTS", n] => {
                    points = Some(n.parse().map_err(|_| IoFormatError::Parse {
                        line: line_no,
                        message: format!("bad POINTS count {n:?}"),
                    })?);
                }
                ["DATA", "ascii"] => {
                    if fields.is_empty() || points.is_none() {
                        return Err(IoFormatError::Parse {
                            line: line_no,
                            message: "DATA before FIELDS/POINTS".into(),
                        });
                    }
                    in_data = true;
                }
                ["DATA", other] => {
                    return Err(IoFormatError::Parse {
                        line: line_no,
                        message: format!("unsupported PCD data {other:?} (only ascii)"),
                    });
                }
                // VERSION/SIZE/TYPE/COUNT/WIDTH/HEIGHT/VIEWPOINT are
                // informational for the ascii subset.
                _ => {}
            }
            continue;
        }
        let values: Vec<&str> = trimmed.split_whitespace().collect();
        if values.len() < fields.len() {
            return Err(IoFormatError::Parse {
                line: line_no,
                message: format!(
                    "point has {} fields, header declares {}",
                    values.len(),
                    fields.len()
                ),
            });
        }
        let get = |name: &str| -> Option<Result<f64, IoFormatError>> {
            fields.iter().position(|f| f == name).map(|i| {
                values[i].parse().map_err(|_| IoFormatError::Parse {
                    line: line_no,
                    message: format!("invalid {name}: {:?}", values[i]),
                })
            })
        };
        let (x, y, z) = match (get("x"), get("y"), get("z")) {
            (Some(x), Some(y), Some(z)) => (x?, y?, z?),
            _ => {
                return Err(IoFormatError::Parse {
                    line: line_no,
                    message: "PCD lacks x/y/z fields".into(),
                })
            }
        };
        let reflectance = match get("intensity") {
            Some(v) => v? as f32,
            None => 0.5,
        };
        cloud.push(Point::new(Vec3::new(x, y, z), reflectance));
        read_so_far += 1;
    }
    match points {
        Some(expected) if in_data && read_so_far == expected => Ok(cloud),
        Some(expected) if in_data => Err(IoFormatError::Parse {
            line: 0,
            message: format!("expected {expected} points, found {read_so_far}"),
        }),
        _ => Err(IoFormatError::Parse {
            line: 0,
            message: "missing DATA ascii section".into(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn sample() -> PointCloud {
        (0..25)
            .map(|i| {
                Point::new(
                    Vec3::new(i as f64 * 0.5, -3.0 + i as f64 * 0.1, 0.25),
                    (i % 10) as f32 / 10.0,
                )
            })
            .collect()
    }

    #[test]
    fn xyz_round_trip() {
        let cloud = sample();
        let mut buf = Vec::new();
        write_xyz(&cloud, &mut buf).unwrap();
        let back = read_xyz(BufReader::new(buf.as_slice())).unwrap();
        assert_eq!(back.len(), cloud.len());
        for (a, b) in cloud.iter().zip(back.iter()) {
            assert!((a.position - b.position).norm() < 1e-9);
            assert!((a.reflectance - b.reflectance).abs() < 1e-6);
        }
    }

    #[test]
    fn xyz_accepts_comments_and_three_fields() {
        let text = "# header comment\n1 2 3\n\n4 5 6 0.9\n";
        let cloud = read_xyz(BufReader::new(text.as_bytes())).unwrap();
        assert_eq!(cloud.len(), 2);
        assert_eq!(cloud.as_slice()[0].reflectance, 0.5);
        assert_eq!(cloud.as_slice()[1].reflectance, 0.9);
    }

    #[test]
    fn xyz_rejects_malformed_lines() {
        for bad in ["1 2", "1 2 3 4 5", "a b c", "1 2 nan"] {
            let err = read_xyz(BufReader::new(bad.as_bytes())).unwrap_err();
            assert!(
                matches!(err, IoFormatError::Parse { line: 1, .. }),
                "{bad}: {err}"
            );
        }
    }

    #[test]
    fn ply_round_trip() {
        let cloud = sample();
        let mut buf = Vec::new();
        write_ply(&cloud, &mut buf).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(text.starts_with("ply\nformat ascii 1.0"));
        assert!(text.contains("element vertex 25"));
        let back = read_ply(BufReader::new(buf.as_slice())).unwrap();
        assert_eq!(back.len(), cloud.len());
        for (a, b) in cloud.iter().zip(back.iter()) {
            // f32 write precision.
            assert!((a.position - b.position).norm() < 1e-4);
        }
    }

    #[test]
    fn ply_ignores_extra_properties() {
        let text = "ply\nformat ascii 1.0\nelement vertex 1\n\
                    property float x\nproperty float y\nproperty float z\n\
                    property float nx\nend_header\n1 2 3 9\n";
        let cloud = read_ply(BufReader::new(text.as_bytes())).unwrap();
        assert_eq!(cloud.len(), 1);
        assert_eq!(cloud.as_slice()[0].position, Vec3::new(1.0, 2.0, 3.0));
        assert_eq!(cloud.as_slice()[0].reflectance, 0.5);
    }

    #[test]
    fn ply_rejects_binary_and_truncation() {
        let binary = "ply\nformat binary_little_endian 1.0\nend_header\n";
        assert!(read_ply(BufReader::new(binary.as_bytes())).is_err());
        let truncated = "ply\nformat ascii 1.0\nelement vertex 2\n\
                         property float x\nproperty float y\nproperty float z\n\
                         end_header\n1 2 3\n";
        let err = read_ply(BufReader::new(truncated.as_bytes())).unwrap_err();
        assert!(matches!(err, IoFormatError::Parse { .. }));
        let not_ply = "obj\n";
        assert!(read_ply(BufReader::new(not_ply.as_bytes())).is_err());
    }

    #[test]
    fn pcd_round_trip() {
        let cloud = sample();
        let mut buf = Vec::new();
        write_pcd(&cloud, &mut buf).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(text.contains("FIELDS x y z intensity"));
        assert!(text.contains("POINTS 25"));
        let back = read_pcd(BufReader::new(buf.as_slice())).unwrap();
        assert_eq!(back.len(), cloud.len());
        for (a, b) in cloud.iter().zip(back.iter()) {
            assert!((a.position - b.position).norm() < 1e-4);
            assert!((a.reflectance - b.reflectance).abs() < 1e-6);
        }
    }

    #[test]
    fn pcd_rejects_binary_and_count_mismatch() {
        let binary = "VERSION 0.7\nFIELDS x y z\nPOINTS 1\nDATA binary\n".replace("\\n", "\n");
        assert!(read_pcd(BufReader::new(binary.as_bytes())).is_err());
        let short = "FIELDS x y z\nPOINTS 2\nDATA ascii\n1 2 3\n".replace("\\n", "\n");
        let err = read_pcd(BufReader::new(short.as_bytes())).unwrap_err();
        assert!(err.to_string().contains("expected 2 points"));
        let no_data = "FIELDS x y z\nPOINTS 1\n".replace("\\n", "\n");
        assert!(read_pcd(BufReader::new(no_data.as_bytes())).is_err());
    }

    #[test]
    fn pcd_without_intensity_defaults() {
        let text = "FIELDS x y z\nPOINTS 1\nDATA ascii\n1 2 3\n".replace("\\n", "\n");
        let cloud = read_pcd(BufReader::new(text.as_bytes())).unwrap();
        assert_eq!(cloud.as_slice()[0].reflectance, 0.5);
        assert_eq!(cloud.as_slice()[0].position, Vec3::new(1.0, 2.0, 3.0));
    }

    #[test]
    fn errors_display_and_chain() {
        let e = IoFormatError::Parse {
            line: 3,
            message: "boom".into(),
        };
        assert!(e.to_string().contains("line 3"));
        let io = IoFormatError::from(std::io::Error::other("x"));
        assert!(std::error::Error::source(&io).is_some());
    }

    #[test]
    fn empty_cloud_round_trips() {
        let mut buf = Vec::new();
        write_ply(&PointCloud::new(), &mut buf).unwrap();
        assert!(read_ply(BufReader::new(buf.as_slice())).unwrap().is_empty());
        let mut buf2 = Vec::new();
        write_xyz(&PointCloud::new(), &mut buf2).unwrap();
        assert!(read_xyz(BufReader::new(buf2.as_slice()))
            .unwrap()
            .is_empty());
    }
}
