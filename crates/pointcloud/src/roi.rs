//! Region-of-interest (ROI) extraction.
//!
//! §IV-G of the paper: "We adopt a strategy to extract data based on the
//! region of interest (ROI), e.g., traffic lights, blocked areas, nearby
//! vehicles and free-space in driving path, to further reduce data size to
//! hundreds KB per frame. Background data like buildings, trees are
//! subtract\[ed\] because these information can be constructed by each
//! vehicle after several times mapping measurement."
//!
//! Figure 11 defines three ROI categories used in the bandwidth
//! evaluation; [`RoiCategory`] reproduces them and [`extract_roi`] applies
//! them. [`StaticMap`] implements the background-subtraction side: voxels
//! seen consistently across many past scans are classified static and
//! removed from exchanged frames.

use cooper_geometry::{normalize_angle, Vec3};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

use crate::{PointCloud, VoxelCoord, VoxelGridConfig};

/// The three exchange scenarios of the paper's Figure 11.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RoiCategory {
    /// Category 1: opposite-direction lanes with no physical buffer — the
    /// entire frame is exchanged ("we transfer the entirety of the frame
    /// of LiDAR data and this is the most costly of all scenarios").
    FullFrame,
    /// Category 2: junctions — each vehicle sends its forward 120° field
    /// of view ("the ROI is typically the field of view from the driver's
    /// perspective, making only a 120 degree field of view our minimal
    /// requirement"). The exchange is bidirectional.
    FrontFov120,
    /// Category 3: car-following — the trailing car receives the leading
    /// car's forward view; the transaction is one-way and cheapest.
    ForwardOneWay,
}

impl RoiCategory {
    /// All categories, in Figure 11 order.
    pub const ALL: [RoiCategory; 3] = [
        RoiCategory::FullFrame,
        RoiCategory::FrontFov120,
        RoiCategory::ForwardOneWay,
    ];

    /// Number of directed transfers per cooperative pair per frame
    /// (categories 1 and 2 are bidirectional, category 3 is one-way).
    pub fn transfers_per_pair(self) -> usize {
        match self {
            RoiCategory::FullFrame | RoiCategory::FrontFov120 => 2,
            RoiCategory::ForwardOneWay => 1,
        }
    }
}

impl std::fmt::Display for RoiCategory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            RoiCategory::FullFrame => "ROI 1 (full frame)",
            RoiCategory::FrontFov120 => "ROI 2 (120° front FoV)",
            RoiCategory::ForwardOneWay => "ROI 3 (forward one-way)",
        };
        f.write_str(name)
    }
}

/// Keeps points within an azimuth sector of `fov` radians centered on
/// `center_azimuth`.
pub fn sector(cloud: &PointCloud, center_azimuth: f64, fov: f64) -> PointCloud {
    let half = fov * 0.5;
    cloud.filtered(|p| {
        let az = normalize_angle(p.position.azimuth() - center_azimuth);
        az.abs() <= half
    })
}

/// Keeps points whose horizontal range lies in `[min_range, max_range]`.
pub fn distance_band(cloud: &PointCloud, min_range: f64, max_range: f64) -> PointCloud {
    cloud.filtered(|p| {
        let r = p.range_xy();
        r >= min_range && r <= max_range
    })
}

/// Keeps points inside a forward driving corridor: `0 <= x <= length`,
/// `|y| <= half_width`.
pub fn forward_corridor(cloud: &PointCloud, length: f64, half_width: f64) -> PointCloud {
    cloud.filtered(|p| {
        p.position.x >= 0.0 && p.position.x <= length && p.position.y.abs() <= half_width
    })
}

/// Applies a Figure-11 ROI category to a frame about to be transmitted.
///
/// * `FullFrame` passes everything through;
/// * `FrontFov120` keeps the forward 120° sector;
/// * `ForwardOneWay` keeps a forward 60° sector limited to 50 m — the
///   leading car's relevant forward view for a follower.
pub fn extract_roi(cloud: &PointCloud, category: RoiCategory) -> PointCloud {
    match category {
        RoiCategory::FullFrame => cloud.clone(),
        RoiCategory::FrontFov120 => sector(cloud, 0.0, 120f64.to_radians()),
        RoiCategory::ForwardOneWay => {
            distance_band(&sector(cloud, 0.0, 60f64.to_radians()), 0.0, 50.0)
        }
    }
}

/// An azimuth sector `[start, end]` (radians, `start <= end` after
/// unwrapping) that is blocked from the observer's view — the "blocked
/// areas" the paper lists as a primary ROI ("there is a blocked area
/// region behind obstacles on the road that could not be sensed by one
/// car but … can be sensed and provided by other nearby cars", §II-A).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BlindSector {
    /// Sector start azimuth, radians.
    pub start: f64,
    /// Sector end azimuth, radians (≥ start; may exceed π when the
    /// sector wraps).
    pub end: f64,
    /// Range of the occluder creating the shadow, metres.
    pub occluder_range: f64,
}

impl BlindSector {
    /// Angular width of the sector, radians.
    pub fn width(&self) -> f64 {
        self.end - self.start
    }

    /// Center azimuth, normalized to `(-π, π]`.
    pub fn center(&self) -> f64 {
        normalize_angle((self.start + self.end) * 0.5)
    }

    /// `true` when `azimuth` (radians) falls inside the sector.
    pub fn contains(&self, azimuth: f64) -> bool {
        // Compare in the unwrapped frame of the sector.
        let rel = normalize_angle(azimuth - self.center());
        rel.abs() <= self.width() * 0.5
    }
}

/// Finds azimuth sectors blocked by nearby obstacles: contiguous runs of
/// azimuth bins whose nearest (above-ground) return is closer than
/// `occluder_range`, at least `min_width` radians wide.
///
/// These are the regions a vehicle would demand from cooperators
/// ("ROI data will be extracted whenever failure detection happened on
/// this area", §IV-G).
///
/// # Panics
///
/// Panics when `bins` is zero or `occluder_range`/`min_width` are not
/// positive.
pub fn blind_sectors(
    cloud: &PointCloud,
    bins: usize,
    occluder_range: f64,
    min_width: f64,
    ground_z_below: f64,
) -> Vec<BlindSector> {
    assert!(bins > 0, "bins must be positive");
    assert!(occluder_range > 0.0, "occluder range must be positive");
    assert!(min_width > 0.0, "minimum width must be positive");
    let two_pi = std::f64::consts::TAU;
    let mut nearest = vec![f64::INFINITY; bins];
    for p in cloud.iter() {
        if p.position.z < ground_z_below {
            continue; // ground returns do not occlude
        }
        let az = p.position.azimuth(); // (-π, π]
        let idx = (((az + std::f64::consts::PI) / two_pi * bins as f64) as usize).min(bins - 1);
        let r = p.range_xy();
        if r < nearest[idx] {
            nearest[idx] = r;
        }
    }
    // Walk bins collecting blocked runs, treating the bin circle as
    // circular: a run covering the last and first bins is one sector
    // crossing the ±π seam, not two (each possibly under `min_width`
    // and silently dropped — the seam bug this function used to have).
    let blocked: Vec<bool> = nearest.iter().map(|&r| r < occluder_range).collect();
    let bin_width = two_pi / bins as f64;
    if blocked.iter().all(|&b| b) {
        // Fully surrounded: one sector covering the whole circle.
        let min_range = nearest.iter().cloned().fold(f64::INFINITY, f64::min);
        return vec![BlindSector {
            start: -std::f64::consts::PI,
            end: std::f64::consts::PI,
            occluder_range: min_range,
        }];
    }
    // Start the scan at the first clear bin so every blocked run —
    // including one wrapping the seam — is seen contiguously.
    let first_clear = blocked.iter().position(|&b| !b).expect("not all blocked");
    let mut sectors = Vec::new();
    let mut k = 0;
    while k < bins {
        let idx = (first_clear + k) % bins;
        if !blocked[idx] {
            k += 1;
            continue;
        }
        let run_start = first_clear + k;
        let mut min_range = f64::INFINITY;
        while k < bins && blocked[(first_clear + k) % bins] {
            min_range = min_range.min(nearest[(first_clear + k) % bins]);
            k += 1;
        }
        let run_end = first_clear + k;
        // Express the run in (-π, π] start coordinates; `end` exceeds π
        // exactly when the run wraps the seam (the BlindSector contract).
        let start = -std::f64::consts::PI + (run_start % bins) as f64 * bin_width;
        let end = start + (run_end - run_start) as f64 * bin_width;
        if end - start >= min_width {
            sectors.push(BlindSector {
                start,
                end,
                occluder_range: min_range,
            });
        }
    }
    sectors.sort_by(|a, b| a.start.total_cmp(&b.start));
    sectors
}

/// A persistent map of voxels observed to be static across many scans.
///
/// Implements the paper's background subtraction: "Background data like
/// buildings, trees are subtract\[ed\] because these information can be
/// constructed by each vehicle after several times mapping measurement."
/// Voxels observed in at least `static_threshold` distinct scans are
/// considered immobile background and removed from ROI frames.
///
/// # Examples
///
/// ```
/// use cooper_geometry::Vec3;
/// use cooper_pointcloud::{Point, PointCloud, VoxelGridConfig};
/// use cooper_pointcloud::roi::StaticMap;
///
/// let mut map = StaticMap::new(VoxelGridConfig::voxelnet_car(), 3);
/// let wall: PointCloud = (0..10)
///     .map(|i| Point::new(Vec3::new(30.0, i as f64, 0.0), 0.5))
///     .collect();
/// for _ in 0..3 {
///     map.observe(&wall);
/// }
/// let filtered = map.subtract_background(&wall);
/// assert!(filtered.is_empty()); // the wall is now known background
/// ```
#[derive(Debug, Clone)]
pub struct StaticMap {
    config: VoxelGridConfig,
    /// Number of scans in which each voxel was observed.
    observations: HashMap<VoxelCoord, u32>,
    static_threshold: u32,
    scans_observed: u64,
}

impl StaticMap {
    /// Creates an empty static map.
    ///
    /// # Panics
    ///
    /// Panics if `static_threshold` is zero or `config` is invalid.
    pub fn new(config: VoxelGridConfig, static_threshold: u32) -> Self {
        assert!(static_threshold > 0, "static threshold must be positive");
        if let Err(msg) = config.validate() {
            panic!("invalid static map config: {msg}");
        }
        StaticMap {
            config,
            observations: HashMap::new(),
            static_threshold,
            scans_observed: 0,
        }
    }

    /// Folds one scan into the map ("several times mapping measurement").
    ///
    /// Deterministic under the thread-count-invariance contract: the
    /// per-voxel counts depend only on the set of voxels each scan
    /// touches, never on point order or on hash-map iteration order, so
    /// observing the same scans always yields the same classification
    /// regardless of how the fleet loop parallelizes around it.
    pub fn observe(&mut self, cloud: &PointCloud) {
        self.scans_observed += 1;
        let mut seen: HashSet<VoxelCoord> = HashSet::new();
        for p in cloud.iter() {
            if let Some(coord) = self.config.coord_of(p.position) {
                seen.insert(coord);
            }
        }
        for coord in seen {
            *self.observations.entry(coord).or_insert(0) += 1;
        }
    }

    /// Number of scans folded in so far.
    pub fn scans_observed(&self) -> u64 {
        self.scans_observed
    }

    /// `true` when the voxel containing `position` is classified static.
    pub fn is_static(&self, position: Vec3) -> bool {
        self.config
            .coord_of(position)
            .and_then(|c| self.observations.get(&c))
            .is_some_and(|&n| n >= self.static_threshold)
    }

    /// Number of voxels currently classified static.
    pub fn static_voxel_count(&self) -> usize {
        self.observations
            .values()
            .filter(|&&n| n >= self.static_threshold)
            .count()
    }

    /// Removes known-background points from a frame, keeping dynamic
    /// content (vehicles, pedestrians) for transmission.
    pub fn subtract_background(&self, cloud: &PointCloud) -> PointCloud {
        cloud.filtered(|p| !self.is_static(p.position))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Point;

    fn radial_cloud() -> PointCloud {
        // 36 points in a circle of radius 10 at 10° spacing.
        (0..36)
            .map(|i| {
                let az = (i as f64) * 10f64.to_radians() - std::f64::consts::PI;
                Point::new(Vec3::new(10.0 * az.cos(), 10.0 * az.sin(), 0.0), 0.5)
            })
            .collect()
    }

    #[test]
    fn sector_selects_expected_fraction() {
        let c = radial_cloud();
        let front = sector(&c, 0.0, 120f64.to_radians());
        // 120°/360° of 36 points = 12, ±1 for boundary inclusion.
        assert!((11..=13).contains(&front.len()), "{}", front.len());
        for p in front.iter() {
            assert!(p.position.azimuth().abs() <= 60.1f64.to_radians());
        }
    }

    #[test]
    fn sector_wraps_around_pi() {
        let c = radial_cloud();
        let rear = sector(&c, std::f64::consts::PI, 60f64.to_radians());
        assert!(!rear.is_empty());
        for p in rear.iter() {
            let az = p.position.azimuth().abs();
            assert!(az >= (150.0f64 - 0.1).to_radians());
        }
    }

    #[test]
    fn distance_band_bounds() {
        let mut c = PointCloud::new();
        for r in [1.0, 5.0, 10.0, 20.0, 50.0] {
            c.push(Point::new(Vec3::new(r, 0.0, 0.0), 0.5));
        }
        let band = distance_band(&c, 5.0, 20.0);
        assert_eq!(band.len(), 3);
    }

    #[test]
    fn forward_corridor_filters() {
        let mut c = PointCloud::new();
        c.push(Point::new(Vec3::new(10.0, 1.0, 0.0), 0.5)); // in
        c.push(Point::new(Vec3::new(10.0, 5.0, 0.0), 0.5)); // too wide
        c.push(Point::new(Vec3::new(-5.0, 0.0, 0.0), 0.5)); // behind
        c.push(Point::new(Vec3::new(80.0, 0.0, 0.0), 0.5)); // too far
        let corridor = forward_corridor(&c, 50.0, 2.0);
        assert_eq!(corridor.len(), 1);
    }

    #[test]
    fn roi_categories_are_ordered_by_volume() {
        let c = radial_cloud();
        let full = extract_roi(&c, RoiCategory::FullFrame);
        let fov = extract_roi(&c, RoiCategory::FrontFov120);
        let fwd = extract_roi(&c, RoiCategory::ForwardOneWay);
        assert_eq!(full.len(), c.len());
        assert!(fov.len() < full.len());
        assert!(fwd.len() <= fov.len());
    }

    #[test]
    fn transfers_per_pair() {
        assert_eq!(RoiCategory::FullFrame.transfers_per_pair(), 2);
        assert_eq!(RoiCategory::FrontFov120.transfers_per_pair(), 2);
        assert_eq!(RoiCategory::ForwardOneWay.transfers_per_pair(), 1);
    }

    /// Points forming a near "wall" covering `[from, to]` (radians,
    /// unwrapped — may cross ±π) at `range`, over a far background ring.
    fn occluded_scene(from: f64, to: f64, range: f64) -> PointCloud {
        let mut c = PointCloud::new();
        let step = 0.5f64.to_radians();
        let mut az = from;
        while az <= to {
            c.push(Point::new(
                Vec3::new(range * az.cos(), range * az.sin(), 0.0),
                0.5,
            ));
            az += step;
        }
        for i in 0..720 {
            let bg = (i as f64) * step - std::f64::consts::PI;
            c.push(Point::new(
                Vec3::new(60.0 * bg.cos(), 60.0 * bg.sin(), 0.0),
                0.5,
            ));
        }
        c
    }

    #[test]
    fn blind_sector_found_ahead() {
        let c = occluded_scene(-0.3, 0.3, 5.0);
        let sectors = blind_sectors(&c, 360, 15.0, 10f64.to_radians(), -1.0);
        assert_eq!(sectors.len(), 1);
        assert!(sectors[0].center().abs() < 0.05, "{}", sectors[0].center());
        assert!(sectors[0].contains(0.0));
        assert!(!sectors[0].contains(std::f64::consts::PI));
    }

    #[test]
    fn blind_sector_merged_across_seam() {
        // A 40°-wide occluder straight behind: ~20° of blocked bins on
        // each side of ±π. With a 30° minimum width, the unmerged halves
        // would each be dropped; the merged seam-crossing sector must
        // survive and contain the rear direction.
        let c = occluded_scene(
            std::f64::consts::PI - 20f64.to_radians(),
            std::f64::consts::PI + 20f64.to_radians(),
            5.0,
        );
        let sectors = blind_sectors(&c, 360, 15.0, 30f64.to_radians(), -1.0);
        assert_eq!(sectors.len(), 1, "seam halves must merge: {sectors:?}");
        let s = &sectors[0];
        assert!(
            s.end > std::f64::consts::PI,
            "wrapped sector end: {}",
            s.end
        );
        assert!(s.width() >= 30f64.to_radians());
        assert!(s.center().abs() > std::f64::consts::PI - 0.1, "rear center");
        assert!(s.contains(std::f64::consts::PI));
        assert!(s.contains(-std::f64::consts::PI + 0.05));
        assert!(!s.contains(0.0));
    }

    #[test]
    fn fully_surrounded_yields_single_circle_sector() {
        let c = occluded_scene(-std::f64::consts::PI, std::f64::consts::PI, 5.0);
        let sectors = blind_sectors(&c, 360, 15.0, 10f64.to_radians(), -1.0);
        assert_eq!(sectors.len(), 1);
        let s = &sectors[0];
        assert!((s.width() - std::f64::consts::TAU).abs() < 1e-9);
        for az in [-3.0, -1.5, 0.0, 1.5, 3.0] {
            assert!(s.contains(az), "full-circle sector must contain {az}");
        }
    }

    #[test]
    fn blind_sectors_sorted_and_disjoint() {
        // Two separate occluders: ahead and to the left.
        let mut c = occluded_scene(-0.3, 0.3, 5.0);
        let left = occluded_scene(1.2, 1.8, 6.0);
        for p in left.iter() {
            c.push(*p);
        }
        let sectors = blind_sectors(&c, 360, 15.0, 10f64.to_radians(), -1.0);
        assert_eq!(sectors.len(), 2);
        assert!(sectors[0].start < sectors[1].start);
        assert!(sectors[0].end <= sectors[1].start + 1e-9);
    }

    #[test]
    fn static_map_learns_background() {
        let mut map = StaticMap::new(VoxelGridConfig::voxelnet_car(), 3);
        let wall: PointCloud = (0..20)
            .map(|i| Point::new(Vec3::new(30.0, i as f64 - 10.0, 0.0), 0.5))
            .collect();
        // Before enough observations nothing is static.
        map.observe(&wall);
        assert_eq!(map.static_voxel_count(), 0);
        assert_eq!(map.subtract_background(&wall).len(), wall.len());
        map.observe(&wall);
        map.observe(&wall);
        assert!(map.static_voxel_count() > 0);
        assert!(map.subtract_background(&wall).is_empty());
        assert_eq!(map.scans_observed(), 3);
    }

    #[test]
    fn static_map_keeps_dynamic_objects() {
        let mut map = StaticMap::new(VoxelGridConfig::voxelnet_car(), 2);
        let wall: PointCloud = (0..20)
            .map(|i| Point::new(Vec3::new(30.0, i as f64 - 10.0, 0.0), 0.5))
            .collect();
        map.observe(&wall);
        map.observe(&wall);
        // A car appears somewhere new.
        let mut frame = wall.clone();
        frame.push(Point::new(Vec3::new(15.0, 2.0, 0.0), 0.8));
        let dynamic = map.subtract_background(&frame);
        assert_eq!(dynamic.len(), 1);
        assert_eq!(dynamic.as_slice()[0].position.x, 15.0);
    }

    #[test]
    fn static_map_observation_counted_once_per_scan() {
        let mut map = StaticMap::new(VoxelGridConfig::voxelnet_car(), 2);
        // Many points in the same voxel within one scan count as one
        // observation, so a crowded single frame cannot create "static".
        let dense: PointCloud = (0..100)
            .map(|_| Point::new(Vec3::new(30.0, 0.0, 0.0), 0.5))
            .collect();
        map.observe(&dense);
        assert_eq!(map.static_voxel_count(), 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_threshold_panics() {
        let _ = StaticMap::new(VoxelGridConfig::voxelnet_car(), 0);
    }

    #[test]
    fn category_display() {
        for cat in RoiCategory::ALL {
            assert!(format!("{cat}").starts_with("ROI"));
        }
    }
}
