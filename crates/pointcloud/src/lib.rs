//! Point-cloud data structures for the Cooper cooperative-perception
//! system.
//!
//! The Cooper paper (Chen et al., ICDCS 2019) exchanges *raw* LiDAR point
//! clouds between connected vehicles. This crate provides everything those
//! clouds need on both ends of the wire:
//!
//! * [`Point`] / [`PointCloud`] — the cloud container, with rigid-transform
//!   application and the paper's Equation 2 merge (set union of receiver
//!   and transformed transmitter points).
//! * [`VoxelGrid`] — sparse voxelization, the input representation of the
//!   SPOD detector's voxel feature extractor.
//! * [`RangeImage`] — the spherical ("project onto a sphere") dense
//!   representation SPOD uses as preprocessing, following SqueezeSeg.
//! * [`roi`] — region-of-interest extraction (sector, distance band,
//!   corridor, background subtraction) used to fit frames into DSRC
//!   bandwidth (§IV-G).
//! * [`codec`] — the compact wire format ("point clouds can be compressed
//!   into 200 KB per scan by only extracting positional coordinates and
//!   reflection value", §II-C).
//!
//! # Examples
//!
//! Merge a transmitted cloud into a receiver's frame (Equations 1–3):
//!
//! ```
//! use cooper_geometry::{Attitude, Pose, RigidTransform, Vec3};
//! use cooper_pointcloud::{Point, PointCloud};
//!
//! let receiver = Pose::origin();
//! let transmitter = Pose::new(Vec3::new(20.0, 0.0, 0.0), Attitude::from_yaw(0.3));
//!
//! let mut local = PointCloud::new();
//! local.push(Point::new(Vec3::new(5.0, 1.0, 0.2), 0.5));
//!
//! let mut remote = PointCloud::new();
//! remote.push(Point::new(Vec3::new(3.0, -1.0, 0.1), 0.7));
//!
//! let align = RigidTransform::between(&transmitter, &receiver);
//! let fused = local.merged(&remote.transformed(&align));
//! assert_eq!(fused.len(), 2);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod cloud;
pub mod codec;
pub mod io;
mod point;
mod range_image;
pub mod roi;
mod voxel;

pub use cloud::PointCloud;
pub use codec::{
    append_crc, crc32, decode_cloud, decode_cloud_prefix, decode_features, decode_features_prefix,
    encode_cloud, encode_cloud_v2, encode_features, encoded_feature_size, frame_info,
    verify_frame_crc, CodecError, DeltaDecoder, DeltaEncoder, FeatureFrame, FrameInfo, FrameKind,
    CRC_TRAILER_BYTES, WIRE_BYTES_PER_POINT,
};
pub use point::Point;
pub use range_image::{RangeImage, RangeImageConfig};
pub use voxel::{
    IncrementalUpdate, IncrementalVoxelizer, Voxel, VoxelCoord, VoxelGrid, VoxelGridConfig,
};
