//! Sparse voxelization of point clouds.
//!
//! SPOD's first learned stage is a voxel feature extractor "well
//! demonstrated by VoxelNet" (§III-C). The grouping step here mirrors
//! VoxelNet's: partition the detection range into equally spaced voxels,
//! group points by voxel, and keep only non-empty voxels — the sparsity
//! that the sparse convolutional middle layers then exploit.

use std::fmt;

use cooper_geometry::{Aabb3, Vec3};
use serde::{Deserialize, Serialize};

use crate::{Point, PointCloud};

/// Integer coordinates of a voxel within a [`VoxelGrid`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct VoxelCoord {
    /// Voxel index along x.
    pub x: i32,
    /// Voxel index along y.
    pub y: i32,
    /// Voxel index along z.
    pub z: i32,
}

impl VoxelCoord {
    /// Creates a voxel coordinate.
    pub const fn new(x: i32, y: i32, z: i32) -> Self {
        VoxelCoord { x, y, z }
    }

    /// The 6 face-adjacent neighbour coordinates.
    pub fn face_neighbors(&self) -> [VoxelCoord; 6] {
        [
            VoxelCoord::new(self.x + 1, self.y, self.z),
            VoxelCoord::new(self.x - 1, self.y, self.z),
            VoxelCoord::new(self.x, self.y + 1, self.z),
            VoxelCoord::new(self.x, self.y - 1, self.z),
            VoxelCoord::new(self.x, self.y, self.z + 1),
            VoxelCoord::new(self.x, self.y, self.z - 1),
        ]
    }
}

impl fmt::Display for VoxelCoord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {})", self.x, self.y, self.z)
    }
}

/// Configuration of a voxel grid: spatial extent and voxel size.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VoxelGridConfig {
    /// Spatial extent; points outside are dropped during voxelization.
    pub extent: Aabb3,
    /// Edge lengths of one voxel, metres (strictly positive).
    pub voxel_size: Vec3,
    /// Maximum number of raw points retained per voxel for feature
    /// encoding (VoxelNet's `T`); additional points still contribute to
    /// the aggregate statistics. `0` means keep none (aggregates only).
    pub max_points_per_voxel: usize,
}

impl VoxelGridConfig {
    /// A VoxelNet-style default: 70.4 m forward, ±40 m lateral, 4 m tall,
    /// 0.2 × 0.2 × 0.4 m voxels, up to 35 points kept per voxel.
    pub fn voxelnet_car() -> Self {
        VoxelGridConfig {
            extent: Aabb3::new(Vec3::new(0.0, -40.0, -3.0), Vec3::new(70.4, 40.0, 1.0)),
            voxel_size: Vec3::new(0.2, 0.2, 0.4),
            max_points_per_voxel: 35,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a message when any voxel dimension is non-positive or the
    /// extent is degenerate.
    pub fn validate(&self) -> Result<(), String> {
        if self.voxel_size.x <= 0.0 || self.voxel_size.y <= 0.0 || self.voxel_size.z <= 0.0 {
            return Err(format!(
                "voxel size must be positive, got {}",
                self.voxel_size
            ));
        }
        let size = self.extent.size();
        if size.x <= 0.0 || size.y <= 0.0 || size.z <= 0.0 {
            return Err("voxel grid extent is degenerate".to_string());
        }
        Ok(())
    }

    /// Number of voxels along each axis.
    pub fn dimensions(&self) -> (usize, usize, usize) {
        let size = self.extent.size();
        (
            (size.x / self.voxel_size.x).ceil() as usize,
            (size.y / self.voxel_size.y).ceil() as usize,
            (size.z / self.voxel_size.z).ceil() as usize,
        )
    }

    /// Maps a position to its voxel coordinate, or `None` when outside the
    /// extent.
    pub fn coord_of(&self, position: Vec3) -> Option<VoxelCoord> {
        if !self.extent.contains(position) {
            return None;
        }
        let rel = position - self.extent.min();
        let (nx, ny, nz) = self.dimensions();
        let cx = ((rel.x / self.voxel_size.x) as i32).min(nx as i32 - 1);
        let cy = ((rel.y / self.voxel_size.y) as i32).min(ny as i32 - 1);
        let cz = ((rel.z / self.voxel_size.z) as i32).min(nz as i32 - 1);
        Some(VoxelCoord::new(cx, cy, cz))
    }

    /// The center position of a voxel.
    pub fn center_of(&self, coord: VoxelCoord) -> Vec3 {
        self.extent.min()
            + Vec3::new(
                (coord.x as f64 + 0.5) * self.voxel_size.x,
                (coord.y as f64 + 0.5) * self.voxel_size.y,
                (coord.z as f64 + 0.5) * self.voxel_size.z,
            )
    }
}

/// One occupied voxel: retained sample points plus aggregate statistics.
///
/// The aggregates (`count`, sums, minima/maxima) cover *every* point
/// that fell in the voxel and are insertion-order independent; only the
/// capped `samples` list depends on order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Voxel {
    /// Up to `max_points_per_voxel` raw points (in sensor-frame metres).
    pub samples: Vec<Point>,
    /// Total number of points that fell in this voxel (may exceed
    /// `samples.len()`).
    pub count: usize,
    /// Sum of point positions (for centroid computation).
    pub position_sum: Vec3,
    /// Sum of reflectance values.
    pub reflectance_sum: f64,
    /// Component-wise minimum over all points.
    pub min_position: Vec3,
    /// Component-wise maximum over all points.
    pub max_position: Vec3,
    /// Minimum horizontal sensor range over all points.
    pub min_range_xy: f64,
    /// Maximum horizontal sensor range over all points.
    pub max_range_xy: f64,
}

impl Default for Voxel {
    fn default() -> Self {
        Voxel {
            samples: Vec::new(),
            count: 0,
            position_sum: Vec3::ZERO,
            reflectance_sum: 0.0,
            min_position: Vec3::splat(f64::INFINITY),
            max_position: Vec3::splat(f64::NEG_INFINITY),
            min_range_xy: f64::INFINITY,
            max_range_xy: f64::NEG_INFINITY,
        }
    }
}

impl Voxel {
    /// Mean position of all points in the voxel.
    ///
    /// # Panics
    ///
    /// Panics if the voxel is empty (`count == 0`); occupied grids never
    /// store empty voxels.
    pub fn centroid(&self) -> Vec3 {
        assert!(self.count > 0, "empty voxel has no centroid");
        self.position_sum / self.count as f64
    }

    /// Mean reflectance of all points in the voxel.
    ///
    /// # Panics
    ///
    /// Panics if the voxel is empty.
    pub fn mean_reflectance(&self) -> f64 {
        assert!(self.count > 0, "empty voxel has no reflectance");
        self.reflectance_sum / self.count as f64
    }

    /// Accumulates one point into the voxel's samples and statistics.
    fn accumulate(&mut self, point: &Point, cap: usize) {
        if self.samples.len() < cap {
            self.samples.push(*point);
        }
        self.count += 1;
        self.position_sum += point.position;
        self.reflectance_sum += f64::from(point.reflectance);
        self.min_position = self.min_position.min(point.position);
        self.max_position = self.max_position.max(point.position);
        let range_xy = point.range_xy();
        self.min_range_xy = self.min_range_xy.min(range_xy);
        self.max_range_xy = self.max_range_xy.max(range_xy);
    }

    /// Bitwise equality of the aggregate statistics (`to_bits` on every
    /// float field), ignoring the capped `samples` list.
    ///
    /// Feature encoders read only the aggregates, so bitwise-equal
    /// aggregates guarantee a bit-identical encoding — the invalidation
    /// rule of the incremental featurize path.
    pub fn stats_bits_eq(&self, other: &Voxel) -> bool {
        fn v3_bits_eq(a: cooper_geometry::Vec3, b: cooper_geometry::Vec3) -> bool {
            a.x.to_bits() == b.x.to_bits()
                && a.y.to_bits() == b.y.to_bits()
                && a.z.to_bits() == b.z.to_bits()
        }
        self.count == other.count
            && v3_bits_eq(self.position_sum, other.position_sum)
            && self.reflectance_sum.to_bits() == other.reflectance_sum.to_bits()
            && v3_bits_eq(self.min_position, other.min_position)
            && v3_bits_eq(self.max_position, other.max_position)
            && self.min_range_xy.to_bits() == other.min_range_xy.to_bits()
            && self.max_range_xy.to_bits() == other.max_range_xy.to_bits()
    }

    /// Merges another voxel's contents into this one. Samples from
    /// `other` are appended (up to `cap`); the aggregate statistics
    /// combine exactly.
    fn absorb(&mut self, other: Voxel, cap: usize) {
        for point in other.samples {
            if self.samples.len() >= cap {
                break;
            }
            self.samples.push(point);
        }
        self.count += other.count;
        self.position_sum += other.position_sum;
        self.reflectance_sum += other.reflectance_sum;
        self.min_position = self.min_position.min(other.min_position);
        self.max_position = self.max_position.max(other.max_position);
        self.min_range_xy = self.min_range_xy.min(other.min_range_xy);
        self.max_range_xy = self.max_range_xy.max(other.max_range_xy);
    }
}

/// Accumulates a run of points into sorted SoA voxel arrays.
///
/// `keys` is reusable scratch for the `(coordinate, point index)` sort
/// buffer. The stable sort groups points by voxel while preserving cloud
/// order within each voxel, so each voxel's accumulator sees exactly the
/// point sequence a per-point map insertion would have fed it — float
/// sums and the capped sample list come out identical, but without any
/// per-point tree-node traffic.
fn accumulate_sorted(
    points: &[Point],
    config: &VoxelGridConfig,
    keys: &mut Vec<(VoxelCoord, u32)>,
) -> (Vec<VoxelCoord>, Vec<Voxel>) {
    keys.clear();
    keys.reserve(points.len());
    for (i, point) in points.iter().enumerate() {
        if let Some(coord) = config.coord_of(point.position) {
            keys.push((coord, i as u32));
        }
    }
    keys.sort_by_key(|&(coord, _)| coord);

    let mut coords = Vec::new();
    let mut voxels: Vec<Voxel> = Vec::new();
    for &(coord, index) in keys.iter() {
        if coords.last() != Some(&coord) {
            coords.push(coord);
            voxels.push(Voxel::default());
        }
        let voxel = voxels.last_mut().expect("pushed above");
        voxel.accumulate(&points[index as usize], config.max_points_per_voxel);
    }
    (coords, voxels)
}

/// Merges two sorted SoA voxel runs, absorbing `other` into `base` where
/// coordinates collide. Both inputs are consumed; the result stays
/// sorted. Absorption order (base first, then other) matches the old
/// chunk-order map merge, so float accumulators are bit-identical.
fn merge_sorted(
    base: (Vec<VoxelCoord>, Vec<Voxel>),
    other: (Vec<VoxelCoord>, Vec<Voxel>),
    cap: usize,
) -> (Vec<VoxelCoord>, Vec<Voxel>) {
    let (a_coords, a_voxels) = base;
    let (b_coords, b_voxels) = other;
    if b_coords.is_empty() {
        return (a_coords, a_voxels);
    }
    if a_coords.is_empty() {
        return (b_coords, b_voxels);
    }
    let mut coords = Vec::with_capacity(a_coords.len() + b_coords.len());
    let mut voxels = Vec::with_capacity(a_voxels.len() + b_voxels.len());
    let mut a = a_coords.into_iter().zip(a_voxels).peekable();
    let mut b = b_coords.into_iter().zip(b_voxels).peekable();
    loop {
        match (a.peek(), b.peek()) {
            (Some((ca, _)), Some((cb, _))) => {
                if ca < cb {
                    let (c, v) = a.next().expect("peeked");
                    coords.push(c);
                    voxels.push(v);
                } else if cb < ca {
                    let (c, v) = b.next().expect("peeked");
                    coords.push(c);
                    voxels.push(v);
                } else {
                    let (c, mut v) = a.next().expect("peeked");
                    let (_, vb) = b.next().expect("peeked");
                    v.absorb(vb, cap);
                    coords.push(c);
                    voxels.push(v);
                }
            }
            (Some(_), None) => {
                let (c, v) = a.next().expect("peeked");
                coords.push(c);
                voxels.push(v);
            }
            (None, Some(_)) => {
                let (c, v) = b.next().expect("peeked");
                coords.push(c);
                voxels.push(v);
            }
            (None, None) => break,
        }
    }
    (coords, voxels)
}

/// A sparse voxel grid: only occupied voxels are stored.
///
/// # Examples
///
/// ```
/// use cooper_geometry::Vec3;
/// use cooper_pointcloud::{Point, PointCloud, VoxelGrid, VoxelGridConfig};
///
/// let cloud: PointCloud = (0..100)
///     .map(|i| Point::new(Vec3::new(10.0 + (i % 10) as f64 * 0.01, 0.0, 0.0), 0.5))
///     .collect();
/// let grid = VoxelGrid::from_cloud(&cloud, VoxelGridConfig::voxelnet_car());
/// assert_eq!(grid.occupied_count(), 1); // all points in one 0.2 m voxel
/// assert_eq!(grid.total_points(), 100);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VoxelGrid {
    config: VoxelGridConfig,
    /// Occupied voxel coordinates in ascending order.
    coords: Vec<VoxelCoord>,
    /// Voxel payloads, parallel to `coords` (SoA layout: the hot
    /// downstream passes walk flat arrays instead of tree nodes).
    voxels: Vec<Voxel>,
}

impl VoxelGrid {
    /// Voxelizes a cloud sequentially. Points outside the configured
    /// extent are silently dropped (they are out of detection range).
    ///
    /// # Panics
    ///
    /// Panics if `config` fails [`VoxelGridConfig::validate`].
    pub fn from_cloud(cloud: &PointCloud, config: VoxelGridConfig) -> Self {
        if let Err(msg) = config.validate() {
            panic!("invalid voxel grid config: {msg}");
        }
        let mut keys = Vec::new();
        let (coords, voxels) = accumulate_sorted(cloud.as_slice(), &config, &mut keys);
        VoxelGrid {
            config,
            coords,
            voxels,
        }
    }

    /// Voxelizes a cloud in fixed-size chunks mapped over `executor`,
    /// then merges the partial grids in chunk order.
    ///
    /// The chunk boundaries depend only on `chunk_size` — never on the
    /// executor's thread count — and partials merge in chunk order, so
    /// the result (including every floating-point accumulator) is
    /// **bit-identical at any thread count**. It may differ from
    /// [`VoxelGrid::from_cloud`] in the last bits of the float sums,
    /// because chunking changes how the sums are grouped; callers that
    /// need thread-invariant output should use one path consistently.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails [`VoxelGridConfig::validate`] or
    /// `chunk_size` is zero.
    pub fn from_cloud_chunked(
        cloud: &PointCloud,
        config: VoxelGridConfig,
        chunk_size: usize,
        executor: &cooper_exec::Executor,
    ) -> Self {
        if let Err(msg) = config.validate() {
            panic!("invalid voxel grid config: {msg}");
        }
        assert!(chunk_size > 0, "chunk size must be positive");
        let partials =
            executor.map_chunks_in(cloud.as_slice(), chunk_size, Vec::new, |_, points, keys| {
                accumulate_sorted(points, &config, keys)
            });
        let mut merged = (Vec::new(), Vec::new());
        for partial in partials {
            merged = merge_sorted(merged, partial, config.max_points_per_voxel);
        }
        let (coords, voxels) = merged;
        VoxelGrid {
            config,
            coords,
            voxels,
        }
    }

    /// The grid configuration.
    pub fn config(&self) -> &VoxelGridConfig {
        &self.config
    }

    /// Number of occupied voxels.
    pub fn occupied_count(&self) -> usize {
        self.voxels.len()
    }

    /// Total number of in-extent points that were voxelized.
    pub fn total_points(&self) -> usize {
        self.voxels.iter().map(|v| v.count).sum()
    }

    /// Looks up one voxel by binary search over the sorted coordinates.
    pub fn get(&self, coord: VoxelCoord) -> Option<&Voxel> {
        self.coords
            .binary_search(&coord)
            .ok()
            .map(|i| &self.voxels[i])
    }

    /// Iterates over `(coordinate, voxel)` pairs in ascending coordinate
    /// order. The fixed order keeps downstream feature encoding and
    /// float accumulations deterministic run to run.
    pub fn iter(&self) -> impl Iterator<Item = (&VoxelCoord, &Voxel)> {
        self.coords.iter().zip(self.voxels.iter())
    }

    /// The occupied voxel coordinates in ascending order. Parallel
    /// downstream stages index this slice directly (SoA access) instead
    /// of walking an iterator.
    pub fn coords(&self) -> &[VoxelCoord] {
        &self.coords
    }

    /// The voxel payloads, parallel to [`VoxelGrid::coords`].
    pub fn voxels(&self) -> &[Voxel] {
        &self.voxels
    }

    /// Occupancy ratio: occupied voxels over total voxels in the extent.
    /// LiDAR grids are typically far below 1 % occupied, which is the
    /// motivation for sparse convolutions (§III-C).
    pub fn occupancy(&self) -> f64 {
        let (nx, ny, nz) = self.config.dimensions();
        let total = (nx * ny * nz) as f64;
        if total == 0.0 {
            0.0
        } else {
            self.voxels.len() as f64 / total
        }
    }
}

/// Outcome of one [`IncrementalVoxelizer::update`].
#[derive(Debug)]
pub struct IncrementalUpdate {
    /// The grid that was current *before* this update, when the input
    /// changed; `None` when the input was bitwise-identical to the
    /// previous update's (the grid was left untouched). Callers diff
    /// this against [`IncrementalVoxelizer::grid`] to invalidate
    /// per-voxel caches.
    pub previous: Option<VoxelGrid>,
    /// Number of chunks the new cloud partitions into.
    pub chunks_total: usize,
    /// Chunks whose cached partial was reused (inside the common
    /// bitwise prefix).
    pub chunks_reused: usize,
    /// Length of the bitwise-common prefix between the previous and the
    /// new cloud, in points.
    pub prefix_points: usize,
}

impl IncrementalUpdate {
    /// `true` when the input differed from the previous update's.
    pub fn changed(&self) -> bool {
        self.previous.is_some()
    }
}

/// Incrementally maintained chunk-parallel voxelization.
///
/// Keeps the per-chunk sorted-SoA partials of the last input cloud
/// alive across [`IncrementalVoxelizer::update`] calls. On the next
/// call, chunks lying entirely inside the bitwise-common prefix of the
/// old and new clouds reuse their cached partial (skipping the
/// per-chunk sort/accumulate); only suffix chunks are recomputed. The
/// partials are then re-folded in chunk order, so the resulting grid is
/// **bit-identical to [`VoxelGrid::from_cloud_chunked`]** with the same
/// config and chunk size — reuse changes cost, never output.
///
/// Typical producers of prefix-stable clouds are the v2 delta codec's
/// reconstructed frames (static background first, changes appended) and
/// any pipeline that concatenates per-sender segments in a fixed order.
///
/// # Examples
///
/// ```
/// use cooper_geometry::Vec3;
/// use cooper_pointcloud::{
///     IncrementalVoxelizer, Point, PointCloud, VoxelGrid, VoxelGridConfig,
/// };
///
/// let config = VoxelGridConfig::voxelnet_car();
/// let executor = cooper_exec::Executor::sequential();
/// let mut cloud: PointCloud = (0..100)
///     .map(|i| Point::new(Vec3::new(10.0 + (i % 10) as f64, 0.0, 0.0), 0.5))
///     .collect();
/// let mut inc = IncrementalVoxelizer::new(config, 32);
/// inc.update(&cloud, &executor);
///
/// // Append a few points: the three full prefix chunks are reused.
/// cloud.push(Point::new(Vec3::new(50.0, 1.0, 0.0), 0.5));
/// let update = inc.update(&cloud, &executor);
/// assert_eq!(update.chunks_reused, 3);
/// assert_eq!(
///     inc.grid(),
///     &VoxelGrid::from_cloud_chunked(&cloud, config, 32, &executor)
/// );
/// ```
#[derive(Debug, Clone)]
pub struct IncrementalVoxelizer {
    config: VoxelGridConfig,
    chunk_size: usize,
    /// The previous input cloud, kept for the bitwise prefix compare.
    points: Vec<Point>,
    /// Cached per-chunk sorted-SoA partials, parallel to the chunk
    /// partition of `points`.
    partials: Vec<(Vec<VoxelCoord>, Vec<Voxel>)>,
    grid: VoxelGrid,
}

impl IncrementalVoxelizer {
    /// Creates an empty incremental voxelizer.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails [`VoxelGridConfig::validate`] or
    /// `chunk_size` is zero.
    pub fn new(config: VoxelGridConfig, chunk_size: usize) -> Self {
        if let Err(msg) = config.validate() {
            panic!("invalid voxel grid config: {msg}");
        }
        assert!(chunk_size > 0, "chunk size must be positive");
        IncrementalVoxelizer {
            config,
            chunk_size,
            points: Vec::new(),
            partials: Vec::new(),
            grid: VoxelGrid {
                config,
                coords: Vec::new(),
                voxels: Vec::new(),
            },
        }
    }

    /// The grid configuration.
    pub fn config(&self) -> &VoxelGridConfig {
        &self.config
    }

    /// The chunk size partials are cached at.
    pub fn chunk_size(&self) -> usize {
        self.chunk_size
    }

    /// The grid of the most recent update (empty before the first).
    pub fn grid(&self) -> &VoxelGrid {
        &self.grid
    }

    /// Brings the grid up to date with `cloud`, reusing cached chunk
    /// partials where the cloud is bitwise-unchanged.
    ///
    /// A cached chunk is reusable when it is a full chunk lying
    /// entirely inside the bitwise-common prefix: its slice of the new
    /// cloud is then identical to the slice it was computed from.
    /// Suffix chunks start at a multiple of the chunk size, so their
    /// boundaries line up with from-scratch chunking and the re-folded
    /// grid matches [`VoxelGrid::from_cloud_chunked`] bit for bit.
    pub fn update(
        &mut self,
        cloud: &PointCloud,
        executor: &cooper_exec::Executor,
    ) -> IncrementalUpdate {
        let new_points = cloud.as_slice();
        let prefix = self
            .points
            .iter()
            .zip(new_points.iter())
            .take_while(|(a, b)| a.bits_eq(b))
            .count();
        let cs = self.chunk_size;
        let chunks_total = new_points.len().div_ceil(cs);
        if prefix == self.points.len() && prefix == new_points.len() {
            return IncrementalUpdate {
                previous: None,
                chunks_total,
                chunks_reused: chunks_total,
                prefix_points: prefix,
            };
        }
        let reusable = prefix / cs;
        self.partials.truncate(reusable);
        let suffix_start = reusable * cs;
        let config = self.config;
        let fresh = executor.map_chunks_in(
            &new_points[suffix_start..],
            cs,
            Vec::new,
            |_, points, keys| accumulate_sorted(points, &config, keys),
        );
        self.partials.extend(fresh);
        let mut merged = (Vec::new(), Vec::new());
        for partial in &self.partials {
            merged = merge_sorted(merged, partial.clone(), config.max_points_per_voxel);
        }
        let (coords, voxels) = merged;
        self.points.clear();
        self.points.extend_from_slice(new_points);
        let previous = std::mem::replace(
            &mut self.grid,
            VoxelGrid {
                config,
                coords,
                voxels,
            },
        );
        IncrementalUpdate {
            previous: Some(previous),
            chunks_total,
            chunks_reused: reusable,
            prefix_points: prefix,
        }
    }
}

impl fmt::Display for VoxelGrid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (nx, ny, nz) = self.config.dimensions();
        write!(
            f,
            "voxel grid {}x{}x{} ({} occupied, {:.4}% occupancy)",
            nx,
            ny,
            nz,
            self.occupied_count(),
            self.occupancy() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> VoxelGridConfig {
        VoxelGridConfig {
            extent: Aabb3::new(Vec3::new(0.0, -10.0, -2.0), Vec3::new(20.0, 10.0, 2.0)),
            voxel_size: Vec3::new(1.0, 1.0, 1.0),
            max_points_per_voxel: 5,
        }
    }

    #[test]
    fn dimensions_and_validation() {
        let c = config();
        assert_eq!(c.dimensions(), (20, 20, 4));
        assert!(c.validate().is_ok());
        let mut bad = c;
        bad.voxel_size.x = 0.0;
        assert!(bad.validate().is_err());
        let degenerate = VoxelGridConfig {
            extent: Aabb3::new(Vec3::ZERO, Vec3::ZERO),
            ..c
        };
        assert!(degenerate.validate().is_err());
    }

    #[test]
    fn coord_mapping() {
        let c = config();
        assert_eq!(
            c.coord_of(Vec3::new(0.5, -9.5, -1.5)),
            Some(VoxelCoord::new(0, 0, 0))
        );
        assert_eq!(
            c.coord_of(Vec3::new(19.5, 9.5, 1.5)),
            Some(VoxelCoord::new(19, 19, 3))
        );
        // Boundary max maps to the last voxel, not one past it.
        assert_eq!(
            c.coord_of(Vec3::new(20.0, 10.0, 2.0)),
            Some(VoxelCoord::new(19, 19, 3))
        );
        assert_eq!(c.coord_of(Vec3::new(-0.1, 0.0, 0.0)), None);
        assert_eq!(c.coord_of(Vec3::new(25.0, 0.0, 0.0)), None);
    }

    #[test]
    fn center_round_trip() {
        let c = config();
        let coord = VoxelCoord::new(3, 7, 2);
        let center = c.center_of(coord);
        assert_eq!(c.coord_of(center), Some(coord));
    }

    #[test]
    fn voxelization_conserves_points() {
        let cloud: PointCloud = (0..1000)
            .map(|i| {
                let x = (i % 20) as f64 + 0.5;
                let y = ((i / 20) % 20) as f64 - 9.5;
                let z = ((i / 400) % 4) as f64 - 1.5;
                Point::new(Vec3::new(x, y, z), 0.5)
            })
            .collect();
        let grid = VoxelGrid::from_cloud(&cloud, config());
        assert_eq!(grid.total_points(), 1000);
    }

    #[test]
    fn out_of_extent_points_dropped() {
        let mut cloud = PointCloud::new();
        cloud.push(Point::new(Vec3::new(5.0, 0.0, 0.0), 0.5));
        cloud.push(Point::new(Vec3::new(100.0, 0.0, 0.0), 0.5));
        let grid = VoxelGrid::from_cloud(&cloud, config());
        assert_eq!(grid.total_points(), 1);
        assert_eq!(grid.occupied_count(), 1);
    }

    #[test]
    fn sample_cap_respected_but_count_exact() {
        let cloud: PointCloud = (0..50)
            .map(|_| Point::new(Vec3::new(5.2, 0.3, 0.1), 0.4))
            .collect();
        let grid = VoxelGrid::from_cloud(&cloud, config());
        assert_eq!(grid.occupied_count(), 1);
        let (_, voxel) = grid.iter().next().unwrap();
        assert_eq!(voxel.samples.len(), 5);
        assert_eq!(voxel.count, 50);
        assert!((voxel.mean_reflectance() - 0.4).abs() < 1e-6);
        assert!((voxel.centroid() - Vec3::new(5.2, 0.3, 0.1)).norm() < 1e-9);
    }

    #[test]
    fn occupancy_fraction() {
        let mut cloud = PointCloud::new();
        cloud.push(Point::new(Vec3::new(0.5, -9.5, -1.5), 0.5));
        let grid = VoxelGrid::from_cloud(&cloud, config());
        let expect = 1.0 / (20.0 * 20.0 * 4.0);
        assert!((grid.occupancy() - expect).abs() < 1e-12);
    }

    #[test]
    fn face_neighbors() {
        let c = VoxelCoord::new(0, 0, 0);
        let n = c.face_neighbors();
        assert_eq!(n.len(), 6);
        assert!(n.contains(&VoxelCoord::new(1, 0, 0)));
        assert!(n.contains(&VoxelCoord::new(0, 0, -1)));
    }

    #[test]
    #[should_panic(expected = "invalid voxel grid config")]
    fn invalid_config_panics() {
        let mut bad = config();
        bad.voxel_size.y = -1.0;
        let _ = VoxelGrid::from_cloud(&PointCloud::new(), bad);
    }

    #[test]
    #[should_panic(expected = "empty voxel")]
    fn empty_voxel_centroid_panics() {
        let v = Voxel::default();
        let _ = v.centroid();
    }

    #[test]
    fn chunked_matches_sequential_on_single_chunk() {
        let cloud: PointCloud = (0..200)
            .map(|i| {
                let x = (i % 20) as f64 + 0.5;
                let y = ((i / 20) % 10) as f64 - 5.5;
                Point::new(Vec3::new(x, y, 0.25), 0.1 + (i % 7) as f32 * 0.1)
            })
            .collect();
        let executor = cooper_exec::Executor::sequential();
        let whole = VoxelGrid::from_cloud(&cloud, config());
        let chunked = VoxelGrid::from_cloud_chunked(&cloud, config(), cloud.len(), &executor);
        assert_eq!(whole, chunked);
    }

    #[test]
    fn chunked_is_thread_count_invariant() {
        let cloud: PointCloud = (0..3000)
            .map(|i| {
                let x = ((i * 7) % 200) as f64 * 0.1 + 0.05;
                let y = ((i * 13) % 200) as f64 * 0.1 - 10.0;
                let z = ((i * 3) % 40) as f64 * 0.1 - 2.0;
                Point::new(Vec3::new(x, y, z), (i % 11) as f32 * 0.09)
            })
            .collect();
        let serial = VoxelGrid::from_cloud_chunked(
            &cloud,
            config(),
            128,
            &cooper_exec::Executor::new(Some(1)),
        );
        let parallel = VoxelGrid::from_cloud_chunked(
            &cloud,
            config(),
            128,
            &cooper_exec::Executor::new(Some(4)),
        );
        assert_eq!(serial, parallel);
        assert_eq!(serial.total_points(), cloud.len());
    }

    #[test]
    fn chunked_respects_sample_cap_in_cloud_order() {
        let cloud: PointCloud = (0..50)
            .map(|i| Point::new(Vec3::new(5.2, 0.3, 0.1), i as f32 * 0.01))
            .collect();
        let grid = VoxelGrid::from_cloud_chunked(
            &cloud,
            config(),
            10,
            &cooper_exec::Executor::new(Some(3)),
        );
        let (_, voxel) = grid.iter().next().unwrap();
        assert_eq!(voxel.count, 50);
        assert_eq!(voxel.samples.len(), 5);
        // The retained samples are the first five points in cloud order,
        // regardless of which worker voxelized which chunk.
        for (i, sample) in voxel.samples.iter().enumerate() {
            assert!((sample.reflectance - i as f32 * 0.01).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "chunk size must be positive")]
    fn chunked_rejects_zero_chunk() {
        let _ = VoxelGrid::from_cloud_chunked(
            &PointCloud::new(),
            config(),
            0,
            &cooper_exec::Executor::sequential(),
        );
    }

    fn drifting_cloud(n: usize, salt: u64) -> PointCloud {
        (0..n)
            .map(|i| {
                let k = i as u64 + salt * 7919;
                let x = ((k * 7) % 200) as f64 * 0.1 + 0.05;
                let y = ((k * 13) % 200) as f64 * 0.1 - 10.0;
                let z = ((k * 3) % 40) as f64 * 0.1 - 2.0;
                Point::new(Vec3::new(x, y, z), (k % 11) as f32 * 0.09)
            })
            .collect()
    }

    #[test]
    fn incremental_first_update_matches_from_scratch() {
        let executor = cooper_exec::Executor::new(Some(2));
        let cloud = drifting_cloud(500, 0);
        let mut inc = IncrementalVoxelizer::new(config(), 64);
        let update = inc.update(&cloud, &executor);
        assert!(update.changed());
        assert_eq!(update.chunks_reused, 0);
        assert_eq!(update.previous.unwrap().occupied_count(), 0);
        let scratch = VoxelGrid::from_cloud_chunked(&cloud, config(), 64, &executor);
        assert_eq!(inc.grid(), &scratch);
    }

    #[test]
    fn incremental_unchanged_input_reports_no_previous() {
        let executor = cooper_exec::Executor::sequential();
        let cloud = drifting_cloud(300, 1);
        let mut inc = IncrementalVoxelizer::new(config(), 64);
        inc.update(&cloud, &executor);
        let before = inc.grid().clone();
        let update = inc.update(&cloud, &executor);
        assert!(!update.changed());
        assert_eq!(update.chunks_reused, update.chunks_total);
        assert_eq!(update.prefix_points, cloud.len());
        assert_eq!(inc.grid(), &before);
    }

    #[test]
    fn incremental_append_reuses_prefix_chunks() {
        let executor = cooper_exec::Executor::new(Some(3));
        let mut cloud = drifting_cloud(256, 2);
        let mut inc = IncrementalVoxelizer::new(config(), 64);
        inc.update(&cloud, &executor);
        cloud.merge(&drifting_cloud(40, 3));
        let update = inc.update(&cloud, &executor);
        // All four full chunks of the old cloud sit inside the prefix.
        assert_eq!(update.chunks_reused, 4);
        assert_eq!(update.chunks_total, 5);
        assert_eq!(update.prefix_points, 256);
        let scratch = VoxelGrid::from_cloud_chunked(&cloud, config(), 64, &executor);
        assert_eq!(inc.grid(), &scratch);
        // The returned previous grid is the pre-append state.
        let prev = update.previous.unwrap();
        let old = drifting_cloud(256, 2);
        assert_eq!(
            prev,
            VoxelGrid::from_cloud_chunked(&old, config(), 64, &executor)
        );
    }

    #[test]
    fn incremental_midstream_edit_recomputes_suffix() {
        let executor = cooper_exec::Executor::new(Some(2));
        let base = drifting_cloud(512, 4);
        let mut inc = IncrementalVoxelizer::new(config(), 64);
        inc.update(&base, &executor);
        // Mutate one point in chunk 2: chunks 0 and 1 stay reusable,
        // everything from chunk 2 on is recomputed.
        let mut edited: Vec<Point> = base.as_slice().to_vec();
        edited[150].position.x += 0.5;
        let edited: PointCloud = edited.into_iter().collect();
        let update = inc.update(&edited, &executor);
        assert_eq!(update.chunks_reused, 2);
        assert_eq!(update.prefix_points, 150);
        let scratch = VoxelGrid::from_cloud_chunked(&edited, config(), 64, &executor);
        assert_eq!(inc.grid(), &scratch);
    }

    #[test]
    fn incremental_shrink_matches_from_scratch() {
        let executor = cooper_exec::Executor::sequential();
        let base = drifting_cloud(400, 5);
        let mut inc = IncrementalVoxelizer::new(config(), 64);
        inc.update(&base, &executor);
        let shrunk: PointCloud = base.as_slice()[..130].iter().copied().collect();
        let update = inc.update(&shrunk, &executor);
        assert_eq!(update.chunks_reused, 2);
        assert_eq!(update.chunks_total, 3);
        let scratch = VoxelGrid::from_cloud_chunked(&shrunk, config(), 64, &executor);
        assert_eq!(inc.grid(), &scratch);
    }

    #[test]
    fn incremental_is_thread_count_invariant() {
        let mut inc1 = IncrementalVoxelizer::new(config(), 128);
        let mut inc4 = IncrementalVoxelizer::new(config(), 128);
        let e1 = cooper_exec::Executor::new(Some(1));
        let e4 = cooper_exec::Executor::new(Some(4));
        let mut cloud = drifting_cloud(1000, 6);
        for step in 0..3 {
            inc1.update(&cloud, &e1);
            inc4.update(&cloud, &e4);
            assert_eq!(inc1.grid(), inc4.grid());
            cloud.merge(&drifting_cloud(90, 7 + step));
        }
    }

    #[test]
    #[should_panic(expected = "chunk size must be positive")]
    fn incremental_rejects_zero_chunk() {
        let _ = IncrementalVoxelizer::new(config(), 0);
    }

    #[test]
    fn voxelnet_default_is_valid() {
        assert!(VoxelGridConfig::voxelnet_car().validate().is_ok());
    }

    #[test]
    fn display_mentions_occupancy() {
        let grid = VoxelGrid::from_cloud(&PointCloud::new(), config());
        assert!(format!("{grid}").contains("occupancy"));
    }
}
