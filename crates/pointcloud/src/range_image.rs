//! Spherical (range-image) projection of point clouds.
//!
//! SPOD's preprocessing stage: "point clouds are projected onto a sphere
//! … to generate a dense representation" (§III-C, following SqueezeSeg).
//! A range image indexes returns by (elevation row, azimuth column); the
//! dense grid makes hole-filling (densification) cheap, which is what lets
//! SPOD operate on sparse 16-beam data.

use std::fmt;

use cooper_geometry::Vec3;
use serde::{Deserialize, Serialize};

use crate::{Point, PointCloud};

/// Configuration of a spherical projection grid.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RangeImageConfig {
    /// Number of elevation rows (typically the beam count).
    pub rows: usize,
    /// Number of azimuth columns.
    pub cols: usize,
    /// Minimum elevation angle, radians (bottom row).
    pub elevation_min: f64,
    /// Maximum elevation angle, radians (top row).
    pub elevation_max: f64,
    /// Minimum azimuth angle, radians (left column).
    pub azimuth_min: f64,
    /// Maximum azimuth angle, radians (right column).
    pub azimuth_max: f64,
}

impl RangeImageConfig {
    /// A VLP-16-shaped grid: 16 rows over ±15° elevation, 360° azimuth at
    /// 0.4° resolution.
    pub fn vlp16() -> Self {
        RangeImageConfig {
            rows: 16,
            cols: 900,
            elevation_min: (-15.0f64).to_radians(),
            elevation_max: 15.0f64.to_radians(),
            azimuth_min: -std::f64::consts::PI,
            azimuth_max: std::f64::consts::PI,
        }
    }

    /// An HDL-64-shaped grid: 64 rows from −24.8° to +2°, 360° azimuth.
    pub fn hdl64() -> Self {
        RangeImageConfig {
            rows: 64,
            cols: 2048,
            elevation_min: (-24.8f64).to_radians(),
            elevation_max: 2.0f64.to_radians(),
            azimuth_min: -std::f64::consts::PI,
            azimuth_max: std::f64::consts::PI,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a message when dimensions are zero or angle ranges empty.
    pub fn validate(&self) -> Result<(), String> {
        if self.rows == 0 || self.cols == 0 {
            return Err("range image must have non-zero dimensions".into());
        }
        if self.elevation_max <= self.elevation_min {
            return Err("elevation range is empty".into());
        }
        if self.azimuth_max <= self.azimuth_min {
            return Err("azimuth range is empty".into());
        }
        Ok(())
    }

    /// Maps a direction to `(row, col)`, or `None` when outside the grid.
    pub fn cell_of(&self, position: Vec3) -> Option<(usize, usize)> {
        let az = position.azimuth();
        let el = position.elevation();
        if az < self.azimuth_min || az > self.azimuth_max {
            return None;
        }
        if el < self.elevation_min || el > self.elevation_max {
            return None;
        }
        let row_f = (el - self.elevation_min) / (self.elevation_max - self.elevation_min)
            * self.rows as f64;
        let col_f =
            (az - self.azimuth_min) / (self.azimuth_max - self.azimuth_min) * self.cols as f64;
        let row = (row_f as usize).min(self.rows - 1);
        let col = (col_f as usize).min(self.cols - 1);
        Some((row, col))
    }

    /// The direction unit-vector at the center of a cell.
    pub fn direction_of(&self, row: usize, col: usize) -> Vec3 {
        let el = self.elevation_min
            + (row as f64 + 0.5) / self.rows as f64 * (self.elevation_max - self.elevation_min);
        let az = self.azimuth_min
            + (col as f64 + 0.5) / self.cols as f64 * (self.azimuth_max - self.azimuth_min);
        Vec3::new(el.cos() * az.cos(), el.cos() * az.sin(), el.sin())
    }
}

/// One cell of a range image: the closest return projected into it.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
struct Cell {
    /// Range in metres; `0.0` means empty.
    range: f32,
    /// Reflectance of the stored return.
    reflectance: f32,
}

/// A dense spherical projection of a point cloud.
///
/// Cells keep the *closest* return mapped into them, matching how a real
/// scanner reports the first surface per beam direction.
///
/// # Examples
///
/// ```
/// use cooper_geometry::Vec3;
/// use cooper_pointcloud::{Point, PointCloud, RangeImage, RangeImageConfig};
///
/// let mut cloud = PointCloud::new();
/// cloud.push(Point::new(Vec3::new(10.0, 0.0, 0.0), 0.8));
/// let img = RangeImage::project(&cloud, RangeImageConfig::vlp16());
/// assert_eq!(img.occupied_cells(), 1);
/// let back = img.to_cloud();
/// assert_eq!(back.len(), 1);
/// assert!((back.as_slice()[0].position.norm() - 10.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RangeImage {
    config: RangeImageConfig,
    cells: Vec<Cell>,
}

impl RangeImage {
    /// Projects a cloud onto the spherical grid.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails [`RangeImageConfig::validate`].
    pub fn project(cloud: &PointCloud, config: RangeImageConfig) -> Self {
        if let Err(msg) = config.validate() {
            panic!("invalid range image config: {msg}");
        }
        let mut cells = vec![Cell::default(); config.rows * config.cols];
        for point in cloud.iter() {
            let range = point.range();
            if range < 1e-6 {
                continue;
            }
            let Some((row, col)) = config.cell_of(point.position) else {
                continue;
            };
            let cell = &mut cells[row * config.cols + col];
            if cell.range == 0.0 || f64::from(cell.range) > range {
                cell.range = range as f32;
                cell.reflectance = point.reflectance;
            }
        }
        RangeImage { config, cells }
    }

    /// The projection configuration.
    pub fn config(&self) -> &RangeImageConfig {
        &self.config
    }

    /// The range stored at `(row, col)`, or `None` when empty.
    ///
    /// # Panics
    ///
    /// Panics when `row`/`col` are out of bounds.
    pub fn range_at(&self, row: usize, col: usize) -> Option<f64> {
        assert!(
            row < self.config.rows && col < self.config.cols,
            "cell out of bounds"
        );
        let cell = self.cells[row * self.config.cols + col];
        (cell.range > 0.0).then_some(f64::from(cell.range))
    }

    /// The back-projected point stored at `(row, col)`, or `None` when
    /// the cell is empty.
    ///
    /// # Panics
    ///
    /// Panics when `row`/`col` are out of bounds.
    pub fn point_at(&self, row: usize, col: usize) -> Option<Point> {
        assert!(
            row < self.config.rows && col < self.config.cols,
            "cell out of bounds"
        );
        let cell = self.cells[row * self.config.cols + col];
        (cell.range > 0.0).then(|| {
            let dir = self.config.direction_of(row, col);
            Point::new(dir * f64::from(cell.range), cell.reflectance)
        })
    }

    /// Number of non-empty cells.
    pub fn occupied_cells(&self) -> usize {
        self.cells.iter().filter(|c| c.range > 0.0).count()
    }

    /// Fraction of cells holding a return.
    pub fn fill_ratio(&self) -> f64 {
        self.occupied_cells() as f64 / self.cells.len() as f64
    }

    /// Fills empty cells whose horizontal neighbours are both occupied
    /// with the mean of those neighbours — one pass of the densification
    /// SPOD applies to make sparse (16-beam) input usable by the detector.
    ///
    /// Returns the number of cells filled.
    pub fn densify_pass(&mut self) -> usize {
        let cols = self.config.cols;
        let mut filled = 0;
        for row in 0..self.config.rows {
            let base = row * cols;
            let snapshot: Vec<Cell> = self.cells[base..base + cols].to_vec();
            for col in 0..cols {
                if snapshot[col].range > 0.0 {
                    continue;
                }
                let left = snapshot[(col + cols - 1) % cols];
                let right = snapshot[(col + 1) % cols];
                if left.range > 0.0 && right.range > 0.0 {
                    // Only interpolate across small gaps on the same
                    // surface; a large range discontinuity is a real edge.
                    if (left.range - right.range).abs() < 0.5 {
                        self.cells[base + col] = Cell {
                            range: (left.range + right.range) * 0.5,
                            reflectance: (left.reflectance + right.reflectance) * 0.5,
                        };
                        filled += 1;
                    }
                }
            }
        }
        filled
    }

    /// Fills empty cells whose vertical neighbours (same column,
    /// adjacent rows) are both occupied at similar range — bridging the
    /// between-beam gaps that make 16-beam data hard to voxelize. With
    /// coarse beam tables the rows of one surface land several voxels
    /// apart; this pass restores the column continuity a denser unit
    /// would have measured.
    ///
    /// Returns the number of cells filled.
    pub fn densify_vertical_pass(&mut self) -> usize {
        let cols = self.config.cols;
        let rows = self.config.rows;
        if rows < 3 {
            return 0;
        }
        let snapshot = self.cells.clone();
        let mut filled = 0;
        for row in 1..rows - 1 {
            for col in 0..cols {
                if snapshot[row * cols + col].range > 0.0 {
                    continue;
                }
                let below = snapshot[(row - 1) * cols + col];
                let above = snapshot[(row + 1) * cols + col];
                if below.range > 0.0 && above.range > 0.0 && (below.range - above.range).abs() < 1.0
                {
                    self.cells[row * cols + col] = Cell {
                        range: (below.range + above.range) * 0.5,
                        reflectance: (below.reflectance + above.reflectance) * 0.5,
                    };
                    filled += 1;
                }
            }
        }
        filled
    }

    /// Back-projects the image to a point cloud (cell-center directions
    /// scaled by stored ranges).
    pub fn to_cloud(&self) -> PointCloud {
        let mut cloud = PointCloud::with_capacity(self.occupied_cells());
        for row in 0..self.config.rows {
            for col in 0..self.config.cols {
                let cell = self.cells[row * self.config.cols + col];
                if cell.range > 0.0 {
                    let dir = self.config.direction_of(row, col);
                    cloud.push(Point::new(dir * f64::from(cell.range), cell.reflectance));
                }
            }
        }
        cloud
    }
}

impl fmt::Display for RangeImage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "range image {}x{} ({:.1}% filled)",
            self.config.rows,
            self.config.cols,
            self.fill_ratio() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> RangeImageConfig {
        RangeImageConfig {
            rows: 4,
            cols: 16,
            elevation_min: (-0.3f64),
            elevation_max: 0.3,
            azimuth_min: -std::f64::consts::PI,
            azimuth_max: std::f64::consts::PI,
        }
    }

    #[test]
    fn validate_rejects_bad_configs() {
        let mut c = small_config();
        assert!(c.validate().is_ok());
        c.rows = 0;
        assert!(c.validate().is_err());
        let mut c2 = small_config();
        c2.elevation_max = c2.elevation_min;
        assert!(c2.validate().is_err());
        let mut c3 = small_config();
        c3.azimuth_max = c3.azimuth_min - 1.0;
        assert!(c3.validate().is_err());
    }

    #[test]
    fn projection_keeps_closest_return() {
        let mut cloud = PointCloud::new();
        cloud.push(Point::new(Vec3::new(20.0, 0.0, 0.0), 0.1));
        cloud.push(Point::new(Vec3::new(10.0, 0.0, 0.0), 0.9));
        let img = RangeImage::project(&cloud, small_config());
        assert_eq!(img.occupied_cells(), 1);
        let back = img.to_cloud();
        assert!((back.as_slice()[0].position.norm() - 10.0).abs() < 1e-5);
        assert_eq!(back.as_slice()[0].reflectance, 0.9);
    }

    #[test]
    fn points_outside_fov_skipped() {
        let mut cloud = PointCloud::new();
        // Straight up: elevation π/2, far above max.
        cloud.push(Point::new(Vec3::new(0.0, 0.0, 10.0), 0.5));
        let img = RangeImage::project(&cloud, small_config());
        assert_eq!(img.occupied_cells(), 0);
    }

    #[test]
    fn origin_points_skipped() {
        let mut cloud = PointCloud::new();
        cloud.push(Point::new(Vec3::ZERO, 0.5));
        let img = RangeImage::project(&cloud, small_config());
        assert_eq!(img.occupied_cells(), 0);
    }

    #[test]
    fn cell_round_trip_direction() {
        let c = small_config();
        for row in 0..c.rows {
            for col in 0..c.cols {
                let dir = c.direction_of(row, col);
                assert_eq!(c.cell_of(dir * 10.0), Some((row, col)));
            }
        }
    }

    #[test]
    fn densify_fills_single_gaps() {
        let c = small_config();
        let mut cloud = PointCloud::new();
        // Occupy two cells in the same row separated by one column.
        let d0 = c.direction_of(1, 4) * 10.0;
        let d2 = c.direction_of(1, 6) * 10.0;
        cloud.push(Point::new(d0, 0.5));
        cloud.push(Point::new(d2, 0.5));
        let mut img = RangeImage::project(&cloud, c);
        assert_eq!(img.occupied_cells(), 2);
        let filled = img.densify_pass();
        assert_eq!(filled, 1);
        assert!(img.range_at(1, 5).is_some());
        assert!((img.range_at(1, 5).unwrap() - 10.0).abs() < 1e-4);
    }

    #[test]
    fn densify_respects_depth_discontinuity() {
        let c = small_config();
        let mut cloud = PointCloud::new();
        cloud.push(Point::new(c.direction_of(1, 4) * 5.0, 0.5));
        cloud.push(Point::new(c.direction_of(1, 6) * 50.0, 0.5));
        let mut img = RangeImage::project(&cloud, c);
        assert_eq!(img.densify_pass(), 0);
    }

    #[test]
    fn densify_vertical_fills_between_beam_rows() {
        let c = small_config();
        let mut cloud = PointCloud::new();
        // Same column, rows 0 and 2 at equal range: row 1 gets filled.
        cloud.push(Point::new(c.direction_of(0, 5) * 12.0, 0.4));
        cloud.push(Point::new(c.direction_of(2, 5) * 12.0, 0.6));
        let mut img = RangeImage::project(&cloud, c);
        assert_eq!(img.densify_vertical_pass(), 1);
        let p = img.point_at(1, 5).expect("filled");
        assert!((p.position.norm() - 12.0).abs() < 1e-4);
        assert!((p.reflectance - 0.5).abs() < 1e-6);
        // A large range discontinuity is a real edge: not filled.
        let mut cloud2 = PointCloud::new();
        cloud2.push(Point::new(c.direction_of(0, 5) * 5.0, 0.4));
        cloud2.push(Point::new(c.direction_of(2, 5) * 50.0, 0.6));
        let mut img2 = RangeImage::project(&cloud2, c);
        assert_eq!(img2.densify_vertical_pass(), 0);
    }

    #[test]
    fn fill_ratio() {
        let c = small_config();
        let mut cloud = PointCloud::new();
        cloud.push(Point::new(c.direction_of(0, 0) * 5.0, 0.5));
        let img = RangeImage::project(&cloud, c);
        assert!((img.fill_ratio() - 1.0 / 64.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn range_at_out_of_bounds_panics() {
        let img = RangeImage::project(&PointCloud::new(), small_config());
        let _ = img.range_at(10, 0);
    }

    #[test]
    fn presets_are_valid() {
        assert!(RangeImageConfig::vlp16().validate().is_ok());
        assert!(RangeImageConfig::hdl64().validate().is_ok());
        assert_eq!(RangeImageConfig::vlp16().rows, 16);
        assert_eq!(RangeImageConfig::hdl64().rows, 64);
    }
}
