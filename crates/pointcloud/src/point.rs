//! A single LiDAR return.

use std::fmt;

use cooper_geometry::{RigidTransform, Vec3};
use serde::{Deserialize, Serialize};

/// One LiDAR return: a cartesian position plus the surface reflectance.
///
/// This matches the paper's data choice exactly: "by only extracting
/// positional coordinates and reflection value, point clouds can be
/// compressed into 200 KB per scan" (§II-C). Reflectance is kept as `f32`
/// in `[0, 1]`; the wire codec quantizes it to one byte.
///
/// # Examples
///
/// ```
/// use cooper_geometry::Vec3;
/// use cooper_pointcloud::Point;
///
/// let p = Point::new(Vec3::new(12.0, -3.0, 0.4), 0.35);
/// assert!((p.range() - p.position.norm()).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point {
    /// Cartesian position in the sensor frame, metres.
    pub position: Vec3,
    /// Reflectance (intensity) in `[0, 1]`.
    pub reflectance: f32,
}

impl Point {
    /// Creates a point. Reflectance is clamped into `[0, 1]`.
    pub fn new(position: Vec3, reflectance: f32) -> Self {
        Point {
            position,
            reflectance: reflectance.clamp(0.0, 1.0),
        }
    }

    /// Euclidean distance from the sensor origin.
    #[inline]
    pub fn range(&self) -> f64 {
        self.position.norm()
    }

    /// Horizontal distance from the sensor origin.
    #[inline]
    pub fn range_xy(&self) -> f64 {
        self.position.range_xy()
    }

    /// Bitwise equality (`to_bits` on every float field).
    ///
    /// Stricter than `PartialEq`: `-0.0 != 0.0` and NaNs never match.
    /// The incremental perception caches key on this, so reuse only
    /// ever happens on byte-for-byte identical inputs.
    #[inline]
    pub fn bits_eq(&self, other: &Point) -> bool {
        self.position.x.to_bits() == other.position.x.to_bits()
            && self.position.y.to_bits() == other.position.y.to_bits()
            && self.position.z.to_bits() == other.position.z.to_bits()
            && self.reflectance.to_bits() == other.reflectance.to_bits()
    }

    /// Returns this point with its position mapped through `t`,
    /// preserving reflectance — one application of the paper's Equation 3.
    #[inline]
    pub fn transformed(&self, t: &RigidTransform) -> Point {
        Point {
            position: t.apply(self.position),
            reflectance: self.reflectance,
        }
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} r={:.2}", self.position, self.reflectance)
    }
}

impl From<(Vec3, f32)> for Point {
    fn from((position, reflectance): (Vec3, f32)) -> Self {
        Point::new(position, reflectance)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cooper_geometry::Mat3;

    #[test]
    fn reflectance_is_clamped() {
        assert_eq!(Point::new(Vec3::ZERO, 2.0).reflectance, 1.0);
        assert_eq!(Point::new(Vec3::ZERO, -0.5).reflectance, 0.0);
        assert_eq!(Point::new(Vec3::ZERO, 0.25).reflectance, 0.25);
    }

    #[test]
    fn ranges() {
        let p = Point::new(Vec3::new(3.0, 4.0, 12.0), 0.1);
        assert_eq!(p.range(), 13.0);
        assert_eq!(p.range_xy(), 5.0);
    }

    #[test]
    fn transform_preserves_reflectance() {
        let p = Point::new(Vec3::X, 0.42);
        let t = RigidTransform::new(
            Mat3::rotation_z(std::f64::consts::FRAC_PI_2),
            Vec3::new(0.0, 0.0, 1.0),
        );
        let q = p.transformed(&t);
        assert_eq!(q.reflectance, 0.42);
        assert!((q.position - Vec3::new(0.0, 1.0, 1.0)).norm() < 1e-12);
    }

    #[test]
    fn conversion_from_tuple() {
        let p: Point = (Vec3::Y, 0.5f32).into();
        assert_eq!(p.position, Vec3::Y);
        assert_eq!(p.reflectance, 0.5);
    }
}
