//! Compact wire format for exchanged point clouds.
//!
//! §II-C of the paper: "By only extracting positional coordinates and
//! reflection value, point clouds can be compressed into 200 KB per
//! scan." This codec realizes that budget: each point is quantized to
//! centimetre-resolution `i16` coordinates plus one reflectance byte —
//! [`WIRE_BYTES_PER_POINT`] = 7 bytes/point, so a ~30 k-point VLP-16 scan
//! encodes to ~210 KB (≈ 1.7 Mbit, matching the ≈1.8 Mbit/frame of
//! Figure 12).
//!
//! # Wire-format versions
//!
//! Both versions share the 10-byte header (`CPPC` magic, version byte,
//! flags byte, `u32` point count) and the 7-byte point layout, so every
//! decoder in this module reads either version and the fixed point
//! stride keeps prefix salvage ([`decode_cloud_prefix`]) working on
//! truncated frames of any version.
//!
//! * **v1** — the original format; the flags byte is reserved (zero).
//! * **v2** — the bandwidth-governor format (§IV-G: "Background data
//!   like buildings, trees are subtract\[ed\]"). The flags byte becomes
//!   meaningful: bit 0 marks a **delta frame** (only points novel
//!   relative to the sender's previous keyframe), bit 1 marks a frame
//!   whose static background was removed against a
//!   [`StaticMap`](crate::roi::StaticMap). [`DeltaEncoder`] /
//!   [`DeltaDecoder`] implement the keyframe-cadence state machine on
//!   top of [`encode_cloud_v2`].
//! * **v3** — the feature-exchange format (F-Cooper style): instead of
//!   points, the payload carries a quantized sparse BEV **feature map**
//!   ([`FeatureFrame`]) — one `i16` cell coordinate pair plus one signed
//!   byte per channel per active cell, dequantized through a per-frame
//!   `f32` scale carried in an extended header. The count field holds
//!   the cell count and the stride is fixed per frame, so prefix salvage
//!   ([`decode_features_prefix`]) recovers whole cells exactly like the
//!   point decoders recover whole points. Point decoders reject v3
//!   frames (and the feature decoder rejects v1/v2 frames) with
//!   [`CodecError::PayloadKindMismatch`] — never by misreading bytes.

use std::collections::HashSet;
use std::error::Error;
use std::fmt;

use bytes::{Buf, BufMut, Bytes, BytesMut};
use cooper_geometry::Vec3;

use crate::{Point, PointCloud, VoxelCoord, VoxelGridConfig};

/// Bytes used per encoded point: three `i16` centimetre coordinates plus
/// one reflectance byte.
pub const WIRE_BYTES_PER_POINT: usize = 7;

/// Bytes used by the frame header (magic, version, reserved, point count).
pub const WIRE_HEADER_BYTES: usize = 10;

const MAGIC: &[u8; 4] = b"CPPC";
const VERSION_V1: u8 = 1;
const VERSION_V2: u8 = 2;
const VERSION_V3: u8 = 3;
/// Flags-byte bit marking a delta frame (v2 only).
const FLAG_DELTA: u8 = 0b0000_0001;
/// Flags-byte bit marking a background-subtracted frame (v2 only).
const FLAG_BACKGROUND_SUBTRACTED: u8 = 0b0000_0010;
/// Flags-byte bit marking a frame that carries a CRC-32 trailer after
/// its payload (valid in every version). Decoders that predate the bit
/// read the declared count and ignore trailing bytes, so flagged frames
/// still decode on legacy receivers — the trailer is purely additive.
const FLAG_CRC32: u8 = 0b0000_0100;

/// Bytes of the CRC-32 trailer a [`FLAG_CRC32`]-flagged frame appends
/// after its declared payload.
pub const CRC_TRAILER_BYTES: usize = 4;

/// CRC-32/ISO-HDLC (the IEEE 802.3 polynomial, reflected): the trailer
/// checksum of integrity-flagged frames. Table-driven and hand-rolled —
/// the build environment vendors no checksum crate.
const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// Computes the CRC-32 (ISO-HDLC / IEEE 802.3) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC32_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}
/// Quantization step: 1 cm, giving a ±327.67 m representable range —
/// beyond any LiDAR's reach.
const SCALE: f64 = 100.0;

/// Quantizes one coordinate to the wire's `i16` centimetre grid, or
/// `None` when the *rounded* value falls outside the representable
/// range. Validating the quantized value (rather than the raw one)
/// admits boundary coordinates like 327.672 m (rounds to `i16::MAX`)
/// and −327.68 m (exactly `i16::MIN`) that a raw `|x| > 327.67` check
/// would reject asymmetrically.
fn quantize_coord(v: f64) -> Option<i16> {
    let q = (v * SCALE).round();
    if q >= f64::from(i16::MIN) && q <= f64::from(i16::MAX) {
        Some(q as i16)
    } else {
        None
    }
}

/// Quantizes reflectance to one byte, clamping out-of-range and
/// non-finite values explicitly instead of relying on the silent
/// saturating `as` cast (which would also map NaN to 0 — here that
/// mapping is a documented decision, not an accident).
fn quantize_reflectance(r: f32) -> u8 {
    if r.is_finite() {
        (r.clamp(0.0, 1.0) * 255.0).round() as u8
    } else {
        0
    }
}

/// Errors produced while encoding or decoding wire frames.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// A coordinate exceeded the representable ±327.67 m range.
    CoordinateOutOfRange {
        /// Index of the offending point in the cloud.
        index: usize,
    },
    /// The buffer ended before the declared payload was complete.
    Truncated {
        /// Bytes expected.
        expected: usize,
        /// Bytes available.
        actual: usize,
    },
    /// The frame did not start with the `CPPC` magic.
    BadMagic,
    /// The frame version is not supported by this decoder.
    UnsupportedVersion(u8),
    /// A v3 feature frame was offered to a point decoder, or a v1/v2
    /// point frame was offered to the feature decoder. The payload is
    /// well-formed — it just carries the other content type; route it
    /// through the matching decoder instead.
    PayloadKindMismatch {
        /// Version byte of the frame that was offered.
        version: u8,
    },
    /// The frame carries a CRC-32 trailer and it does not match the
    /// frame content: bytes were corrupted in flight.
    ChecksumMismatch {
        /// The CRC the trailer declared.
        expected: u32,
        /// The CRC the received bytes actually hash to.
        actual: u32,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::CoordinateOutOfRange { index } => {
                write!(f, "point {index} exceeds the representable ±327.67 m range")
            }
            CodecError::Truncated { expected, actual } => {
                write!(
                    f,
                    "frame truncated: expected {expected} bytes, got {actual}"
                )
            }
            CodecError::BadMagic => write!(f, "frame does not start with CPPC magic"),
            CodecError::UnsupportedVersion(v) => write!(f, "unsupported frame version {v}"),
            CodecError::PayloadKindMismatch { version } => {
                write!(
                    f,
                    "version {version} frame offered to the wrong decoder (points vs features)"
                )
            }
            CodecError::ChecksumMismatch { expected, actual } => {
                write!(
                    f,
                    "CRC-32 mismatch: trailer declares {expected:#010x}, content hashes to {actual:#010x}"
                )
            }
        }
    }
}

impl Error for CodecError {}

/// What content a wire frame carries: a full point snapshot, the points
/// novel since the sender's previous keyframe, or (v3) a quantized BEV
/// feature map.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FrameKind {
    /// A complete, self-contained frame. All v1 frames are keyframes.
    Keyframe,
    /// Only points in voxels unoccupied by the previous keyframe.
    /// Decodable on its own (the points it carries are real points);
    /// [`DeltaDecoder`] additionally merges the cached keyframe back in.
    Delta,
    /// A v3 frame carrying a [`FeatureFrame`] instead of points:
    /// sender-side detector features quantized for the wire,
    /// self-contained (no delta state) and decodable only through
    /// [`decode_features`].
    Features,
}

impl fmt::Display for FrameKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FrameKind::Keyframe => "keyframe",
            FrameKind::Delta => "delta",
            FrameKind::Features => "features",
        })
    }
}

/// Parsed header of a wire frame — what a receiver can learn without
/// decoding any point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameInfo {
    /// Wire-format version (1, 2 or 3).
    pub version: u8,
    /// Keyframe or delta ([`FrameKind::Keyframe`] for every v1 frame);
    /// [`FrameKind::Features`] for every v3 frame.
    pub kind: FrameKind,
    /// `true` when the sender removed known-static background before
    /// encoding (v2 flag bit 1).
    pub background_subtracted: bool,
    /// `true` when the frame appends a CRC-32 trailer after its payload
    /// (flag bit 2, any version). Decoders verify it; legacy receivers
    /// ignore the trailing bytes.
    pub has_crc: bool,
    /// Points the full frame declares — active BEV cells for a v3
    /// feature frame.
    pub point_count: usize,
}

/// Parses the 10-byte frame header of either wire-format version.
///
/// # Errors
///
/// Returns [`CodecError::Truncated`], [`CodecError::BadMagic`] or
/// [`CodecError::UnsupportedVersion`] for malformed input.
pub fn frame_info(mut bytes: &[u8]) -> Result<FrameInfo, CodecError> {
    if bytes.len() < WIRE_HEADER_BYTES {
        return Err(CodecError::Truncated {
            expected: WIRE_HEADER_BYTES,
            actual: bytes.len(),
        });
    }
    let mut magic = [0u8; 4];
    bytes.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(CodecError::BadMagic);
    }
    let version = bytes.get_u8();
    if version != VERSION_V1 && version != VERSION_V2 && version != VERSION_V3 {
        return Err(CodecError::UnsupportedVersion(version));
    }
    let flags = bytes.get_u8();
    let count = bytes.get_u32() as usize;
    let (kind, background_subtracted) = match version {
        VERSION_V2 => (
            if flags & FLAG_DELTA != 0 {
                FrameKind::Delta
            } else {
                FrameKind::Keyframe
            },
            flags & FLAG_BACKGROUND_SUBTRACTED != 0,
        ),
        VERSION_V3 => (FrameKind::Features, false),
        _ => (FrameKind::Keyframe, false),
    };
    Ok(FrameInfo {
        version,
        kind,
        background_subtracted,
        has_crc: flags & FLAG_CRC32 != 0,
        point_count: count,
    })
}

/// Bytes the frame's header declares for header + payload — the region
/// a CRC trailer covers and the offset at which it sits.
///
/// # Errors
///
/// For a v3 frame, [`CodecError::Truncated`] when the extended
/// subheader (which carries the channel count the stride depends on) is
/// incomplete.
fn declared_body_len(bytes: &[u8], info: &FrameInfo) -> Result<usize, CodecError> {
    match info.kind {
        FrameKind::Features => {
            let (channels, _) = feature_subheader(bytes)?;
            Ok(WIRE_FEATURE_HEADER_BYTES + info.point_count * feature_cell_stride(channels))
        }
        _ => Ok(WIRE_HEADER_BYTES + info.point_count * WIRE_BYTES_PER_POINT),
    }
}

/// Verifies the CRC-32 trailer of an integrity-flagged frame; a no-op
/// for frames without the flag.
///
/// # Errors
///
/// [`CodecError::Truncated`] when the flagged trailer did not fully
/// arrive, [`CodecError::ChecksumMismatch`] when it disagrees with the
/// frame content.
fn verify_crc(bytes: &[u8], info: &FrameInfo) -> Result<(), CodecError> {
    if !info.has_crc {
        return Ok(());
    }
    let body = declared_body_len(bytes, info)?;
    let framed = body + CRC_TRAILER_BYTES;
    if bytes.len() < framed {
        return Err(CodecError::Truncated {
            expected: framed,
            actual: bytes.len(),
        });
    }
    let expected = u32::from_be_bytes([
        bytes[body],
        bytes[body + 1],
        bytes[body + 2],
        bytes[body + 3],
    ]);
    let actual = crc32(&bytes[..body]);
    if actual != expected {
        return Err(CodecError::ChecksumMismatch { expected, actual });
    }
    Ok(())
}

/// Verifies an encoded frame's CRC-32 integrity trailer without
/// decoding the payload. Returns `Ok(true)` when the frame carries a
/// trailer that matches its content, `Ok(false)` when the frame was
/// never CRC-framed (nothing to verify).
///
/// # Errors
///
/// The header errors of [`frame_info`], [`CodecError::Truncated`] when
/// the declared trailer is missing, and
/// [`CodecError::ChecksumMismatch`] when the content does not hash to
/// the trailer's value.
pub fn verify_frame_crc(bytes: &[u8]) -> Result<bool, CodecError> {
    let info = frame_info(bytes)?;
    verify_crc(bytes, &info)?;
    Ok(info.has_crc)
}

/// Re-frames an encoded wire frame (any version) with the CRC-32
/// integrity trailer: sets [`FLAG_CRC32`] in the flags byte, hashes the
/// declared header + payload and appends the 4-byte big-endian trailer.
/// Trailing bytes beyond the declared payload are dropped.
///
/// The operation is idempotent — re-framing an already-flagged frame
/// recomputes the same trailer.
///
/// # Errors
///
/// The header errors of [`frame_info`], and [`CodecError::Truncated`]
/// when `frame` is shorter than its declared payload.
pub fn append_crc(frame: &[u8]) -> Result<Bytes, CodecError> {
    let info = frame_info(frame)?;
    let body = declared_body_len(frame, &info)?;
    if frame.len() < body {
        return Err(CodecError::Truncated {
            expected: body,
            actual: frame.len(),
        });
    }
    let mut out = Vec::with_capacity(body + CRC_TRAILER_BYTES);
    out.extend_from_slice(&frame[..body]);
    out[5] |= FLAG_CRC32;
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_be_bytes());
    Ok(Bytes::from(out))
}

fn encode_with_header(cloud: &PointCloud, version: u8, flags: u8) -> Result<Bytes, CodecError> {
    let mut buf = BytesMut::with_capacity(WIRE_HEADER_BYTES + cloud.len() * WIRE_BYTES_PER_POINT);
    buf.put_slice(MAGIC);
    buf.put_u8(version);
    buf.put_u8(flags);
    buf.put_u32(cloud.len() as u32);
    for (index, point) in cloud.iter().enumerate() {
        let p = point.position;
        let (Some(x), Some(y), Some(z)) = (
            quantize_coord(p.x),
            quantize_coord(p.y),
            quantize_coord(p.z),
        ) else {
            return Err(CodecError::CoordinateOutOfRange { index });
        };
        buf.put_i16(x);
        buf.put_i16(y);
        buf.put_i16(z);
        buf.put_u8(quantize_reflectance(point.reflectance));
    }
    Ok(buf.freeze())
}

/// Encodes a cloud into the version-1 wire format.
///
/// # Errors
///
/// Returns [`CodecError::CoordinateOutOfRange`] when any coordinate
/// quantizes outside the representable `i16` centimetre range
/// (±327.67 m, with round-to-nearest at the boundary). Callers
/// exchanging sensor-frame clouds never hit this; clouds already moved
/// into a distant world frame must be re-centered first.
///
/// # Examples
///
/// ```
/// use cooper_geometry::Vec3;
/// use cooper_pointcloud::{decode_cloud, encode_cloud, Point, PointCloud};
///
/// # fn main() -> Result<(), cooper_pointcloud::CodecError> {
/// let mut cloud = PointCloud::new();
/// cloud.push(Point::new(Vec3::new(12.34, -5.67, 0.89), 0.5));
/// let bytes = encode_cloud(&cloud)?;
/// let decoded = decode_cloud(&bytes)?;
/// assert_eq!(decoded.len(), 1);
/// # Ok(())
/// # }
/// ```
pub fn encode_cloud(cloud: &PointCloud) -> Result<Bytes, CodecError> {
    encode_with_header(cloud, VERSION_V1, 0)
}

/// Encodes a cloud into the version-2 wire format, stamping the flags
/// byte with the frame kind and whether background was subtracted.
///
/// The point payload is identical to v1; only the header differs, so v2
/// frames flow through fragmentation, ARQ and prefix salvage unchanged.
///
/// # Errors
///
/// Same as [`encode_cloud`].
///
/// # Panics
///
/// Panics when `kind` is [`FrameKind::Features`]: feature frames carry
/// no points and are encoded with [`encode_features`].
pub fn encode_cloud_v2(
    cloud: &PointCloud,
    kind: FrameKind,
    background_subtracted: bool,
) -> Result<Bytes, CodecError> {
    assert!(
        kind != FrameKind::Features,
        "feature frames are encoded with encode_features, not encode_cloud_v2"
    );
    let mut flags = 0u8;
    if kind == FrameKind::Delta {
        flags |= FLAG_DELTA;
    }
    if background_subtracted {
        flags |= FLAG_BACKGROUND_SUBTRACTED;
    }
    encode_with_header(cloud, VERSION_V2, flags)
}

/// Decodes a wire frame (either version) back into a point cloud.
///
/// Positions are recovered to within 5 mm (half the quantization step),
/// reflectance to within 1/510. A v2 delta frame decodes to the points
/// it carries; use [`DeltaDecoder`] to merge the reference keyframe
/// back in, or [`frame_info`] to learn the kind first.
///
/// # Errors
///
/// Returns [`CodecError::BadMagic`], [`CodecError::UnsupportedVersion`] or
/// [`CodecError::Truncated`] for malformed input, and
/// [`CodecError::PayloadKindMismatch`] for a (well-formed) v3 feature
/// frame — use [`decode_features`] for those.
pub fn decode_cloud(bytes: &[u8]) -> Result<PointCloud, CodecError> {
    let info = frame_info(bytes)?;
    if info.kind == FrameKind::Features {
        return Err(CodecError::PayloadKindMismatch {
            version: info.version,
        });
    }
    let count = info.point_count;
    let body = WIRE_HEADER_BYTES + count * WIRE_BYTES_PER_POINT;
    if bytes.len() < body {
        return Err(CodecError::Truncated {
            expected: body,
            actual: bytes.len(),
        });
    }
    verify_crc(bytes, &info)?;
    Ok(decode_points(&bytes[WIRE_HEADER_BYTES..body], count))
}

/// Decodes `count` fixed-stride points from a payload slice of exactly
/// `count * WIRE_BYTES_PER_POINT` bytes. Working on whole 7-byte chunks
/// instead of a byte cursor lets the bounds check happen once per point
/// — this is the fusion hot path, run for every received packet.
fn decode_points(payload: &[u8], count: usize) -> PointCloud {
    debug_assert_eq!(payload.len(), count * WIRE_BYTES_PER_POINT);
    let mut cloud = PointCloud::with_capacity(count);
    for chunk in payload.chunks_exact(WIRE_BYTES_PER_POINT) {
        let x = f64::from(i16::from_be_bytes([chunk[0], chunk[1]])) / SCALE;
        let y = f64::from(i16::from_be_bytes([chunk[2], chunk[3]])) / SCALE;
        let z = f64::from(i16::from_be_bytes([chunk[4], chunk[5]])) / SCALE;
        let reflectance = f32::from(chunk[6]) / 255.0;
        cloud.push(Point::new(Vec3::new(x, y, z), reflectance));
    }
    cloud
}

/// Size in bytes of the wire frame for a cloud of `n` points.
pub fn encoded_size(n: usize) -> usize {
    WIRE_HEADER_BYTES + n * WIRE_BYTES_PER_POINT
}

/// Decodes as many *whole* points as a truncated wire frame contains —
/// the salvage path for partial deliveries, where only a leading
/// portion of the frame arrived before the transport deadline expired.
///
/// Because every point occupies a fixed [`WIRE_BYTES_PER_POINT`] slot,
/// any prefix that covers the header decodes cleanly up to the last
/// complete point; a trailing half-point is discarded. Returns the
/// decoded cloud and the point count the full frame declared, so the
/// caller can report the salvaged fraction.
///
/// # Errors
///
/// Returns [`CodecError::BadMagic`], [`CodecError::UnsupportedVersion`]
/// or — only when even the header is incomplete —
/// [`CodecError::Truncated`]. A v3 feature frame is rejected with
/// [`CodecError::PayloadKindMismatch`]; salvage those with
/// [`decode_features_prefix`]. When an integrity-flagged frame arrived
/// *complete* (payload and trailer), its CRC is verified and a mismatch
/// returns [`CodecError::ChecksumMismatch`]; a genuine prefix carries
/// no verifiable trailer, so its whole points are salvaged unchecked —
/// per-fragment integrity is the transport's job.
pub fn decode_cloud_prefix(bytes: &[u8]) -> Result<(PointCloud, usize), CodecError> {
    let info = frame_info(bytes)?;
    if info.kind == FrameKind::Features {
        return Err(CodecError::PayloadKindMismatch {
            version: info.version,
        });
    }
    let declared = info.point_count;
    let body = WIRE_HEADER_BYTES + declared * WIRE_BYTES_PER_POINT;
    if info.has_crc && bytes.len() >= body + CRC_TRAILER_BYTES {
        verify_crc(bytes, &info)?;
    }
    let payload = &bytes[WIRE_HEADER_BYTES..];
    let available = (payload.len() / WIRE_BYTES_PER_POINT).min(declared);
    let cloud = decode_points(&payload[..available * WIRE_BYTES_PER_POINT], available);
    Ok((cloud, declared))
}

/// Extra header bytes of a v3 frame beyond the common 10-byte header:
/// a `u8` channel count and the `f32` dequantization scale.
pub const WIRE_FEATURE_SUBHEADER_BYTES: usize = 5;

/// Total header bytes of a v3 feature frame.
pub const WIRE_FEATURE_HEADER_BYTES: usize = WIRE_HEADER_BYTES + WIRE_FEATURE_SUBHEADER_BYTES;

/// Magnitude of the largest quantized feature step: values are mapped
/// to signed bytes in `[-127, 127]` against the per-frame scale.
const FEATURE_Q_MAX: f32 = 127.0;

/// Wire bytes of one encoded feature cell: two `i16` BEV cell indices
/// plus one signed byte per channel.
pub fn feature_cell_stride(channels: usize) -> usize {
    4 + channels
}

/// Size in bytes of the v3 wire frame for `cells` active BEV cells of
/// `channels` features each.
pub fn encoded_feature_size(cells: usize, channels: usize) -> usize {
    WIRE_FEATURE_HEADER_BYTES + cells * feature_cell_stride(channels)
}

/// A sparse BEV feature map in wire-interchange form: active `(x, y)`
/// grid cells in ascending order, each carrying `channels` `f32`
/// features. This is the payload of a v3 frame — the detector-side
/// `BevMap` converts to and from it, and the codec quantizes it for the
/// wire ([`encode_features`] / [`decode_features`]).
///
/// The type lives here (not in the detector crate) so the codec stays
/// free of detector dependencies; it is deliberately a plain cells +
/// flat-features container with the same layout contract as the
/// detector's BEV map (cells strictly ascending, `channels` values per
/// cell).
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureFrame {
    channels: usize,
    /// Active cells in strictly ascending `(x, y)` order.
    cells: Vec<(i32, i32)>,
    /// Flat feature storage, `channels` values per cell.
    features: Vec<f32>,
}

impl FeatureFrame {
    /// Builds a frame from its parts.
    ///
    /// # Panics
    ///
    /// Panics when `features.len() != cells.len() * channels` or the
    /// cells are not strictly ascending — both are programmer errors
    /// (wire-side validation happens in [`decode_features`]).
    pub fn new(channels: usize, cells: Vec<(i32, i32)>, features: Vec<f32>) -> Self {
        assert_eq!(
            features.len(),
            cells.len() * channels,
            "feature storage must hold `channels` values per cell"
        );
        assert!(
            cells.windows(2).all(|w| w[0] < w[1]),
            "feature cells must be strictly ascending"
        );
        FeatureFrame {
            channels,
            cells,
            features,
        }
    }

    /// Features per cell.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Number of active cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// `true` when no cell is active.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// The active cells in ascending `(x, y)` order.
    pub fn cells(&self) -> &[(i32, i32)] {
        &self.cells
    }

    /// The flat feature buffer (`channels` values per cell).
    pub fn features(&self) -> &[f32] {
        &self.features
    }

    /// The feature slice of the cell at `index`.
    ///
    /// # Panics
    ///
    /// Panics when `index >= self.len()`.
    pub fn feature_at(&self, index: usize) -> &[f32] {
        &self.features[index * self.channels..(index + 1) * self.channels]
    }

    /// The symmetric per-frame quantization scale [`encode_features`]
    /// would use: the largest finite absolute feature value (zero for an
    /// all-zero or empty frame). The worst-case per-value round-trip
    /// error is `scale / (2 · 127)`.
    pub fn quantization_scale(&self) -> f32 {
        self.features
            .iter()
            .filter(|v| v.is_finite())
            .fold(0.0f32, |acc, v| acc.max(v.abs()))
    }
}

/// Encodes a sparse BEV feature map into the version-3 wire format.
///
/// Each feature value is quantized to a signed byte against the frame's
/// symmetric scale (`q = round(v / scale · 127)`), so the worst-case
/// reconstruction error is `scale / 254` per value. Non-finite values
/// encode as zero — the same defensive mapping the point codec applies
/// to reflectance. An all-zero frame stores a zero scale and decodes to
/// exact zeros.
///
/// # Errors
///
/// Returns [`CodecError::CoordinateOutOfRange`] when a cell index
/// exceeds the `i16` range (±32 767 cells — far beyond any detector
/// grid) and [`CodecError::UnsupportedVersion`] when `channels`
/// exceeds 255.
pub fn encode_features(frame: &FeatureFrame) -> Result<Bytes, CodecError> {
    if frame.channels > u8::MAX as usize {
        return Err(CodecError::UnsupportedVersion(VERSION_V3));
    }
    let scale = frame.quantization_scale();
    let mut buf = BytesMut::with_capacity(encoded_feature_size(frame.len(), frame.channels));
    buf.put_slice(MAGIC);
    buf.put_u8(VERSION_V3);
    buf.put_u8(0);
    buf.put_u32(frame.len() as u32);
    buf.put_u8(frame.channels as u8);
    buf.put_f32(scale);
    for (index, &(x, y)) in frame.cells.iter().enumerate() {
        let (Ok(cx), Ok(cy)) = (i16::try_from(x), i16::try_from(y)) else {
            return Err(CodecError::CoordinateOutOfRange { index });
        };
        buf.put_i16(cx);
        buf.put_i16(cy);
        for &v in &frame.features[index * frame.channels..(index + 1) * frame.channels] {
            let q: i8 = if v.is_finite() && scale > 0.0 {
                (v / scale * FEATURE_Q_MAX).round().clamp(-127.0, 127.0) as i8
            } else {
                0
            };
            buf.put_u8(q as u8);
        }
    }
    Ok(buf.freeze())
}

/// Parses the v3 extended subheader, returning `(channels, scale)`.
fn feature_subheader(bytes: &[u8]) -> Result<(usize, f32), CodecError> {
    if bytes.len() < WIRE_FEATURE_HEADER_BYTES {
        return Err(CodecError::Truncated {
            expected: WIRE_FEATURE_HEADER_BYTES,
            actual: bytes.len(),
        });
    }
    let mut sub = &bytes[WIRE_HEADER_BYTES..];
    let channels = sub.get_u8() as usize;
    let scale = sub.get_f32();
    let scale = if scale.is_finite() { scale.abs() } else { 0.0 };
    Ok((channels, scale))
}

/// Decodes `count` fixed-stride feature cells from a payload slice.
fn decode_feature_cells(payload: &[u8], count: usize, channels: usize, scale: f32) -> FeatureFrame {
    let stride = feature_cell_stride(channels);
    debug_assert_eq!(payload.len(), count * stride);
    let mut cells = Vec::with_capacity(count);
    let mut features = Vec::with_capacity(count * channels);
    for chunk in payload.chunks_exact(stride) {
        let x = i32::from(i16::from_be_bytes([chunk[0], chunk[1]]));
        let y = i32::from(i16::from_be_bytes([chunk[2], chunk[3]]));
        cells.push((x, y));
        for &q in &chunk[4..] {
            features.push(f32::from(q as i8) * scale / FEATURE_Q_MAX);
        }
    }
    FeatureFrame {
        channels,
        cells,
        features,
    }
}

/// Decodes a version-3 wire frame back into a sparse feature map.
///
/// Values are recovered to within `scale / 254` of the encoded input.
/// Cell order is preserved from the wire (ascending, as
/// [`encode_features`] wrote it).
///
/// # Errors
///
/// Returns [`CodecError::BadMagic`], [`CodecError::UnsupportedVersion`]
/// or [`CodecError::Truncated`] for malformed input, and
/// [`CodecError::PayloadKindMismatch`] when offered a v1/v2 point frame.
pub fn decode_features(bytes: &[u8]) -> Result<FeatureFrame, CodecError> {
    let info = frame_info(bytes)?;
    if info.kind != FrameKind::Features {
        return Err(CodecError::PayloadKindMismatch {
            version: info.version,
        });
    }
    let (channels, scale) = feature_subheader(bytes)?;
    let count = info.point_count;
    let expected = count * feature_cell_stride(channels);
    let payload = &bytes[WIRE_FEATURE_HEADER_BYTES..];
    if payload.len() < expected {
        return Err(CodecError::Truncated {
            expected: WIRE_FEATURE_HEADER_BYTES + expected,
            actual: bytes.len(),
        });
    }
    verify_crc(bytes, &info)?;
    Ok(decode_feature_cells(
        &payload[..expected],
        count,
        channels,
        scale,
    ))
}

/// Decodes as many *whole* feature cells as a truncated v3 frame
/// contains — the salvage path for partial deliveries, mirroring
/// [`decode_cloud_prefix`]: the fixed per-cell stride means any prefix
/// covering the extended header decodes cleanly up to the last complete
/// cell. Returns the salvaged frame and the cell count the full frame
/// declared.
///
/// # Errors
///
/// Same as [`decode_features`], with [`CodecError::Truncated`] only
/// when even the 15-byte extended header is incomplete.
pub fn decode_features_prefix(bytes: &[u8]) -> Result<(FeatureFrame, usize), CodecError> {
    let info = frame_info(bytes)?;
    if info.kind != FrameKind::Features {
        return Err(CodecError::PayloadKindMismatch {
            version: info.version,
        });
    }
    let (channels, scale) = feature_subheader(bytes)?;
    let declared = info.point_count;
    let stride = feature_cell_stride(channels);
    if info.has_crc
        && bytes.len() >= WIRE_FEATURE_HEADER_BYTES + declared * stride + CRC_TRAILER_BYTES
    {
        verify_crc(bytes, &info)?;
    }
    let payload = &bytes[WIRE_FEATURE_HEADER_BYTES..];
    let available = (payload.len() / stride).min(declared);
    Ok((
        decode_feature_cells(&payload[..available * stride], available, channels, scale),
        declared,
    ))
}

/// One frame produced by [`DeltaEncoder::encode_next`].
#[derive(Debug, Clone)]
pub struct EncodedFrame {
    /// The v2 wire bytes.
    pub bytes: Bytes,
    /// Keyframe or delta.
    pub kind: FrameKind,
    /// Points the frame carries (after delta filtering).
    pub points_sent: usize,
    /// Points of the input cloud.
    pub points_total: usize,
}

impl EncodedFrame {
    /// Wire bytes of this frame over the wire bytes of a v1 full frame
    /// of the same input — the compression the delta mode bought.
    pub fn bytes_ratio(&self) -> f64 {
        self.bytes.len() as f64 / encoded_size(self.points_total) as f64
    }
}

/// Sender-side state machine of the v2 delta mode: every
/// `keyframe_every`-th frame is a keyframe; the frames between carry
/// only points in voxels the previous keyframe left unoccupied.
///
/// Voxel occupancy (not per-point identity) keys the delta because
/// LiDAR returns never repeat exactly frame to frame; a voxel the
/// keyframe already covered contributes no new structure worth air
/// time. The grid used for keying is configurable and defaults to the
/// detector's own voxelization, so "novel" aligns with what detection
/// can actually use.
///
/// # Examples
///
/// ```
/// use cooper_geometry::Vec3;
/// use cooper_pointcloud::codec::{DeltaDecoder, DeltaEncoder, FrameKind};
/// use cooper_pointcloud::{Point, PointCloud, VoxelGridConfig};
///
/// # fn main() -> Result<(), cooper_pointcloud::CodecError> {
/// let mut enc = DeltaEncoder::new(VoxelGridConfig::voxelnet_car(), 3);
/// let mut dec = DeltaDecoder::new();
/// let scan: PointCloud = (0..10)
///     .map(|i| Point::new(Vec3::new(20.0, i as f64 - 5.0, 0.0), 0.5))
///     .collect();
/// let key = enc.encode_next(&scan, false)?;
/// assert_eq!(key.kind, FrameKind::Keyframe);
/// let delta = enc.encode_next(&scan, false)?;
/// assert_eq!(delta.kind, FrameKind::Delta);
/// assert_eq!(delta.points_sent, 0); // nothing moved
/// // The decoder reconstructs the full view from keyframe + delta.
/// assert_eq!(dec.decode_next(&key.bytes)?.len(), 10);
/// assert_eq!(dec.decode_next(&delta.bytes)?.len(), 10);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct DeltaEncoder {
    grid: VoxelGridConfig,
    keyframe_every: u32,
    /// Frames encoded since the last keyframe; `None` until the first
    /// keyframe is sent.
    since_keyframe: Option<u32>,
    reference: HashSet<VoxelCoord>,
}

impl DeltaEncoder {
    /// Creates an encoder that emits a keyframe every `keyframe_every`
    /// frames (1 = every frame is a keyframe).
    ///
    /// # Panics
    ///
    /// Panics when `keyframe_every` is zero or `grid` is invalid.
    pub fn new(grid: VoxelGridConfig, keyframe_every: u32) -> Self {
        assert!(keyframe_every > 0, "keyframe cadence must be positive");
        if let Err(msg) = grid.validate() {
            panic!("invalid delta grid config: {msg}");
        }
        DeltaEncoder {
            grid,
            keyframe_every,
            since_keyframe: None,
            reference: HashSet::new(),
        }
    }

    /// `true` when the cadence calls for the next frame to be a
    /// keyframe (always true before the first keyframe).
    pub fn keyframe_due(&self) -> bool {
        match self.since_keyframe {
            None => true,
            Some(n) => n + 1 >= self.keyframe_every,
        }
    }

    /// The subset of `cloud` a delta frame would carry right now:
    /// points whose voxel the reference keyframe left unoccupied, plus
    /// points outside the grid (those can never be referenced).
    pub fn novel_points(&self, cloud: &PointCloud) -> PointCloud {
        if self.since_keyframe.is_none() {
            return cloud.clone();
        }
        cloud.filtered(|p| match self.grid.coord_of(p.position) {
            Some(coord) => !self.reference.contains(&coord),
            None => true,
        })
    }

    /// Records that a keyframe built from `cloud` was sent: the voxel
    /// occupancy of `cloud` becomes the delta reference.
    pub fn note_keyframe(&mut self, cloud: &PointCloud) {
        self.reference.clear();
        for p in cloud.iter() {
            if let Some(coord) = self.grid.coord_of(p.position) {
                self.reference.insert(coord);
            }
        }
        self.since_keyframe = Some(0);
    }

    /// Records that a delta frame was sent (advances the cadence).
    pub fn note_delta(&mut self) {
        if let Some(n) = self.since_keyframe.as_mut() {
            *n += 1;
        }
    }

    /// Encodes the next frame of the stream: a keyframe when the
    /// cadence demands one, a delta frame otherwise.
    ///
    /// # Errors
    ///
    /// Same as [`encode_cloud`]; on error the cadence state is
    /// unchanged.
    pub fn encode_next(
        &mut self,
        cloud: &PointCloud,
        background_subtracted: bool,
    ) -> Result<EncodedFrame, CodecError> {
        if self.keyframe_due() {
            let bytes = encode_cloud_v2(cloud, FrameKind::Keyframe, background_subtracted)?;
            self.note_keyframe(cloud);
            Ok(EncodedFrame {
                bytes,
                kind: FrameKind::Keyframe,
                points_sent: cloud.len(),
                points_total: cloud.len(),
            })
        } else {
            let novel = self.novel_points(cloud);
            let bytes = encode_cloud_v2(&novel, FrameKind::Delta, background_subtracted)?;
            self.note_delta();
            Ok(EncodedFrame {
                bytes,
                kind: FrameKind::Delta,
                points_sent: novel.len(),
                points_total: cloud.len(),
            })
        }
    }
}

/// Receiver-side counterpart of [`DeltaEncoder`]: caches the last
/// keyframe and merges it back into every delta frame, so the caller
/// always sees a full view.
///
/// The reconstruction is an approximation — voxels the keyframe covered
/// are replayed at their keyframe-time positions — which is exactly the
/// static-background assumption the delta mode encodes: content that
/// did not move since the keyframe is reproduced from it.
///
/// A delta frame arriving before any keyframe (the keyframe was lost,
/// or the receiver joined mid-stream) decodes to just its own points:
/// degraded, never an error.
#[derive(Debug, Clone, Default)]
pub struct DeltaDecoder {
    keyframe: Option<PointCloud>,
}

impl DeltaDecoder {
    /// Creates a decoder with no cached keyframe.
    pub fn new() -> Self {
        DeltaDecoder::default()
    }

    /// Decodes the next frame of a stream, reconstructing delta frames
    /// against the cached keyframe. v1 frames and v2 keyframes refresh
    /// the cache.
    ///
    /// # Errors
    ///
    /// Same as [`decode_cloud`].
    pub fn decode_next(&mut self, bytes: &[u8]) -> Result<PointCloud, CodecError> {
        let info = frame_info(bytes)?;
        let cloud = decode_cloud(bytes)?;
        match info.kind {
            FrameKind::Keyframe => {
                self.keyframe = Some(cloud.clone());
                Ok(cloud)
            }
            FrameKind::Delta => Ok(match &self.keyframe {
                Some(key) => key.merged(&cloud),
                None => cloud,
            }),
            // decode_cloud above already rejected feature frames.
            FrameKind::Features => Err(CodecError::PayloadKindMismatch {
                version: info.version,
            }),
        }
    }

    /// The cached keyframe, if any arrived yet.
    pub fn keyframe(&self) -> Option<&PointCloud> {
        self.keyframe.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_cloud(n: usize) -> PointCloud {
        (0..n)
            .map(|i| {
                let f = i as f64;
                Point::new(
                    Vec3::new(f * 0.37 - 30.0, f * -0.11 + 5.0, (f * 0.05) % 3.0),
                    (i % 256) as f32 / 255.0,
                )
            })
            .collect()
    }

    #[test]
    fn round_trip_within_quantization() {
        let cloud = sample_cloud(500);
        let bytes = encode_cloud(&cloud).unwrap();
        assert_eq!(bytes.len(), encoded_size(500));
        let decoded = decode_cloud(&bytes).unwrap();
        assert_eq!(decoded.len(), cloud.len());
        for (a, b) in cloud.iter().zip(decoded.iter()) {
            assert!((a.position - b.position).norm() < 0.01, "{} vs {}", a, b);
            assert!((a.reflectance - b.reflectance).abs() < 1.0 / 255.0 + 1e-6);
        }
    }

    #[test]
    fn empty_cloud_round_trip() {
        let bytes = encode_cloud(&PointCloud::new()).unwrap();
        assert_eq!(bytes.len(), WIRE_HEADER_BYTES);
        assert!(decode_cloud(&bytes).unwrap().is_empty());
    }

    #[test]
    fn scan_fits_paper_budget() {
        // A ~30k-point VLP-16 scan must encode to roughly 200 KB (§II-C).
        let size = encoded_size(30_000);
        assert!(size < 250_000, "scan too large: {size}");
        assert!(size > 150_000, "scan suspiciously small: {size}");
    }

    #[test]
    fn out_of_range_coordinate_rejected() {
        let mut cloud = sample_cloud(3);
        cloud.push(Point::new(Vec3::new(400.0, 0.0, 0.0), 0.5));
        match encode_cloud(&cloud) {
            Err(CodecError::CoordinateOutOfRange { index }) => assert_eq!(index, 3),
            other => panic!("expected out-of-range error, got {other:?}"),
        }
    }

    #[test]
    fn truncated_header_rejected() {
        let err = decode_cloud(&[1, 2, 3]).unwrap_err();
        assert!(matches!(err, CodecError::Truncated { .. }));
    }

    #[test]
    fn truncated_payload_rejected() {
        let cloud = sample_cloud(10);
        let bytes = encode_cloud(&cloud).unwrap();
        let cut = &bytes[..bytes.len() - 3];
        match decode_cloud(cut) {
            Err(CodecError::Truncated { expected, actual }) => {
                assert_eq!(expected, bytes.len());
                assert_eq!(actual, cut.len());
            }
            other => panic!("expected truncation error, got {other:?}"),
        }
    }

    #[test]
    fn bad_magic_rejected() {
        let cloud = sample_cloud(1);
        let mut bytes = encode_cloud(&cloud).unwrap().to_vec();
        bytes[0] = b'X';
        assert_eq!(decode_cloud(&bytes).unwrap_err(), CodecError::BadMagic);
    }

    #[test]
    fn wrong_version_rejected() {
        let cloud = sample_cloud(1);
        let mut bytes = encode_cloud(&cloud).unwrap().to_vec();
        bytes[4] = 99;
        assert_eq!(
            decode_cloud(&bytes).unwrap_err(),
            CodecError::UnsupportedVersion(99)
        );
    }

    #[test]
    fn errors_display_and_are_std_errors() {
        let errs: Vec<Box<dyn Error>> = vec![
            Box::new(CodecError::BadMagic),
            Box::new(CodecError::UnsupportedVersion(2)),
            Box::new(CodecError::Truncated {
                expected: 10,
                actual: 5,
            }),
            Box::new(CodecError::CoordinateOutOfRange { index: 7 }),
            Box::new(CodecError::PayloadKindMismatch { version: 3 }),
            Box::new(CodecError::ChecksumMismatch {
                expected: 0xDEAD_BEEF,
                actual: 0,
            }),
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn prefix_decode_recovers_whole_points() {
        let cloud = sample_cloud(10);
        let bytes = encode_cloud(&cloud).unwrap();
        // Cut mid-point: 6 whole points plus 3 bytes of the 7th.
        let cut = &bytes[..WIRE_HEADER_BYTES + 6 * WIRE_BYTES_PER_POINT + 3];
        let (prefix, declared) = decode_cloud_prefix(cut).unwrap();
        assert_eq!(declared, 10);
        assert_eq!(prefix.len(), 6);
        for (a, b) in cloud.iter().take(6).zip(prefix.iter()) {
            assert!((a.position - b.position).norm() < 0.01);
        }
    }

    #[test]
    fn prefix_decode_of_full_frame_is_lossless() {
        let cloud = sample_cloud(5);
        let bytes = encode_cloud(&cloud).unwrap();
        let (prefix, declared) = decode_cloud_prefix(&bytes).unwrap();
        assert_eq!((prefix.len(), declared), (5, 5));
    }

    #[test]
    fn prefix_decode_still_checks_header() {
        assert!(matches!(
            decode_cloud_prefix(&[0u8; 4]).unwrap_err(),
            CodecError::Truncated { .. }
        ));
        let mut bytes = encode_cloud(&sample_cloud(2)).unwrap().to_vec();
        bytes[0] = b'X';
        assert_eq!(
            decode_cloud_prefix(&bytes).unwrap_err(),
            CodecError::BadMagic
        );
    }

    #[test]
    fn trailing_bytes_ignored() {
        // Frames may arrive padded (e.g. out of a fixed-size transport
        // packet); the declared count governs.
        let cloud = sample_cloud(4);
        let mut bytes = encode_cloud(&cloud).unwrap().to_vec();
        bytes.extend_from_slice(&[0u8; 16]);
        assert_eq!(decode_cloud(&bytes).unwrap().len(), 4);
    }

    #[test]
    fn boundary_coordinates_encode() {
        // 327.672 rounds to 32767 (i16::MAX) and −327.68 is exactly
        // i16::MIN; both must encode. The old raw-value check
        // (|x| > 327.67) rejected each asymmetrically.
        let cloud: PointCloud = [327.672, 327.67, -327.68, -327.675]
            .iter()
            .map(|&x| Point::new(Vec3::new(x, 0.0, 0.0), 0.5))
            .collect();
        let decoded = decode_cloud(&encode_cloud(&cloud).unwrap()).unwrap();
        assert_eq!(decoded.as_slice()[0].position.x, 327.67);
        assert_eq!(decoded.as_slice()[2].position.x, -327.68);
        // Just past the rounding boundary stays rejected.
        let over: PointCloud = [327.676, -327.686]
            .iter()
            .map(|&x| Point::new(Vec3::new(0.0, x, 0.0), 0.5))
            .collect();
        assert!(matches!(
            encode_cloud(&over),
            Err(CodecError::CoordinateOutOfRange { index: 0 })
        ));
    }

    #[test]
    fn reflectance_clamped_explicitly() {
        let cloud: PointCloud = [2.5f32, -1.0, f32::NAN, f32::INFINITY, f32::NEG_INFINITY]
            .iter()
            .map(|&r| Point::new(Vec3::new(1.0, 2.0, 0.0), r))
            .collect();
        let decoded = decode_cloud(&encode_cloud(&cloud).unwrap()).unwrap();
        let r: Vec<f32> = decoded.iter().map(|p| p.reflectance).collect();
        assert_eq!(r[0], 1.0); // clamped high
        assert_eq!(r[1], 0.0); // clamped low
        assert_eq!(r[2], 0.0); // NaN → 0, by decision not by cast accident
        assert_eq!(r[3], 1.0);
        assert_eq!(r[4], 0.0);
    }

    #[test]
    fn v2_round_trip_and_frame_info() {
        let cloud = sample_cloud(20);
        let bytes = encode_cloud_v2(&cloud, FrameKind::Delta, true).unwrap();
        let info = frame_info(&bytes).unwrap();
        assert_eq!(info.version, 2);
        assert_eq!(info.kind, FrameKind::Delta);
        assert!(info.background_subtracted);
        assert_eq!(info.point_count, 20);
        assert_eq!(decode_cloud(&bytes).unwrap().len(), 20);

        let key = encode_cloud_v2(&cloud, FrameKind::Keyframe, false).unwrap();
        let info = frame_info(&key).unwrap();
        assert_eq!(info.kind, FrameKind::Keyframe);
        assert!(!info.background_subtracted);
    }

    #[test]
    fn v1_frames_report_keyframe_info() {
        let bytes = encode_cloud(&sample_cloud(3)).unwrap();
        let info = frame_info(&bytes).unwrap();
        assert_eq!(info.version, 1);
        assert_eq!(info.kind, FrameKind::Keyframe);
        assert!(!info.background_subtracted);
    }

    #[test]
    fn v2_prefix_decode_salvages_truncated_frames() {
        let cloud = sample_cloud(12);
        let bytes = encode_cloud_v2(&cloud, FrameKind::Delta, true).unwrap();
        let cut = &bytes[..WIRE_HEADER_BYTES + 7 * WIRE_BYTES_PER_POINT + 2];
        let (prefix, declared) = decode_cloud_prefix(cut).unwrap();
        assert_eq!(declared, 12);
        assert_eq!(prefix.len(), 7);
        // The salvaged prefix still carries its v2 header semantics.
        assert_eq!(frame_info(cut).unwrap().kind, FrameKind::Delta);
    }

    #[test]
    fn version_three_is_a_feature_frame_to_point_decoders() {
        // A v3-stamped frame parses as a feature frame at the header
        // level, but every point decoder must reject it cleanly rather
        // than misread feature bytes as point strides.
        let mut bytes = encode_cloud(&sample_cloud(2)).unwrap().to_vec();
        bytes[4] = 3;
        let info = frame_info(&bytes).unwrap();
        assert_eq!(info.version, 3);
        assert_eq!(info.kind, FrameKind::Features);
        assert_eq!(
            decode_cloud(&bytes).unwrap_err(),
            CodecError::PayloadKindMismatch { version: 3 }
        );
        assert_eq!(
            decode_cloud_prefix(&bytes).unwrap_err(),
            CodecError::PayloadKindMismatch { version: 3 }
        );
        assert_eq!(
            DeltaDecoder::new().decode_next(&bytes).unwrap_err(),
            CodecError::PayloadKindMismatch { version: 3 }
        );
    }

    #[test]
    fn version_four_still_unsupported() {
        let mut bytes = encode_cloud(&sample_cloud(2)).unwrap().to_vec();
        bytes[4] = 4;
        assert_eq!(
            frame_info(&bytes).unwrap_err(),
            CodecError::UnsupportedVersion(4)
        );
    }

    fn sample_features(cells: usize, channels: usize, seed: u32) -> FeatureFrame {
        // Deterministic pseudo-random features spanning positive,
        // negative and zero values.
        let mut state = seed.wrapping_mul(2_654_435_761).wrapping_add(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 17;
            state ^= state << 5;
            (state as f32 / u32::MAX as f32) * 8.0 - 4.0
        };
        let cell_list: Vec<(i32, i32)> = (0..cells as i32).map(|i| (i % 41 - 20, i / 41)).collect();
        let mut cell_list = cell_list;
        cell_list.sort_unstable();
        cell_list.dedup();
        let features = (0..cell_list.len() * channels).map(|_| next()).collect();
        FeatureFrame::new(channels, cell_list, features)
    }

    #[test]
    fn feature_round_trip_within_quantization_bound() {
        // Property: for many frame shapes and value distributions, every
        // value survives the wire within scale/254 of its input.
        for (cells, channels, seed) in [(1, 1, 7), (40, 11, 1), (300, 5, 99), (17, 32, 3)] {
            let frame = sample_features(cells, channels, seed);
            let bytes = encode_features(&frame).unwrap();
            assert_eq!(bytes.len(), encoded_feature_size(frame.len(), channels));
            let decoded = decode_features(&bytes).unwrap();
            assert_eq!(decoded.cells(), frame.cells());
            assert_eq!(decoded.channels(), channels);
            let bound = frame.quantization_scale() / 254.0 + 1e-6;
            for (a, b) in frame.features().iter().zip(decoded.features()) {
                assert!((a - b).abs() <= bound, "{a} vs {b} exceeds {bound}");
            }
        }
    }

    #[test]
    fn feature_frame_info_reports_cell_count() {
        let frame = sample_features(25, 4, 11);
        let bytes = encode_features(&frame).unwrap();
        let info = frame_info(&bytes).unwrap();
        assert_eq!(info.version, 3);
        assert_eq!(info.kind, FrameKind::Features);
        assert!(!info.background_subtracted);
        assert_eq!(info.point_count, frame.len());
    }

    #[test]
    fn all_zero_feature_frame_round_trips_exactly() {
        let cells = vec![(-3, 1), (0, 0), (5, -2)];
        let mut cells = cells;
        cells.sort_unstable();
        let frame = FeatureFrame::new(2, cells, vec![0.0; 6]);
        assert_eq!(frame.quantization_scale(), 0.0);
        let decoded = decode_features(&encode_features(&frame).unwrap()).unwrap();
        assert!(decoded.features().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn non_finite_features_encode_as_zero() {
        let frame = FeatureFrame::new(3, vec![(0, 0)], vec![f32::NAN, f32::INFINITY, 2.0]);
        let decoded = decode_features(&encode_features(&frame).unwrap()).unwrap();
        assert_eq!(decoded.feature_at(0)[0], 0.0);
        assert_eq!(decoded.feature_at(0)[1], 0.0);
        assert!((decoded.feature_at(0)[2] - 2.0).abs() < 2.0 / 254.0 + 1e-6);
    }

    #[test]
    fn feature_prefix_decode_recovers_whole_cells() {
        let frame = sample_features(30, 6, 5);
        let bytes = encode_features(&frame).unwrap();
        let stride = feature_cell_stride(6);
        // Cut mid-cell: 12 whole cells plus 3 bytes of the 13th.
        let cut = &bytes[..WIRE_FEATURE_HEADER_BYTES + 12 * stride + 3];
        let (prefix, declared) = decode_features_prefix(cut).unwrap();
        assert_eq!(declared, frame.len());
        assert_eq!(prefix.len(), 12);
        assert_eq!(prefix.cells(), &frame.cells()[..12]);
    }

    #[test]
    fn feature_decoder_rejects_point_frames_and_junk() {
        let points = encode_cloud(&sample_cloud(3)).unwrap();
        assert_eq!(
            decode_features(&points).unwrap_err(),
            CodecError::PayloadKindMismatch { version: 1 }
        );
        let v2 = encode_cloud_v2(&sample_cloud(3), FrameKind::Delta, true).unwrap();
        assert_eq!(
            decode_features_prefix(&v2).unwrap_err(),
            CodecError::PayloadKindMismatch { version: 2 }
        );
        // A v3 header cut before the extended subheader is truncated.
        let frame = sample_features(4, 2, 1);
        let bytes = encode_features(&frame).unwrap();
        assert!(matches!(
            decode_features(&bytes[..WIRE_HEADER_BYTES + 2]).unwrap_err(),
            CodecError::Truncated { .. }
        ));
        // Declared cells beyond the payload are truncated for the full
        // decoder, salvage for the prefix decoder.
        let cut = &bytes[..bytes.len() - 1];
        assert!(matches!(
            decode_features(cut).unwrap_err(),
            CodecError::Truncated { .. }
        ));
        assert_eq!(decode_features_prefix(cut).unwrap().0.len(), 3);
    }

    #[test]
    fn feature_cell_out_of_i16_range_rejected() {
        let frame = FeatureFrame::new(1, vec![(40_000, 0)], vec![1.0]);
        assert_eq!(
            encode_features(&frame).unwrap_err(),
            CodecError::CoordinateOutOfRange { index: 0 }
        );
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn feature_frame_rejects_unsorted_cells() {
        let _ = FeatureFrame::new(1, vec![(1, 0), (0, 0)], vec![1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "feature frames are encoded with encode_features")]
    fn point_encoder_rejects_feature_kind() {
        let _ = encode_cloud_v2(&sample_cloud(1), FrameKind::Features, false);
    }

    #[test]
    fn delta_encoder_follows_cadence() {
        let mut enc = DeltaEncoder::new(VoxelGridConfig::voxelnet_car(), 3);
        let cloud = sample_cloud(50);
        let kinds: Vec<FrameKind> = (0..7)
            .map(|_| enc.encode_next(&cloud, false).unwrap().kind)
            .collect();
        use FrameKind::{Delta, Keyframe};
        assert_eq!(
            kinds,
            vec![Keyframe, Delta, Delta, Keyframe, Delta, Delta, Keyframe]
        );
    }

    #[test]
    fn delta_frames_carry_only_novel_voxels() {
        let mut enc = DeltaEncoder::new(VoxelGridConfig::voxelnet_car(), 4);
        let stat: PointCloud = (0..30)
            .map(|i| Point::new(Vec3::new(10.0 + (i % 5) as f64, 3.0, 0.5), 0.4))
            .collect();
        let key = enc.encode_next(&stat, false).unwrap();
        assert_eq!(key.points_sent, 30);

        // Same scene plus one new object: the delta sends only the object.
        let mut moved = stat.clone();
        moved.push(Point::new(Vec3::new(25.0, -4.0, 0.5), 0.9));
        let delta = enc.encode_next(&moved, false).unwrap();
        assert_eq!(delta.kind, FrameKind::Delta);
        assert_eq!(delta.points_sent, 1);
        assert!(delta.bytes_ratio() < 0.2);

        // The decoder reconstructs all 31 points.
        let mut dec = DeltaDecoder::new();
        dec.decode_next(&key.bytes).unwrap();
        assert_eq!(dec.decode_next(&delta.bytes).unwrap().len(), 31);
    }

    #[test]
    fn delta_decoder_degrades_without_keyframe() {
        let mut enc = DeltaEncoder::new(VoxelGridConfig::voxelnet_car(), 2);
        let cloud = sample_cloud(40);
        let _lost_keyframe = enc.encode_next(&cloud, false).unwrap();
        let delta = enc.encode_next(&cloud, false).unwrap();
        let mut dec = DeltaDecoder::new();
        // No keyframe cached: the delta decodes to its own points only.
        let got = dec.decode_next(&delta.bytes).unwrap();
        assert_eq!(got.len(), delta.points_sent);
        assert!(dec.keyframe().is_none());
    }

    #[test]
    fn crc32_matches_reference_vector() {
        // The canonical CRC-32/ISO-HDLC check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn crc_framed_clouds_round_trip_all_versions() {
        let cloud = sample_cloud(20);
        for bytes in [
            encode_cloud(&cloud).unwrap(),
            encode_cloud_v2(&cloud, FrameKind::Delta, true).unwrap(),
        ] {
            let framed = append_crc(&bytes).unwrap();
            assert_eq!(framed.len(), bytes.len() + CRC_TRAILER_BYTES);
            let info = frame_info(&framed).unwrap();
            assert!(info.has_crc);
            assert_eq!(decode_cloud(&framed).unwrap().len(), 20);
            // The original header semantics survive the flag bit.
            assert_eq!(info.point_count, 20);
        }
        let frame = sample_features(12, 4, 2);
        let framed = append_crc(&encode_features(&frame).unwrap()).unwrap();
        assert!(frame_info(&framed).unwrap().has_crc);
        assert_eq!(decode_features(&framed).unwrap().cells(), frame.cells());
    }

    #[test]
    fn append_crc_is_idempotent() {
        let bytes = encode_cloud(&sample_cloud(5)).unwrap();
        let once = append_crc(&bytes).unwrap();
        let twice = append_crc(&once).unwrap();
        assert_eq!(&once[..], &twice[..]);
    }

    #[test]
    fn corrupted_crc_frame_rejected() {
        let framed = append_crc(&encode_cloud(&sample_cloud(8)).unwrap())
            .unwrap()
            .to_vec();
        for flip_at in [WIRE_HEADER_BYTES + 3, framed.len() - 1] {
            let mut bad = framed.clone();
            bad[flip_at] ^= 0x40;
            assert!(
                matches!(
                    decode_cloud(&bad).unwrap_err(),
                    CodecError::ChecksumMismatch { .. }
                ),
                "flip at {flip_at} must fail the CRC"
            );
        }
        // An unflagged frame with the same payload flip decodes fine —
        // the corruption is silent without the trailer.
        let mut silent = encode_cloud(&sample_cloud(8)).unwrap().to_vec();
        silent[WIRE_HEADER_BYTES + 3] ^= 0x40;
        assert!(decode_cloud(&silent).is_ok());
    }

    #[test]
    fn corrupted_feature_crc_rejected() {
        let frame = sample_features(10, 3, 7);
        let mut framed = append_crc(&encode_features(&frame).unwrap())
            .unwrap()
            .to_vec();
        framed[WIRE_FEATURE_HEADER_BYTES + 1] ^= 0x08;
        assert!(matches!(
            decode_features(&framed).unwrap_err(),
            CodecError::ChecksumMismatch { .. }
        ));
    }

    #[test]
    fn crc_frame_with_missing_trailer_is_truncated() {
        let framed = append_crc(&encode_cloud(&sample_cloud(4)).unwrap()).unwrap();
        let cut = &framed[..framed.len() - 2];
        assert!(matches!(
            decode_cloud(cut).unwrap_err(),
            CodecError::Truncated { .. }
        ));
    }

    #[test]
    fn crc_prefix_salvage_skips_unverifiable_cuts_and_checks_full_frames() {
        let framed = append_crc(&encode_cloud(&sample_cloud(10)).unwrap()).unwrap();
        // A genuine prefix has no trailer to verify: whole points salvage.
        let cut = &framed[..WIRE_HEADER_BYTES + 6 * WIRE_BYTES_PER_POINT + 3];
        let (prefix, declared) = decode_cloud_prefix(cut).unwrap();
        assert_eq!((prefix.len(), declared), (6, 10));
        // The complete frame verifies — and a payload flip is caught
        // even on the salvage path (the trailer bytes are never decoded
        // as points either way).
        assert_eq!(decode_cloud_prefix(&framed).unwrap().0.len(), 10);
        let mut bad = framed.to_vec();
        bad[WIRE_HEADER_BYTES] ^= 0x01;
        assert!(matches!(
            decode_cloud_prefix(&bad).unwrap_err(),
            CodecError::ChecksumMismatch { .. }
        ));
        // Feature frames mirror the same contract.
        let f = append_crc(&encode_features(&sample_features(8, 2, 3)).unwrap()).unwrap();
        let stride = feature_cell_stride(2);
        let fcut = &f[..WIRE_FEATURE_HEADER_BYTES + 4 * stride + 1];
        assert_eq!(decode_features_prefix(fcut).unwrap().0.len(), 4);
        let mut fbad = f.to_vec();
        fbad[WIRE_FEATURE_HEADER_BYTES] ^= 0x10;
        assert!(matches!(
            decode_features_prefix(&fbad).unwrap_err(),
            CodecError::ChecksumMismatch { .. }
        ));
    }

    #[test]
    fn append_crc_rejects_short_frames() {
        let bytes = encode_cloud(&sample_cloud(4)).unwrap();
        assert!(matches!(
            append_crc(&bytes[..bytes.len() - 1]).unwrap_err(),
            CodecError::Truncated { .. }
        ));
        assert_eq!(append_crc(&[0u8; 3]).unwrap_err(), {
            CodecError::Truncated {
                expected: WIRE_HEADER_BYTES,
                actual: 3,
            }
        });
    }

    #[test]
    fn delta_encoder_points_outside_grid_always_sent() {
        let mut enc = DeltaEncoder::new(VoxelGridConfig::voxelnet_car(), 2);
        // voxelnet_car's extent does not reach x = −60.
        let outside: PointCloud =
            std::iter::once(Point::new(Vec3::new(-60.0, 0.0, 0.0), 0.5)).collect();
        enc.encode_next(&outside, false).unwrap();
        let delta = enc.encode_next(&outside, false).unwrap();
        assert_eq!(delta.kind, FrameKind::Delta);
        assert_eq!(delta.points_sent, 1);
    }
}
