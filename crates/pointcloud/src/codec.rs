//! Compact wire format for exchanged point clouds.
//!
//! §II-C of the paper: "By only extracting positional coordinates and
//! reflection value, point clouds can be compressed into 200 KB per
//! scan." This codec realizes that budget: each point is quantized to
//! centimetre-resolution `i16` coordinates plus one reflectance byte —
//! [`WIRE_BYTES_PER_POINT`] = 7 bytes/point, so a ~30 k-point VLP-16 scan
//! encodes to ~210 KB (≈ 1.7 Mbit, matching the ≈1.8 Mbit/frame of
//! Figure 12).

use std::error::Error;
use std::fmt;

use bytes::{Buf, BufMut, Bytes, BytesMut};
use cooper_geometry::Vec3;

use crate::{Point, PointCloud};

/// Bytes used per encoded point: three `i16` centimetre coordinates plus
/// one reflectance byte.
pub const WIRE_BYTES_PER_POINT: usize = 7;

/// Bytes used by the frame header (magic, version, reserved, point count).
pub const WIRE_HEADER_BYTES: usize = 10;

const MAGIC: &[u8; 4] = b"CPPC";
const VERSION: u8 = 1;
/// Quantization step: 1 cm, giving a ±327.67 m representable range —
/// beyond any LiDAR's reach.
const SCALE: f64 = 100.0;
const COORD_LIMIT_M: f64 = i16::MAX as f64 / SCALE;

/// Errors produced while encoding or decoding wire frames.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// A coordinate exceeded the representable ±327.67 m range.
    CoordinateOutOfRange {
        /// Index of the offending point in the cloud.
        index: usize,
    },
    /// The buffer ended before the declared payload was complete.
    Truncated {
        /// Bytes expected.
        expected: usize,
        /// Bytes available.
        actual: usize,
    },
    /// The frame did not start with the `CPPC` magic.
    BadMagic,
    /// The frame version is not supported by this decoder.
    UnsupportedVersion(u8),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::CoordinateOutOfRange { index } => {
                write!(f, "point {index} exceeds the representable ±327.67 m range")
            }
            CodecError::Truncated { expected, actual } => {
                write!(
                    f,
                    "frame truncated: expected {expected} bytes, got {actual}"
                )
            }
            CodecError::BadMagic => write!(f, "frame does not start with CPPC magic"),
            CodecError::UnsupportedVersion(v) => write!(f, "unsupported frame version {v}"),
        }
    }
}

impl Error for CodecError {}

/// Encodes a cloud into the wire format.
///
/// # Errors
///
/// Returns [`CodecError::CoordinateOutOfRange`] when any coordinate falls
/// outside ±327.67 m. Callers exchanging sensor-frame clouds never hit
/// this; clouds already moved into a distant world frame must be
/// re-centered first.
///
/// # Examples
///
/// ```
/// use cooper_geometry::Vec3;
/// use cooper_pointcloud::{decode_cloud, encode_cloud, Point, PointCloud};
///
/// # fn main() -> Result<(), cooper_pointcloud::CodecError> {
/// let mut cloud = PointCloud::new();
/// cloud.push(Point::new(Vec3::new(12.34, -5.67, 0.89), 0.5));
/// let bytes = encode_cloud(&cloud)?;
/// let decoded = decode_cloud(&bytes)?;
/// assert_eq!(decoded.len(), 1);
/// # Ok(())
/// # }
/// ```
pub fn encode_cloud(cloud: &PointCloud) -> Result<Bytes, CodecError> {
    let mut buf = BytesMut::with_capacity(WIRE_HEADER_BYTES + cloud.len() * WIRE_BYTES_PER_POINT);
    buf.put_slice(MAGIC);
    buf.put_u8(VERSION);
    buf.put_u8(0); // reserved flags
    buf.put_u32(cloud.len() as u32);
    for (index, point) in cloud.iter().enumerate() {
        let p = point.position;
        if p.x.abs() > COORD_LIMIT_M || p.y.abs() > COORD_LIMIT_M || p.z.abs() > COORD_LIMIT_M {
            return Err(CodecError::CoordinateOutOfRange { index });
        }
        buf.put_i16((p.x * SCALE).round() as i16);
        buf.put_i16((p.y * SCALE).round() as i16);
        buf.put_i16((p.z * SCALE).round() as i16);
        buf.put_u8((point.reflectance * 255.0).round() as u8);
    }
    Ok(buf.freeze())
}

/// Decodes a wire frame back into a point cloud.
///
/// Positions are recovered to within 5 mm (half the quantization step),
/// reflectance to within 1/510.
///
/// # Errors
///
/// Returns [`CodecError::BadMagic`], [`CodecError::UnsupportedVersion`] or
/// [`CodecError::Truncated`] for malformed input.
pub fn decode_cloud(mut bytes: &[u8]) -> Result<PointCloud, CodecError> {
    if bytes.len() < WIRE_HEADER_BYTES {
        return Err(CodecError::Truncated {
            expected: WIRE_HEADER_BYTES,
            actual: bytes.len(),
        });
    }
    let mut magic = [0u8; 4];
    bytes.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(CodecError::BadMagic);
    }
    let version = bytes.get_u8();
    if version != VERSION {
        return Err(CodecError::UnsupportedVersion(version));
    }
    let _flags = bytes.get_u8();
    let count = bytes.get_u32() as usize;
    let expected = count * WIRE_BYTES_PER_POINT;
    if bytes.remaining() < expected {
        return Err(CodecError::Truncated {
            expected: WIRE_HEADER_BYTES + expected,
            actual: WIRE_HEADER_BYTES + bytes.remaining(),
        });
    }
    let mut cloud = PointCloud::with_capacity(count);
    for _ in 0..count {
        let x = f64::from(bytes.get_i16()) / SCALE;
        let y = f64::from(bytes.get_i16()) / SCALE;
        let z = f64::from(bytes.get_i16()) / SCALE;
        let reflectance = f32::from(bytes.get_u8()) / 255.0;
        cloud.push(Point::new(Vec3::new(x, y, z), reflectance));
    }
    Ok(cloud)
}

/// Size in bytes of the wire frame for a cloud of `n` points.
pub fn encoded_size(n: usize) -> usize {
    WIRE_HEADER_BYTES + n * WIRE_BYTES_PER_POINT
}

/// Decodes as many *whole* points as a truncated wire frame contains —
/// the salvage path for partial deliveries, where only a leading
/// portion of the frame arrived before the transport deadline expired.
///
/// Because every point occupies a fixed [`WIRE_BYTES_PER_POINT`] slot,
/// any prefix that covers the header decodes cleanly up to the last
/// complete point; a trailing half-point is discarded. Returns the
/// decoded cloud and the point count the full frame declared, so the
/// caller can report the salvaged fraction.
///
/// # Errors
///
/// Returns [`CodecError::BadMagic`], [`CodecError::UnsupportedVersion`]
/// or — only when even the header is incomplete —
/// [`CodecError::Truncated`].
pub fn decode_cloud_prefix(mut bytes: &[u8]) -> Result<(PointCloud, usize), CodecError> {
    if bytes.len() < WIRE_HEADER_BYTES {
        return Err(CodecError::Truncated {
            expected: WIRE_HEADER_BYTES,
            actual: bytes.len(),
        });
    }
    let mut magic = [0u8; 4];
    bytes.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(CodecError::BadMagic);
    }
    let version = bytes.get_u8();
    if version != VERSION {
        return Err(CodecError::UnsupportedVersion(version));
    }
    let _flags = bytes.get_u8();
    let declared = bytes.get_u32() as usize;
    let available = (bytes.remaining() / WIRE_BYTES_PER_POINT).min(declared);
    let mut cloud = PointCloud::with_capacity(available);
    for _ in 0..available {
        let x = f64::from(bytes.get_i16()) / SCALE;
        let y = f64::from(bytes.get_i16()) / SCALE;
        let z = f64::from(bytes.get_i16()) / SCALE;
        let reflectance = f32::from(bytes.get_u8()) / 255.0;
        cloud.push(Point::new(Vec3::new(x, y, z), reflectance));
    }
    Ok((cloud, declared))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_cloud(n: usize) -> PointCloud {
        (0..n)
            .map(|i| {
                let f = i as f64;
                Point::new(
                    Vec3::new(f * 0.37 - 30.0, f * -0.11 + 5.0, (f * 0.05) % 3.0),
                    (i % 256) as f32 / 255.0,
                )
            })
            .collect()
    }

    #[test]
    fn round_trip_within_quantization() {
        let cloud = sample_cloud(500);
        let bytes = encode_cloud(&cloud).unwrap();
        assert_eq!(bytes.len(), encoded_size(500));
        let decoded = decode_cloud(&bytes).unwrap();
        assert_eq!(decoded.len(), cloud.len());
        for (a, b) in cloud.iter().zip(decoded.iter()) {
            assert!((a.position - b.position).norm() < 0.01, "{} vs {}", a, b);
            assert!((a.reflectance - b.reflectance).abs() < 1.0 / 255.0 + 1e-6);
        }
    }

    #[test]
    fn empty_cloud_round_trip() {
        let bytes = encode_cloud(&PointCloud::new()).unwrap();
        assert_eq!(bytes.len(), WIRE_HEADER_BYTES);
        assert!(decode_cloud(&bytes).unwrap().is_empty());
    }

    #[test]
    fn scan_fits_paper_budget() {
        // A ~30k-point VLP-16 scan must encode to roughly 200 KB (§II-C).
        let size = encoded_size(30_000);
        assert!(size < 250_000, "scan too large: {size}");
        assert!(size > 150_000, "scan suspiciously small: {size}");
    }

    #[test]
    fn out_of_range_coordinate_rejected() {
        let mut cloud = sample_cloud(3);
        cloud.push(Point::new(Vec3::new(400.0, 0.0, 0.0), 0.5));
        match encode_cloud(&cloud) {
            Err(CodecError::CoordinateOutOfRange { index }) => assert_eq!(index, 3),
            other => panic!("expected out-of-range error, got {other:?}"),
        }
    }

    #[test]
    fn truncated_header_rejected() {
        let err = decode_cloud(&[1, 2, 3]).unwrap_err();
        assert!(matches!(err, CodecError::Truncated { .. }));
    }

    #[test]
    fn truncated_payload_rejected() {
        let cloud = sample_cloud(10);
        let bytes = encode_cloud(&cloud).unwrap();
        let cut = &bytes[..bytes.len() - 3];
        match decode_cloud(cut) {
            Err(CodecError::Truncated { expected, actual }) => {
                assert_eq!(expected, bytes.len());
                assert_eq!(actual, cut.len());
            }
            other => panic!("expected truncation error, got {other:?}"),
        }
    }

    #[test]
    fn bad_magic_rejected() {
        let cloud = sample_cloud(1);
        let mut bytes = encode_cloud(&cloud).unwrap().to_vec();
        bytes[0] = b'X';
        assert_eq!(decode_cloud(&bytes).unwrap_err(), CodecError::BadMagic);
    }

    #[test]
    fn wrong_version_rejected() {
        let cloud = sample_cloud(1);
        let mut bytes = encode_cloud(&cloud).unwrap().to_vec();
        bytes[4] = 99;
        assert_eq!(
            decode_cloud(&bytes).unwrap_err(),
            CodecError::UnsupportedVersion(99)
        );
    }

    #[test]
    fn errors_display_and_are_std_errors() {
        let errs: Vec<Box<dyn Error>> = vec![
            Box::new(CodecError::BadMagic),
            Box::new(CodecError::UnsupportedVersion(2)),
            Box::new(CodecError::Truncated {
                expected: 10,
                actual: 5,
            }),
            Box::new(CodecError::CoordinateOutOfRange { index: 7 }),
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn prefix_decode_recovers_whole_points() {
        let cloud = sample_cloud(10);
        let bytes = encode_cloud(&cloud).unwrap();
        // Cut mid-point: 6 whole points plus 3 bytes of the 7th.
        let cut = &bytes[..WIRE_HEADER_BYTES + 6 * WIRE_BYTES_PER_POINT + 3];
        let (prefix, declared) = decode_cloud_prefix(cut).unwrap();
        assert_eq!(declared, 10);
        assert_eq!(prefix.len(), 6);
        for (a, b) in cloud.iter().take(6).zip(prefix.iter()) {
            assert!((a.position - b.position).norm() < 0.01);
        }
    }

    #[test]
    fn prefix_decode_of_full_frame_is_lossless() {
        let cloud = sample_cloud(5);
        let bytes = encode_cloud(&cloud).unwrap();
        let (prefix, declared) = decode_cloud_prefix(&bytes).unwrap();
        assert_eq!((prefix.len(), declared), (5, 5));
    }

    #[test]
    fn prefix_decode_still_checks_header() {
        assert!(matches!(
            decode_cloud_prefix(&[0u8; 4]).unwrap_err(),
            CodecError::Truncated { .. }
        ));
        let mut bytes = encode_cloud(&sample_cloud(2)).unwrap().to_vec();
        bytes[0] = b'X';
        assert_eq!(
            decode_cloud_prefix(&bytes).unwrap_err(),
            CodecError::BadMagic
        );
    }

    #[test]
    fn trailing_bytes_ignored() {
        // Frames may arrive padded (e.g. out of a fixed-size transport
        // packet); the declared count governs.
        let cloud = sample_cloud(4);
        let mut bytes = encode_cloud(&cloud).unwrap().to_vec();
        bytes.extend_from_slice(&[0u8; 16]);
        assert_eq!(decode_cloud(&bytes).unwrap().len(), 4);
    }
}
