//! Axis-aligned and oriented 3-D bounding boxes with IoU computation.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{normalize_angle, Vec3};

/// An axis-aligned 3-D box described by its minimum and maximum corners.
///
/// # Examples
///
/// ```
/// use cooper_geometry::{Aabb3, Vec3};
///
/// let b = Aabb3::new(Vec3::ZERO, Vec3::new(2.0, 2.0, 2.0));
/// assert!(b.contains(Vec3::new(1.0, 1.0, 1.0)));
/// assert_eq!(b.volume(), 8.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Aabb3 {
    min: Vec3,
    max: Vec3,
}

impl Aabb3 {
    /// Creates a box from two opposite corners (in any order).
    pub fn new(a: Vec3, b: Vec3) -> Self {
        Aabb3 {
            min: a.min(b),
            max: a.max(b),
        }
    }

    /// The smallest box containing all `points`, or `None` when empty.
    pub fn from_points<I: IntoIterator<Item = Vec3>>(points: I) -> Option<Self> {
        let mut it = points.into_iter();
        let first = it.next()?;
        let (min, max) = it.fold((first, first), |(lo, hi), p| (lo.min(p), hi.max(p)));
        Some(Aabb3 { min, max })
    }

    /// Minimum corner.
    pub fn min(&self) -> Vec3 {
        self.min
    }

    /// Maximum corner.
    pub fn max(&self) -> Vec3 {
        self.max
    }

    /// Box center.
    pub fn center(&self) -> Vec3 {
        (self.min + self.max) * 0.5
    }

    /// Box extents (max - min).
    pub fn size(&self) -> Vec3 {
        self.max - self.min
    }

    /// Volume in cubic metres.
    pub fn volume(&self) -> f64 {
        let s = self.size();
        s.x * s.y * s.z
    }

    /// `true` when `p` lies inside or on the boundary.
    pub fn contains(&self, p: Vec3) -> bool {
        p.x >= self.min.x
            && p.x <= self.max.x
            && p.y >= self.min.y
            && p.y <= self.max.y
            && p.z >= self.min.z
            && p.z <= self.max.z
    }

    /// `true` when the two boxes overlap (closed intervals).
    pub fn intersects(&self, other: &Aabb3) -> bool {
        self.min.x <= other.max.x
            && self.max.x >= other.min.x
            && self.min.y <= other.max.y
            && self.max.y >= other.min.y
            && self.min.z <= other.max.z
            && self.max.z >= other.min.z
    }

    /// The intersection box, or `None` when disjoint.
    pub fn intersection(&self, other: &Aabb3) -> Option<Aabb3> {
        if !self.intersects(other) {
            return None;
        }
        Some(Aabb3 {
            min: self.min.max(other.min),
            max: self.max.min(other.max),
        })
    }

    /// The smallest box containing both.
    pub fn union(&self, other: &Aabb3) -> Aabb3 {
        Aabb3 {
            min: self.min.min(other.min),
            max: self.max.max(other.max),
        }
    }

    /// Grows the box by `margin` on every side.
    pub fn inflated(&self, margin: f64) -> Aabb3 {
        Aabb3::new(
            self.min - Vec3::splat(margin),
            self.max + Vec3::splat(margin),
        )
    }
}

impl fmt::Display for Aabb3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} .. {}]", self.min, self.max)
    }
}

/// An oriented (yaw-rotated) 3-D bounding box — the standard 7-parameter
/// box used by LiDAR detectors: center `(x, y, z)`, size `(length, width,
/// height)` and heading `yaw`.
///
/// `length` runs along the heading direction, `width` across it, `height`
/// along `z`. Ground vehicles only rotate about `z`, which is the
/// convention of VoxelNet/SECOND that SPOD follows.
///
/// # Examples
///
/// ```
/// use cooper_geometry::{Obb3, Vec3};
///
/// let car = Obb3::new(Vec3::new(10.0, 0.0, 0.8), Vec3::new(4.5, 1.8, 1.6), 0.0);
/// assert!(car.contains(Vec3::new(11.0, 0.5, 1.0)));
/// assert!((car.iou_bev(&car) - 1.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Obb3 {
    /// Box center in metres.
    pub center: Vec3,
    /// Box size: `x = length` (along heading), `y = width`, `z = height`.
    pub size: Vec3,
    /// Heading about the z-axis, radians, normalized to `(-π, π]`.
    pub yaw: f64,
}

impl Obb3 {
    /// Creates an oriented box. Negative sizes are clamped to zero and the
    /// yaw is normalized.
    pub fn new(center: Vec3, size: Vec3, yaw: f64) -> Self {
        Obb3 {
            center,
            size: size.max(Vec3::ZERO),
            yaw: normalize_angle(yaw),
        }
    }

    /// Volume in cubic metres.
    pub fn volume(&self) -> f64 {
        self.size.x * self.size.y * self.size.z
    }

    /// The four bird's-eye-view corners, counter-clockwise.
    pub fn bev_corners(&self) -> [(f64, f64); 4] {
        let (s, c) = self.yaw.sin_cos();
        let hl = self.size.x * 0.5;
        let hw = self.size.y * 0.5;
        let rot = |dx: f64, dy: f64| {
            (
                self.center.x + c * dx - s * dy,
                self.center.y + s * dx + c * dy,
            )
        };
        [rot(hl, hw), rot(-hl, hw), rot(-hl, -hw), rot(hl, -hw)]
    }

    /// Vertical extent `[z_min, z_max]`.
    pub fn z_range(&self) -> (f64, f64) {
        let hz = self.size.z * 0.5;
        (self.center.z - hz, self.center.z + hz)
    }

    /// `true` when `p` lies inside the box (boundary inclusive).
    pub fn contains(&self, p: Vec3) -> bool {
        let d = p - self.center;
        let (s, c) = self.yaw.sin_cos();
        // Rotate the offset into the box frame.
        let local_x = c * d.x + s * d.y;
        let local_y = -s * d.x + c * d.y;
        local_x.abs() <= self.size.x * 0.5 + 1e-12
            && local_y.abs() <= self.size.y * 0.5 + 1e-12
            && d.z.abs() <= self.size.z * 0.5 + 1e-12
    }

    /// The axis-aligned box that bounds this oriented box.
    pub fn bounding_aabb(&self) -> Aabb3 {
        let corners = self.bev_corners();
        let (z0, z1) = self.z_range();
        let mut min = Vec3::new(f64::INFINITY, f64::INFINITY, z0);
        let mut max = Vec3::new(f64::NEG_INFINITY, f64::NEG_INFINITY, z1);
        for (x, y) in corners {
            min.x = min.x.min(x);
            min.y = min.y.min(y);
            max.x = max.x.max(x);
            max.y = max.y.max(y);
        }
        Aabb3::new(min, max)
    }

    /// Bird's-eye-view intersection area with another box, via
    /// Sutherland–Hodgman convex polygon clipping.
    pub fn bev_intersection_area(&self, other: &Obb3) -> f64 {
        let subject: Vec<(f64, f64)> = self.bev_corners().to_vec();
        let clip = other.bev_corners();
        let clipped = clip_polygon(&subject, &clip);
        polygon_area(&clipped)
    }

    /// Bird's-eye-view area of this box.
    pub fn bev_area(&self) -> f64 {
        self.size.x * self.size.y
    }

    /// Bird's-eye-view intersection-over-union, in `[0, 1]`.
    pub fn iou_bev(&self, other: &Obb3) -> f64 {
        let inter = self.bev_intersection_area(other);
        let union = self.bev_area() + other.bev_area() - inter;
        if union <= 0.0 {
            0.0
        } else {
            (inter / union).clamp(0.0, 1.0)
        }
    }

    /// Full 3-D intersection-over-union: BEV polygon overlap × vertical
    /// interval overlap, in `[0, 1]`.
    pub fn iou_3d(&self, other: &Obb3) -> f64 {
        let inter_area = self.bev_intersection_area(other);
        let (a0, a1) = self.z_range();
        let (b0, b1) = other.z_range();
        let inter_h = (a1.min(b1) - a0.max(b0)).max(0.0);
        let inter_vol = inter_area * inter_h;
        let union = self.volume() + other.volume() - inter_vol;
        if union <= 0.0 {
            0.0
        } else {
            (inter_vol / union).clamp(0.0, 1.0)
        }
    }

    /// Distance between box centers in the ground plane.
    pub fn center_distance_bev(&self, other: &Obb3) -> f64 {
        self.center.distance_xy(other.center)
    }

    /// Returns this box transformed by a rigid transform that only rotates
    /// about `z` (yaw). Pitch/roll components of the rotation are applied
    /// to the center but only the yaw is folded into the heading, which is
    /// the standard approximation for ground-vehicle boxes.
    pub fn transformed(&self, t: &crate::RigidTransform) -> Obb3 {
        let center = t.apply(self.center);
        let (yaw_delta, _, _) = t.rotation().to_yaw_pitch_roll();
        Obb3::new(center, self.size, self.yaw + yaw_delta)
    }
}

impl fmt::Display for Obb3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "obb(center {}, size {}, yaw {:.3})",
            self.center, self.size, self.yaw
        )
    }
}

/// Clips convex polygon `subject` against convex polygon `clip`
/// (Sutherland–Hodgman). Both must be wound counter-clockwise.
fn clip_polygon(subject: &[(f64, f64)], clip: &[(f64, f64)]) -> Vec<(f64, f64)> {
    let mut output = subject.to_vec();
    for i in 0..clip.len() {
        if output.is_empty() {
            break;
        }
        let a = clip[i];
        let b = clip[(i + 1) % clip.len()];
        let input = std::mem::take(&mut output);
        for j in 0..input.len() {
            let p = input[j];
            let q = input[(j + 1) % input.len()];
            let p_in = inside(a, b, p);
            let q_in = inside(a, b, q);
            if p_in {
                output.push(p);
                if !q_in {
                    if let Some(x) = line_intersection(a, b, p, q) {
                        output.push(x);
                    }
                }
            } else if q_in {
                if let Some(x) = line_intersection(a, b, p, q) {
                    output.push(x);
                }
            }
        }
    }
    output
}

/// `true` when point `p` is on the left side of (or on) the directed edge
/// `a -> b`.
fn inside(a: (f64, f64), b: (f64, f64), p: (f64, f64)) -> bool {
    (b.0 - a.0) * (p.1 - a.1) - (b.1 - a.1) * (p.0 - a.0) >= -1e-12
}

/// Intersection of the infinite line through `a, b` with the segment-line
/// through `p, q`. Returns `None` for (near-)parallel lines.
fn line_intersection(
    a: (f64, f64),
    b: (f64, f64),
    p: (f64, f64),
    q: (f64, f64),
) -> Option<(f64, f64)> {
    let r = (b.0 - a.0, b.1 - a.1);
    let s = (q.0 - p.0, q.1 - p.1);
    let denom = r.0 * s.1 - r.1 * s.0;
    if denom.abs() < 1e-15 {
        return None;
    }
    let t = ((p.0 - a.0) * s.1 - (p.1 - a.1) * s.0) / denom;
    Some((a.0 + t * r.0, a.1 + t * r.1))
}

/// Signed shoelace area of a polygon; returns the absolute value.
fn polygon_area(poly: &[(f64, f64)]) -> f64 {
    if poly.len() < 3 {
        return 0.0;
    }
    let mut acc = 0.0;
    for i in 0..poly.len() {
        let (x0, y0) = poly[i];
        let (x1, y1) = poly[(i + 1) % poly.len()];
        acc += x0 * y1 - x1 * y0;
    }
    acc.abs() * 0.5
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, FRAC_PI_4};

    #[test]
    fn aabb_basics() {
        let b = Aabb3::new(Vec3::new(2.0, 2.0, 2.0), Vec3::ZERO);
        assert_eq!(b.min(), Vec3::ZERO);
        assert_eq!(b.max(), Vec3::new(2.0, 2.0, 2.0));
        assert_eq!(b.center(), Vec3::new(1.0, 1.0, 1.0));
        assert_eq!(b.size(), Vec3::new(2.0, 2.0, 2.0));
        assert_eq!(b.volume(), 8.0);
        assert!(b.contains(Vec3::new(2.0, 0.0, 1.0)));
        assert!(!b.contains(Vec3::new(2.1, 0.0, 1.0)));
    }

    #[test]
    fn aabb_from_points() {
        assert!(Aabb3::from_points(std::iter::empty()).is_none());
        let b = Aabb3::from_points([
            Vec3::new(1.0, 5.0, -1.0),
            Vec3::new(-2.0, 0.0, 3.0),
            Vec3::new(0.0, 2.0, 0.0),
        ])
        .unwrap();
        assert_eq!(b.min(), Vec3::new(-2.0, 0.0, -1.0));
        assert_eq!(b.max(), Vec3::new(1.0, 5.0, 3.0));
    }

    #[test]
    fn aabb_set_operations() {
        let a = Aabb3::new(Vec3::ZERO, Vec3::splat(2.0));
        let b = Aabb3::new(Vec3::splat(1.0), Vec3::splat(3.0));
        let c = Aabb3::new(Vec3::splat(5.0), Vec3::splat(6.0));
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        let i = a.intersection(&b).unwrap();
        assert_eq!(i.min(), Vec3::splat(1.0));
        assert_eq!(i.max(), Vec3::splat(2.0));
        assert!(a.intersection(&c).is_none());
        let u = a.union(&c);
        assert_eq!(u.min(), Vec3::ZERO);
        assert_eq!(u.max(), Vec3::splat(6.0));
        let big = a.inflated(0.5);
        assert_eq!(big.min(), Vec3::splat(-0.5));
        assert_eq!(big.max(), Vec3::splat(2.5));
    }

    #[test]
    fn obb_contains_rotated() {
        let b = Obb3::new(Vec3::ZERO, Vec3::new(4.0, 2.0, 2.0), FRAC_PI_2);
        // After a 90° yaw the length runs along y.
        assert!(b.contains(Vec3::new(0.0, 1.9, 0.0)));
        assert!(!b.contains(Vec3::new(1.9, 0.0, 0.0)));
    }

    #[test]
    fn identical_boxes_iou_is_one() {
        let b = Obb3::new(Vec3::new(3.0, 4.0, 1.0), Vec3::new(4.5, 1.8, 1.5), 0.7);
        assert!((b.iou_bev(&b) - 1.0).abs() < 1e-9);
        assert!((b.iou_3d(&b) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn disjoint_boxes_iou_is_zero() {
        let a = Obb3::new(Vec3::ZERO, Vec3::new(2.0, 2.0, 2.0), 0.0);
        let b = Obb3::new(Vec3::new(10.0, 0.0, 0.0), Vec3::new(2.0, 2.0, 2.0), 1.0);
        assert_eq!(a.iou_bev(&b), 0.0);
        assert_eq!(a.iou_3d(&b), 0.0);
    }

    #[test]
    fn half_overlap_axis_aligned() {
        let a = Obb3::new(Vec3::ZERO, Vec3::new(2.0, 2.0, 2.0), 0.0);
        let b = Obb3::new(Vec3::new(1.0, 0.0, 0.0), Vec3::new(2.0, 2.0, 2.0), 0.0);
        // Intersection 1x2=2, union 4+4-2=6.
        assert!((a.iou_bev(&b) - 2.0 / 6.0).abs() < 1e-9);
        // 3-D: intersection 1*2*2=4, union 8+8-4=12.
        assert!((a.iou_3d(&b) - 4.0 / 12.0).abs() < 1e-9);
    }

    #[test]
    fn vertical_offset_reduces_3d_iou_only() {
        let a = Obb3::new(Vec3::ZERO, Vec3::new(2.0, 2.0, 2.0), 0.0);
        let b = Obb3::new(Vec3::new(0.0, 0.0, 1.0), Vec3::new(2.0, 2.0, 2.0), 0.0);
        assert!((a.iou_bev(&b) - 1.0).abs() < 1e-9);
        // Vertical overlap 1 of 2: inter 4, union 8+8-4=12.
        assert!((a.iou_3d(&b) - 4.0 / 12.0).abs() < 1e-9);
    }

    #[test]
    fn rotated_square_iou() {
        // A unit square vs itself rotated 45°: intersection is a regular
        // octagon with area 2(√2 − 1) ≈ 0.8284.
        let a = Obb3::new(Vec3::ZERO, Vec3::new(1.0, 1.0, 1.0), 0.0);
        let b = Obb3::new(Vec3::ZERO, Vec3::new(1.0, 1.0, 1.0), FRAC_PI_4);
        let inter = a.bev_intersection_area(&b);
        let expect = 2.0 * (2.0_f64.sqrt() - 1.0);
        assert!((inter - expect).abs() < 1e-9, "inter={inter}");
        let iou = a.iou_bev(&b);
        assert!((iou - expect / (2.0 - expect)).abs() < 1e-9);
    }

    #[test]
    fn iou_is_symmetric() {
        let a = Obb3::new(Vec3::new(1.0, 2.0, 0.0), Vec3::new(4.0, 2.0, 1.5), 0.3);
        let b = Obb3::new(Vec3::new(2.0, 1.5, 0.2), Vec3::new(3.5, 1.8, 1.4), -0.5);
        assert!((a.iou_bev(&b) - b.iou_bev(&a)).abs() < 1e-9);
        assert!((a.iou_3d(&b) - b.iou_3d(&a)).abs() < 1e-9);
    }

    #[test]
    fn bounding_aabb_contains_corners() {
        let b = Obb3::new(Vec3::new(5.0, -3.0, 1.0), Vec3::new(4.0, 2.0, 1.6), 0.9);
        let aabb = b.bounding_aabb();
        for (x, y) in b.bev_corners() {
            assert!(aabb.contains(Vec3::new(x, y, 1.0)));
        }
    }

    #[test]
    fn transformed_box_moves_with_frame() {
        use crate::{Mat3, RigidTransform};
        let b = Obb3::new(Vec3::new(1.0, 0.0, 0.0), Vec3::new(4.0, 2.0, 1.5), 0.0);
        let t = RigidTransform::new(Mat3::rotation_z(FRAC_PI_2), Vec3::new(0.0, 0.0, 1.0));
        let moved = b.transformed(&t);
        assert!((moved.center - Vec3::new(0.0, 1.0, 1.0)).norm() < 1e-12);
        assert!((moved.yaw - FRAC_PI_2).abs() < 1e-12);
        assert_eq!(moved.size, b.size);
    }

    #[test]
    fn negative_size_clamped() {
        let b = Obb3::new(Vec3::ZERO, Vec3::new(-1.0, 2.0, 3.0), 0.0);
        assert_eq!(b.size.x, 0.0);
        assert_eq!(b.volume(), 0.0);
    }

    #[test]
    fn polygon_area_shoelace() {
        // Unit square.
        let sq = [(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (0.0, 1.0)];
        assert!((polygon_area(&sq) - 1.0).abs() < 1e-12);
        assert_eq!(polygon_area(&sq[..2]), 0.0);
    }

    #[test]
    fn contained_box_iou() {
        let outer = Obb3::new(Vec3::ZERO, Vec3::new(4.0, 4.0, 4.0), 0.0);
        let inner = Obb3::new(Vec3::ZERO, Vec3::new(2.0, 2.0, 2.0), 0.3);
        let iou = outer.iou_bev(&inner);
        assert!((iou - 4.0 / 16.0).abs() < 1e-9);
        let iou3 = outer.iou_3d(&inner);
        assert!((iou3 - 8.0 / 64.0).abs() < 1e-9);
    }
}
