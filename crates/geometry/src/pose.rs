//! Vehicle poses and rigid transforms (the paper's Equations 1–3).

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{normalize_angle, Mat3, Vec3};

/// A vehicle attitude: yaw `α`, pitch `β`, roll `γ`, in radians.
///
/// This is what the paper reads from the IMU: "it represents a rotation
/// whose yaw, pitch, and roll angles are α, β and γ" (§II-D). The
/// corresponding rotation matrix is Equation 1, `R = Rz(α)·Ry(β)·Rx(γ)`.
///
/// # Examples
///
/// ```
/// use cooper_geometry::Attitude;
///
/// let att = Attitude::from_yaw(std::f64::consts::FRAC_PI_2);
/// assert!(att.rotation_matrix().is_rotation(1e-12));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Attitude {
    /// Yaw `α` about the z-axis, radians.
    pub yaw: f64,
    /// Pitch `β` about the y-axis, radians.
    pub pitch: f64,
    /// Roll `γ` about the x-axis, radians.
    pub roll: f64,
}

impl Attitude {
    /// Creates an attitude from yaw, pitch and roll (radians).
    pub const fn new(yaw: f64, pitch: f64, roll: f64) -> Self {
        Attitude { yaw, pitch, roll }
    }

    /// A level attitude (zero yaw, pitch and roll).
    pub const fn level() -> Self {
        Attitude::new(0.0, 0.0, 0.0)
    }

    /// A level attitude with the given yaw — the common case for ground
    /// vehicles on flat roads.
    pub const fn from_yaw(yaw: f64) -> Self {
        Attitude::new(yaw, 0.0, 0.0)
    }

    /// The paper's Equation 1: the rotation matrix `Rz(α)·Ry(β)·Rx(γ)`.
    pub fn rotation_matrix(&self) -> Mat3 {
        Mat3::from_yaw_pitch_roll(self.yaw, self.pitch, self.roll)
    }

    /// Component-wise difference `self - other`, each angle normalized to
    /// `(-π, π]`. The paper computes its alignment "using the IMU value
    /// difference between the transmitter and the receiver".
    pub fn difference(&self, other: &Attitude) -> Attitude {
        Attitude::new(
            normalize_angle(self.yaw - other.yaw),
            normalize_angle(self.pitch - other.pitch),
            normalize_angle(self.roll - other.roll),
        )
    }
}

impl fmt::Display for Attitude {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "yaw {:.3} pitch {:.3} roll {:.3}",
            self.yaw, self.pitch, self.roll
        )
    }
}

/// A full vehicle pose: position in the shared world frame plus attitude.
///
/// The position is what the paper derives from the GPS fix ("its GPS
/// reading, which determines the center point position of every frame of
/// point clouds"), the attitude from the IMU.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Pose {
    /// Sensor-origin position in the world frame, metres.
    pub position: Vec3,
    /// Vehicle attitude.
    pub attitude: Attitude,
}

impl Pose {
    /// Creates a pose from a position and attitude.
    pub const fn new(position: Vec3, attitude: Attitude) -> Self {
        Pose { position, attitude }
    }

    /// A pose at the world origin with level attitude.
    pub const fn origin() -> Self {
        Pose::new(Vec3::ZERO, Attitude::level())
    }

    /// Transforms a point from this pose's local (sensor) frame into the
    /// world frame: `p_world = R · p_local + position` (Equation 3 with
    /// the world as the target frame).
    pub fn local_to_world(&self, local: Vec3) -> Vec3 {
        self.attitude.rotation_matrix() * local + self.position
    }

    /// Transforms a world-frame point into this pose's local frame
    /// (the inverse of [`Pose::local_to_world`]).
    pub fn world_to_local(&self, world: Vec3) -> Vec3 {
        self.attitude.rotation_matrix().transpose() * (world - self.position)
    }

    /// Planar distance (metres) between two poses — the `Δd` annotated on
    /// the paper's Figures 3 and 6.
    pub fn delta_d(&self, other: &Pose) -> f64 {
        self.position.distance_xy(other.position)
    }
}

impl fmt::Display for Pose {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pos {} | {}", self.position, self.attitude)
    }
}

/// A rigid transform `p' = R·p + t` — the paper's Equation 3.
///
/// [`RigidTransform::between`] builds the transform that maps points from a
/// transmitting vehicle's sensor frame into a receiving vehicle's sensor
/// frame, which is the core alignment step of cooperative perception.
///
/// # Examples
///
/// ```
/// use cooper_geometry::{Attitude, Pose, RigidTransform, Vec3};
///
/// let tx = Pose::new(Vec3::new(5.0, 0.0, 0.0), Attitude::level());
/// let rx = Pose::origin();
/// let t = RigidTransform::between(&tx, &rx);
/// // The transmitter's origin lands 5 m ahead of the receiver.
/// assert!((t.apply(Vec3::ZERO) - Vec3::new(5.0, 0.0, 0.0)).norm() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RigidTransform {
    rotation: Mat3,
    translation: Vec3,
}

impl RigidTransform {
    /// The identity transform.
    pub const IDENTITY: RigidTransform = RigidTransform {
        rotation: Mat3::IDENTITY,
        translation: Vec3::ZERO,
    };

    /// Creates a transform from a rotation and a translation.
    ///
    /// The rotation is not validated here; use
    /// [`RigidTransform::try_new`] when the matrix comes from untrusted
    /// input (e.g. a decoded exchange packet).
    pub const fn new(rotation: Mat3, translation: Vec3) -> Self {
        RigidTransform {
            rotation,
            translation,
        }
    }

    /// Creates a transform, validating that `rotation` is a proper rotation
    /// matrix.
    ///
    /// # Errors
    ///
    /// Returns `None` when `rotation` is not orthonormal with determinant
    /// +1 (within [`crate::EPSILON`]·10³ — decoded matrices carry f32
    /// quantization error).
    pub fn try_new(rotation: Mat3, translation: Vec3) -> Option<Self> {
        if rotation.is_rotation(crate::EPSILON * 1e3) {
            Some(RigidTransform::new(rotation, translation))
        } else {
            None
        }
    }

    /// The rotation component.
    pub fn rotation(&self) -> Mat3 {
        self.rotation
    }

    /// The translation component.
    pub fn translation(&self) -> Vec3 {
        self.translation
    }

    /// Builds the transform that maps local points of `from` into the local
    /// frame of `to`, assuming both poses are expressed in a shared world
    /// frame.
    ///
    /// This composes the paper's Equations 1–3: rotate by the transmitter's
    /// IMU attitude, translate by the GPS offset `Δd`, then undo the
    /// receiver's attitude.
    pub fn between(from: &Pose, to: &Pose) -> RigidTransform {
        let r_from = from.attitude.rotation_matrix();
        let r_to_inv = to.attitude.rotation_matrix().transpose();
        let rotation = r_to_inv * r_from;
        let translation = r_to_inv * (from.position - to.position);
        RigidTransform::new(rotation, translation)
    }

    /// Builds the transform from a pose's local frame to the world frame.
    pub fn from_pose(pose: &Pose) -> RigidTransform {
        RigidTransform::new(pose.attitude.rotation_matrix(), pose.position)
    }

    /// Applies the transform to a point: `R·p + t`.
    #[inline]
    pub fn apply(&self, p: Vec3) -> Vec3 {
        self.rotation * p + self.translation
    }

    /// Rotates a direction vector (ignores the translation).
    #[inline]
    pub fn apply_direction(&self, d: Vec3) -> Vec3 {
        self.rotation * d
    }

    /// The inverse transform.
    pub fn inverse(&self) -> RigidTransform {
        let r_inv = self.rotation.transpose();
        RigidTransform::new(r_inv, -(r_inv * self.translation))
    }

    /// Composes two transforms: the result applies `inner` first, then
    /// `self`.
    pub fn compose(&self, inner: &RigidTransform) -> RigidTransform {
        RigidTransform::new(
            self.rotation * inner.rotation,
            self.rotation * inner.translation + self.translation,
        )
    }
}

impl Default for RigidTransform {
    fn default() -> Self {
        RigidTransform::IDENTITY
    }
}

impl fmt::Display for RigidTransform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R={:?} t={}", self.rotation, self.translation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::FRAC_PI_2;

    fn assert_close(a: Vec3, b: Vec3) {
        assert!((a - b).norm() < 1e-10, "{a} != {b}");
    }

    #[test]
    fn pose_local_world_round_trip() {
        let pose = Pose::new(Vec3::new(3.0, -2.0, 0.5), Attitude::new(1.2, 0.1, -0.05));
        let p = Vec3::new(10.0, 4.0, -1.0);
        assert_close(pose.world_to_local(pose.local_to_world(p)), p);
        assert_close(pose.local_to_world(pose.world_to_local(p)), p);
    }

    #[test]
    fn between_identity_for_same_pose() {
        let pose = Pose::new(Vec3::new(1.0, 2.0, 3.0), Attitude::new(0.4, 0.1, 0.2));
        let t = RigidTransform::between(&pose, &pose);
        let p = Vec3::new(5.0, 6.0, 7.0);
        assert_close(t.apply(p), p);
    }

    #[test]
    fn between_matches_via_world() {
        let tx = Pose::new(Vec3::new(12.0, -3.0, 0.0), Attitude::new(0.8, 0.02, -0.01));
        let rx = Pose::new(Vec3::new(-4.0, 9.0, 0.2), Attitude::new(-1.3, 0.0, 0.04));
        let t = RigidTransform::between(&tx, &rx);
        let p = Vec3::new(7.0, 1.0, 0.5);
        let expected = rx.world_to_local(tx.local_to_world(p));
        assert_close(t.apply(p), expected);
    }

    #[test]
    fn transform_inverse_round_trip() {
        let t = RigidTransform::new(
            Mat3::from_yaw_pitch_roll(0.5, -0.2, 0.9),
            Vec3::new(1.0, -2.0, 3.0),
        );
        let p = Vec3::new(-4.0, 5.0, 6.0);
        assert_close(t.inverse().apply(t.apply(p)), p);
        assert_close(t.apply(t.inverse().apply(p)), p);
    }

    #[test]
    fn compose_applies_inner_first() {
        let rot = RigidTransform::new(Mat3::rotation_z(FRAC_PI_2), Vec3::ZERO);
        let shift = RigidTransform::new(Mat3::IDENTITY, Vec3::new(1.0, 0.0, 0.0));
        // Shift then rotate: (1,0,0) -> (2,0,0) -> (0,2,0)
        let both = rot.compose(&shift);
        assert_close(both.apply(Vec3::X), Vec3::new(0.0, 2.0, 0.0));
        // Rotate then shift: (1,0,0) -> (0,1,0) -> (1,1,0)
        let other = shift.compose(&rot);
        assert_close(other.apply(Vec3::X), Vec3::new(1.0, 1.0, 0.0));
    }

    #[test]
    fn try_new_rejects_non_rotation() {
        let bad = Mat3::from_rows([[2.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]]);
        assert!(RigidTransform::try_new(bad, Vec3::ZERO).is_none());
        assert!(RigidTransform::try_new(Mat3::IDENTITY, Vec3::ZERO).is_some());
    }

    #[test]
    fn attitude_difference_normalizes() {
        let a = Attitude::from_yaw(3.0);
        let b = Attitude::from_yaw(-3.0);
        let d = a.difference(&b);
        // 6 radians wraps to 6 - 2π ≈ -0.283.
        assert!((d.yaw - (6.0 - 2.0 * std::f64::consts::PI)).abs() < 1e-12);
    }

    #[test]
    fn delta_d_is_planar() {
        let a = Pose::new(Vec3::new(0.0, 0.0, 10.0), Attitude::level());
        let b = Pose::new(Vec3::new(3.0, 4.0, -10.0), Attitude::level());
        assert!((a.delta_d(&b) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn from_pose_matches_local_to_world() {
        let pose = Pose::new(Vec3::new(2.0, 3.0, 1.0), Attitude::new(0.3, -0.1, 0.2));
        let t = RigidTransform::from_pose(&pose);
        let p = Vec3::new(1.0, 1.0, 1.0);
        assert_close(t.apply(p), pose.local_to_world(p));
    }
}
