//! Three-dimensional vectors.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Index, Mul, MulAssign, Neg, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A 3-D vector with `f64` components.
///
/// Used throughout the workspace for point positions, translations and
/// directions. The LiDAR convention follows the paper (and KITTI): `x`
/// forward, `y` left, `z` up, in metres.
///
/// # Examples
///
/// ```
/// use cooper_geometry::Vec3;
///
/// let forward = Vec3::new(1.0, 0.0, 0.0);
/// let left = Vec3::new(0.0, 1.0, 0.0);
/// assert_eq!(forward.cross(left), Vec3::new(0.0, 0.0, 1.0));
/// assert_eq!(forward.dot(left), 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec3 {
    /// Forward component (metres).
    pub x: f64,
    /// Left component (metres).
    pub y: f64,
    /// Up component (metres).
    pub z: f64,
}

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };
    /// Unit vector along `x` (vehicle forward).
    pub const X: Vec3 = Vec3 {
        x: 1.0,
        y: 0.0,
        z: 0.0,
    };
    /// Unit vector along `y` (vehicle left).
    pub const Y: Vec3 = Vec3 {
        x: 0.0,
        y: 1.0,
        z: 0.0,
    };
    /// Unit vector along `z` (up).
    pub const Z: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 1.0,
    };

    /// Creates a vector from its components.
    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    /// Creates a vector with all components equal to `v`.
    #[inline]
    pub const fn splat(v: f64) -> Self {
        Vec3::new(v, v, v)
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, other: Vec3) -> f64 {
        self.x * other.x + self.y * other.y + self.z * other.z
    }

    /// Cross product (right-handed).
    #[inline]
    pub fn cross(self, other: Vec3) -> Vec3 {
        Vec3::new(
            self.y * other.z - self.z * other.y,
            self.z * other.x - self.x * other.z,
            self.x * other.y - self.y * other.x,
        )
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Squared Euclidean norm (avoids the square root).
    #[inline]
    pub fn norm_squared(self) -> f64 {
        self.dot(self)
    }

    /// Distance to another point.
    #[inline]
    pub fn distance(self, other: Vec3) -> f64 {
        (self - other).norm()
    }

    /// Horizontal (bird's-eye-view) distance, ignoring `z`.
    #[inline]
    pub fn distance_xy(self, other: Vec3) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }

    /// Returns the unit vector pointing the same way, or `None` for a
    /// (near-)zero vector.
    pub fn normalized(self) -> Option<Vec3> {
        let n = self.norm();
        if n < crate::EPSILON {
            None
        } else {
            Some(self / n)
        }
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, other: Vec3) -> Vec3 {
        Vec3::new(
            self.x.min(other.x),
            self.y.min(other.y),
            self.z.min(other.z),
        )
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, other: Vec3) -> Vec3 {
        Vec3::new(
            self.x.max(other.x),
            self.y.max(other.y),
            self.z.max(other.z),
        )
    }

    /// Linear interpolation: `self` at `t = 0`, `other` at `t = 1`.
    #[inline]
    pub fn lerp(self, other: Vec3, t: f64) -> Vec3 {
        self + (other - self) * t
    }

    /// Horizontal range from the origin (distance in the `xy` plane).
    #[inline]
    pub fn range_xy(self) -> f64 {
        (self.x * self.x + self.y * self.y).sqrt()
    }

    /// Azimuth angle in the `xy` plane, radians in `(-π, π]`, measured from
    /// `+x` towards `+y`.
    #[inline]
    pub fn azimuth(self) -> f64 {
        self.y.atan2(self.x)
    }

    /// Elevation angle above the `xy` plane, radians in `[-π/2, π/2]`.
    #[inline]
    pub fn elevation(self) -> f64 {
        self.z.atan2(self.range_xy())
    }

    /// `true` when every component is finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }

    /// Returns this vector as a `[x, y, z]` array.
    #[inline]
    pub fn to_array(self) -> [f64; 3] {
        [self.x, self.y, self.z]
    }
}

impl From<[f64; 3]> for Vec3 {
    fn from(a: [f64; 3]) -> Self {
        Vec3::new(a[0], a[1], a[2])
    }
}

impl From<Vec3> for [f64; 3] {
    fn from(v: Vec3) -> Self {
        v.to_array()
    }
}

impl Index<usize> for Vec3 {
    type Output = f64;

    /// # Panics
    ///
    /// Panics if `index >= 3`.
    fn index(&self, index: usize) -> &f64 {
        match index {
            0 => &self.x,
            1 => &self.y,
            2 => &self.z,
            _ => panic!("Vec3 index out of bounds: {index}"),
        }
    }
}

impl fmt::Display for Vec3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.3}, {:.3}, {:.3})", self.x, self.y, self.z)
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl AddAssign for Vec3 {
    #[inline]
    fn add_assign(&mut self, rhs: Vec3) {
        *self = *self + rhs;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl SubAssign for Vec3 {
    #[inline]
    fn sub_assign(&mut self, rhs: Vec3) {
        *self = *self - rhs;
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, rhs: f64) -> Vec3 {
        Vec3::new(self.x * rhs, self.y * rhs, self.z * rhs)
    }
}

impl Mul<Vec3> for f64 {
    type Output = Vec3;
    #[inline]
    fn mul(self, rhs: Vec3) -> Vec3 {
        rhs * self
    }
}

impl MulAssign<f64> for Vec3 {
    #[inline]
    fn mul_assign(&mut self, rhs: f64) {
        *self = *self * rhs;
    }
}

impl Div<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn div(self, rhs: f64) -> Vec3 {
        Vec3::new(self.x / rhs, self.y / rhs, self.z / rhs)
    }
}

impl DivAssign<f64> for Vec3 {
    #[inline]
    fn div_assign(&mut self, rhs: f64) {
        *self = *self / rhs;
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

impl Sum for Vec3 {
    fn sum<I: Iterator<Item = Vec3>>(iter: I) -> Vec3 {
        iter.fold(Vec3::ZERO, Add::add)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_basics() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(4.0, 5.0, 6.0);
        assert_eq!(a + b, Vec3::new(5.0, 7.0, 9.0));
        assert_eq!(b - a, Vec3::new(3.0, 3.0, 3.0));
        assert_eq!(a * 2.0, Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(2.0 * a, a * 2.0);
        assert_eq!(a / 2.0, Vec3::new(0.5, 1.0, 1.5));
        assert_eq!(-a, Vec3::new(-1.0, -2.0, -3.0));
    }

    #[test]
    fn assign_ops() {
        let mut v = Vec3::new(1.0, 1.0, 1.0);
        v += Vec3::X;
        v -= Vec3::Y;
        v *= 3.0;
        v /= 2.0;
        assert_eq!(v, Vec3::new(3.0, 0.0, 1.5));
    }

    #[test]
    fn dot_and_cross() {
        assert_eq!(Vec3::X.dot(Vec3::Y), 0.0);
        assert_eq!(Vec3::X.cross(Vec3::Y), Vec3::Z);
        assert_eq!(Vec3::Y.cross(Vec3::Z), Vec3::X);
        assert_eq!(Vec3::Z.cross(Vec3::X), Vec3::Y);
        // Anti-commutative.
        assert_eq!(Vec3::Y.cross(Vec3::X), -Vec3::Z);
    }

    #[test]
    fn norms_and_distances() {
        let v = Vec3::new(3.0, 4.0, 0.0);
        assert_eq!(v.norm(), 5.0);
        assert_eq!(v.norm_squared(), 25.0);
        assert_eq!(v.distance(Vec3::ZERO), 5.0);
        assert_eq!(Vec3::new(3.0, 4.0, 7.0).distance_xy(Vec3::ZERO), 5.0);
    }

    #[test]
    fn normalized_handles_zero() {
        assert!(Vec3::ZERO.normalized().is_none());
        let n = Vec3::new(0.0, 0.0, 2.0).normalized().unwrap();
        assert!((n.norm() - 1.0).abs() < 1e-12);
        assert_eq!(n, Vec3::Z);
    }

    #[test]
    fn spherical_angles() {
        let v = Vec3::new(1.0, 1.0, 0.0);
        assert!((v.azimuth() - std::f64::consts::FRAC_PI_4).abs() < 1e-12);
        let up45 = Vec3::new(1.0, 0.0, 1.0);
        assert!((up45.elevation() - std::f64::consts::FRAC_PI_4).abs() < 1e-12);
    }

    #[test]
    fn min_max_lerp() {
        let a = Vec3::new(1.0, 5.0, -2.0);
        let b = Vec3::new(3.0, 2.0, 0.0);
        assert_eq!(a.min(b), Vec3::new(1.0, 2.0, -2.0));
        assert_eq!(a.max(b), Vec3::new(3.0, 5.0, 0.0));
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Vec3::new(2.0, 3.5, -1.0));
    }

    #[test]
    fn indexing_and_conversion() {
        let v = Vec3::new(7.0, 8.0, 9.0);
        assert_eq!(v[0], 7.0);
        assert_eq!(v[1], 8.0);
        assert_eq!(v[2], 9.0);
        let arr: [f64; 3] = v.into();
        assert_eq!(Vec3::from(arr), v);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn index_out_of_bounds_panics() {
        let _ = Vec3::ZERO[3];
    }

    #[test]
    fn sum_of_vectors() {
        let total: Vec3 = [Vec3::X, Vec3::Y, Vec3::Z].into_iter().sum();
        assert_eq!(total, Vec3::new(1.0, 1.0, 1.0));
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", Vec3::ZERO).is_empty());
    }
}
