//! Angle newtypes and normalization helpers.

use std::fmt;
use std::ops::{Add, Neg, Sub};

use serde::{Deserialize, Serialize};

/// Normalizes an angle in radians to the half-open interval `(-π, π]`.
///
/// # Examples
///
/// ```
/// use cooper_geometry::normalize_angle;
/// use std::f64::consts::PI;
///
/// assert!((normalize_angle(3.0 * PI) - PI).abs() < 1e-12);
/// assert!((normalize_angle(-PI) - PI).abs() < 1e-12);
/// assert_eq!(normalize_angle(0.25), 0.25);
/// ```
pub fn normalize_angle(theta: f64) -> f64 {
    use std::f64::consts::PI;
    let two_pi = 2.0 * PI;
    let mut t = theta % two_pi;
    if t <= -PI {
        t += two_pi;
    } else if t > PI {
        t -= two_pi;
    }
    t
}

/// An angle measured in radians.
///
/// A newtype that keeps radians and degrees statically distinct (C-NEWTYPE);
/// conversions are explicit via [`Radians::to_degrees`] and
/// [`Degrees::to_radians`].
///
/// # Examples
///
/// ```
/// use cooper_geometry::{Degrees, Radians};
///
/// let quarter = Degrees::new(90.0).to_radians();
/// assert!((quarter.get() - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Radians(f64);

impl Radians {
    /// Wraps a raw radian value.
    #[inline]
    pub const fn new(value: f64) -> Self {
        Radians(value)
    }

    /// Returns the raw radian value.
    #[inline]
    pub const fn get(self) -> f64 {
        self.0
    }

    /// Converts to degrees.
    #[inline]
    pub fn to_degrees(self) -> Degrees {
        Degrees(self.0.to_degrees())
    }

    /// Returns the angle normalized to `(-π, π]`.
    #[inline]
    pub fn normalized(self) -> Radians {
        Radians(normalize_angle(self.0))
    }
}

/// An angle measured in degrees.
///
/// See [`Radians`] for the rationale.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Degrees(f64);

impl Degrees {
    /// Wraps a raw degree value.
    #[inline]
    pub const fn new(value: f64) -> Self {
        Degrees(value)
    }

    /// Returns the raw degree value.
    #[inline]
    pub const fn get(self) -> f64 {
        self.0
    }

    /// Converts to radians.
    #[inline]
    pub fn to_radians(self) -> Radians {
        Radians(self.0.to_radians())
    }
}

impl From<Degrees> for Radians {
    fn from(d: Degrees) -> Radians {
        d.to_radians()
    }
}

impl From<Radians> for Degrees {
    fn from(r: Radians) -> Degrees {
        r.to_degrees()
    }
}

impl fmt::Display for Radians {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4} rad", self.0)
    }
}

impl fmt::Display for Degrees {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2}°", self.0)
    }
}

impl Add for Radians {
    type Output = Radians;
    fn add(self, rhs: Radians) -> Radians {
        Radians(self.0 + rhs.0)
    }
}

impl Sub for Radians {
    type Output = Radians;
    fn sub(self, rhs: Radians) -> Radians {
        Radians(self.0 - rhs.0)
    }
}

impl Neg for Radians {
    type Output = Radians;
    fn neg(self) -> Radians {
        Radians(-self.0)
    }
}

impl Add for Degrees {
    type Output = Degrees;
    fn add(self, rhs: Degrees) -> Degrees {
        Degrees(self.0 + rhs.0)
    }
}

impl Sub for Degrees {
    type Output = Degrees;
    fn sub(self, rhs: Degrees) -> Degrees {
        Degrees(self.0 - rhs.0)
    }
}

impl Neg for Degrees {
    type Output = Degrees;
    fn neg(self) -> Degrees {
        Degrees(-self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn normalize_wraps_into_range() {
        assert!((normalize_angle(2.0 * PI)).abs() < 1e-12);
        assert!((normalize_angle(-3.0 * FRAC_PI_2) - FRAC_PI_2).abs() < 1e-12);
        assert!((normalize_angle(5.0 * PI) - PI).abs() < 1e-12);
        // Boundary: -π maps to +π, keeping the interval half-open.
        assert!(normalize_angle(-PI) > 0.0);
    }

    #[test]
    fn normalize_is_idempotent() {
        for k in -10..=10 {
            let t = 0.37 + k as f64 * 1.1;
            let n = normalize_angle(t);
            assert!((normalize_angle(n) - n).abs() < 1e-12);
            assert!(n > -PI - 1e-12 && n <= PI + 1e-12);
        }
    }

    #[test]
    fn degree_radian_round_trip() {
        let d = Degrees::new(123.456);
        let back: Degrees = Radians::from(d).into();
        assert!((back.get() - d.get()).abs() < 1e-12);
    }

    #[test]
    fn angle_arithmetic() {
        let a = Radians::new(1.0);
        let b = Radians::new(0.25);
        assert_eq!((a + b).get(), 1.25);
        assert_eq!((a - b).get(), 0.75);
        assert_eq!((-a).get(), -1.0);
        let d = Degrees::new(90.0) + Degrees::new(45.0);
        assert_eq!(d.get(), 135.0);
        assert_eq!((-Degrees::new(10.0)).get(), -10.0);
        assert_eq!((Degrees::new(30.0) - Degrees::new(10.0)).get(), 20.0);
    }

    #[test]
    fn normalized_method() {
        let r = Radians::new(3.0 * PI).normalized();
        assert!((r.get() - PI).abs() < 1e-12);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Degrees::new(90.0)), "90.00°");
        assert!(format!("{}", Radians::new(1.0)).contains("rad"));
    }
}
