//! 3×3 matrices and the paper's basic rotation matrices (Equation 1).

use std::fmt;
use std::ops::{Add, Mul, Sub};

use serde::{Deserialize, Serialize};

use crate::Vec3;

/// A row-major 3×3 matrix.
///
/// The Cooper paper builds its alignment rotation from the three basic
/// rotation matrices (its Equation 1):
///
/// ```text
/// R = Rz(α) · Ry(β) · Rx(γ)
/// ```
///
/// where α, β, γ are the yaw, pitch and roll read from the vehicle IMU.
/// [`Mat3::rotation_z`], [`Mat3::rotation_y`] and [`Mat3::rotation_x`]
/// are verbatim implementations of those matrices.
///
/// # Examples
///
/// ```
/// use cooper_geometry::{Mat3, Vec3};
///
/// // Rotating +x by 90° about z yields +y.
/// let r = Mat3::rotation_z(std::f64::consts::FRAC_PI_2);
/// let v = r * Vec3::X;
/// assert!((v - Vec3::Y).norm() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Mat3 {
    /// Row-major entries: `m[row][col]`.
    m: [[f64; 3]; 3],
}

impl Mat3 {
    /// The identity matrix.
    pub const IDENTITY: Mat3 = Mat3 {
        m: [[1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]],
    };

    /// Creates a matrix from row-major entries.
    #[inline]
    pub const fn from_rows(m: [[f64; 3]; 3]) -> Self {
        Mat3 { m }
    }

    /// Creates a matrix from three column vectors.
    pub fn from_columns(c0: Vec3, c1: Vec3, c2: Vec3) -> Self {
        Mat3::from_rows([[c0.x, c1.x, c2.x], [c0.y, c1.y, c2.y], [c0.z, c1.z, c2.z]])
    }

    /// Basic rotation about the z-axis by `alpha` radians (yaw).
    ///
    /// This is the paper's `Rz(α)`.
    pub fn rotation_z(alpha: f64) -> Self {
        let (s, c) = alpha.sin_cos();
        Mat3::from_rows([[c, -s, 0.0], [s, c, 0.0], [0.0, 0.0, 1.0]])
    }

    /// Basic rotation about the y-axis by `beta` radians (pitch).
    ///
    /// This is the paper's `Ry(β)`.
    pub fn rotation_y(beta: f64) -> Self {
        let (s, c) = beta.sin_cos();
        Mat3::from_rows([[c, 0.0, s], [0.0, 1.0, 0.0], [-s, 0.0, c]])
    }

    /// Basic rotation about the x-axis by `gamma` radians (roll).
    ///
    /// This is the paper's `Rx(γ)`.
    pub fn rotation_x(gamma: f64) -> Self {
        let (s, c) = gamma.sin_cos();
        Mat3::from_rows([[1.0, 0.0, 0.0], [0.0, c, -s], [0.0, s, c]])
    }

    /// The paper's Equation 1: `R = Rz(α)·Ry(β)·Rx(γ)` for yaw `α`,
    /// pitch `β` and roll `γ` (radians).
    pub fn from_yaw_pitch_roll(alpha: f64, beta: f64, gamma: f64) -> Self {
        Mat3::rotation_z(alpha) * Mat3::rotation_y(beta) * Mat3::rotation_x(gamma)
    }

    /// Returns entry `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if `row >= 3` or `col >= 3`.
    #[inline]
    pub fn at(&self, row: usize, col: usize) -> f64 {
        self.m[row][col]
    }

    /// Returns row `r` as a vector.
    ///
    /// # Panics
    ///
    /// Panics if `r >= 3`.
    #[inline]
    pub fn row(&self, r: usize) -> Vec3 {
        Vec3::new(self.m[r][0], self.m[r][1], self.m[r][2])
    }

    /// Returns column `c` as a vector.
    ///
    /// # Panics
    ///
    /// Panics if `c >= 3`.
    #[inline]
    pub fn column(&self, c: usize) -> Vec3 {
        Vec3::new(self.m[0][c], self.m[1][c], self.m[2][c])
    }

    /// Matrix transpose. For a rotation matrix this equals the inverse.
    pub fn transpose(&self) -> Mat3 {
        Mat3::from_rows([
            [self.m[0][0], self.m[1][0], self.m[2][0]],
            [self.m[0][1], self.m[1][1], self.m[2][1]],
            [self.m[0][2], self.m[1][2], self.m[2][2]],
        ])
    }

    /// Determinant.
    pub fn determinant(&self) -> f64 {
        let m = &self.m;
        m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1])
            - m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0])
            + m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0])
    }

    /// `true` when the matrix is orthonormal with determinant +1, i.e. a
    /// proper rotation, to within `tol`.
    pub fn is_rotation(&self, tol: f64) -> bool {
        let should_be_identity = *self * self.transpose();
        let mut max_dev: f64 = 0.0;
        for r in 0..3 {
            for c in 0..3 {
                let expect = if r == c { 1.0 } else { 0.0 };
                max_dev = max_dev.max((should_be_identity.m[r][c] - expect).abs());
            }
        }
        max_dev <= tol && (self.determinant() - 1.0).abs() <= tol
    }

    /// Extracts `(yaw, pitch, roll)` assuming this matrix was produced by
    /// [`Mat3::from_yaw_pitch_roll`]. Pitch is returned in `[-π/2, π/2]`.
    pub fn to_yaw_pitch_roll(&self) -> (f64, f64, f64) {
        // R = Rz(a)Ry(b)Rx(g):
        //   m[2][0] = -sin(b)
        //   m[2][1] = cos(b) sin(g),  m[2][2] = cos(b) cos(g)
        //   m[1][0] = sin(a) cos(b),  m[0][0] = cos(a) cos(b)
        let sb = -self.m[2][0];
        let beta = sb.clamp(-1.0, 1.0).asin();
        let cb = beta.cos();
        if cb.abs() < 1e-9 {
            // Gimbal lock: yaw and roll are degenerate; put everything in yaw.
            let alpha = (-self.m[0][1]).atan2(self.m[1][1]);
            (alpha, beta, 0.0)
        } else {
            let gamma = self.m[2][1].atan2(self.m[2][2]);
            let alpha = self.m[1][0].atan2(self.m[0][0]);
            (alpha, beta, gamma)
        }
    }
}

impl Default for Mat3 {
    fn default() -> Self {
        Mat3::IDENTITY
    }
}

impl fmt::Display for Mat3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..3 {
            writeln!(
                f,
                "[{:+.4} {:+.4} {:+.4}]",
                self.m[r][0], self.m[r][1], self.m[r][2]
            )?;
        }
        Ok(())
    }
}

impl Mul for Mat3 {
    type Output = Mat3;

    fn mul(self, rhs: Mat3) -> Mat3 {
        let mut out = [[0.0; 3]; 3];
        for (r, row) in out.iter_mut().enumerate() {
            for (c, cell) in row.iter_mut().enumerate() {
                *cell = (0..3).map(|k| self.m[r][k] * rhs.m[k][c]).sum();
            }
        }
        Mat3::from_rows(out)
    }
}

impl Mul<Vec3> for Mat3 {
    type Output = Vec3;

    #[inline]
    fn mul(self, v: Vec3) -> Vec3 {
        Vec3::new(self.row(0).dot(v), self.row(1).dot(v), self.row(2).dot(v))
    }
}

impl Add for Mat3 {
    type Output = Mat3;

    fn add(self, rhs: Mat3) -> Mat3 {
        let mut out = [[0.0; 3]; 3];
        for (r, row) in out.iter_mut().enumerate() {
            for (c, cell) in row.iter_mut().enumerate() {
                *cell = self.m[r][c] + rhs.m[r][c];
            }
        }
        Mat3::from_rows(out)
    }
}

impl Sub for Mat3 {
    type Output = Mat3;

    fn sub(self, rhs: Mat3) -> Mat3 {
        let mut out = [[0.0; 3]; 3];
        for (r, row) in out.iter_mut().enumerate() {
            for (c, cell) in row.iter_mut().enumerate() {
                *cell = self.m[r][c] - rhs.m[r][c];
            }
        }
        Mat3::from_rows(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, FRAC_PI_4, PI};

    fn assert_vec_close(a: Vec3, b: Vec3) {
        assert!((a - b).norm() < 1e-12, "{a} != {b}");
    }

    #[test]
    fn identity_is_noop() {
        let v = Vec3::new(1.0, -2.0, 3.0);
        assert_eq!(Mat3::IDENTITY * v, v);
        assert_eq!(Mat3::default(), Mat3::IDENTITY);
    }

    #[test]
    fn rotation_z_quarter_turn() {
        let r = Mat3::rotation_z(FRAC_PI_2);
        assert_vec_close(r * Vec3::X, Vec3::Y);
        assert_vec_close(r * Vec3::Y, -Vec3::X);
        assert_vec_close(r * Vec3::Z, Vec3::Z);
    }

    #[test]
    fn rotation_y_quarter_turn() {
        let r = Mat3::rotation_y(FRAC_PI_2);
        assert_vec_close(r * Vec3::X, -Vec3::Z);
        assert_vec_close(r * Vec3::Z, Vec3::X);
        assert_vec_close(r * Vec3::Y, Vec3::Y);
    }

    #[test]
    fn rotation_x_quarter_turn() {
        let r = Mat3::rotation_x(FRAC_PI_2);
        assert_vec_close(r * Vec3::Y, Vec3::Z);
        assert_vec_close(r * Vec3::Z, -Vec3::Y);
        assert_vec_close(r * Vec3::X, Vec3::X);
    }

    #[test]
    fn equation_one_composition_order() {
        // Equation 1 applies roll first, then pitch, then yaw.
        let r = Mat3::from_yaw_pitch_roll(0.3, 0.2, 0.1);
        let manual = Mat3::rotation_z(0.3) * Mat3::rotation_y(0.2) * Mat3::rotation_x(0.1);
        for row in 0..3 {
            for col in 0..3 {
                assert!((r.at(row, col) - manual.at(row, col)).abs() < 1e-15);
            }
        }
    }

    #[test]
    fn rotations_are_proper() {
        for &(a, b, g) in &[
            (0.0, 0.0, 0.0),
            (FRAC_PI_4, 0.1, -0.2),
            (PI - 0.1, -1.0, 2.5),
            (-2.0, 1.2, -3.0),
        ] {
            let r = Mat3::from_yaw_pitch_roll(a, b, g);
            assert!(r.is_rotation(1e-12), "not a rotation for ({a},{b},{g})");
        }
    }

    #[test]
    fn transpose_is_inverse_for_rotations() {
        let r = Mat3::from_yaw_pitch_roll(1.0, -0.5, 0.25);
        let prod = r * r.transpose();
        assert!(prod.is_rotation(1e-12));
        let v = Vec3::new(4.0, -1.0, 2.0);
        assert_vec_close(r.transpose() * (r * v), v);
    }

    #[test]
    fn determinant_of_rotation_is_one() {
        let r = Mat3::from_yaw_pitch_roll(0.7, 0.3, -0.9);
        assert!((r.determinant() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn yaw_pitch_roll_round_trip() {
        for &(a, b, g) in &[
            (0.0, 0.0, 0.0),
            (0.5, 0.25, -0.125),
            (-2.8, 1.2, 3.0),
            (3.0, -1.4, -2.9),
        ] {
            let r = Mat3::from_yaw_pitch_roll(a, b, g);
            let (a2, b2, g2) = r.to_yaw_pitch_roll();
            let r2 = Mat3::from_yaw_pitch_roll(a2, b2, g2);
            // Angles may differ by 2π equivalences but the matrix must match.
            for row in 0..3 {
                for col in 0..3 {
                    assert!(
                        (r.at(row, col) - r2.at(row, col)).abs() < 1e-9,
                        "round trip failed for ({a},{b},{g})"
                    );
                }
            }
        }
    }

    #[test]
    fn rows_and_columns() {
        let m = Mat3::from_rows([[1.0, 2.0, 3.0], [4.0, 5.0, 6.0], [7.0, 8.0, 9.0]]);
        assert_eq!(m.row(1), Vec3::new(4.0, 5.0, 6.0));
        assert_eq!(m.column(2), Vec3::new(3.0, 6.0, 9.0));
        let from_cols = Mat3::from_columns(m.column(0), m.column(1), m.column(2));
        assert_eq!(from_cols, m);
    }

    #[test]
    fn add_sub_matrices() {
        let a = Mat3::IDENTITY;
        let z = a - a;
        assert_eq!(z.determinant(), 0.0);
        assert_eq!(a + z, a);
    }

    #[test]
    fn non_rotation_detected() {
        let scaled = Mat3::from_rows([[2.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]]);
        assert!(!scaled.is_rotation(1e-9));
        // A reflection has determinant -1.
        let reflect = Mat3::from_rows([[-1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]]);
        assert!(!reflect.is_rotation(1e-9));
    }
}
