//! GPS fixes and their conversion to the local east-north-up frame.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::Vec3;

/// Mean Earth radius in metres, used by the equirectangular local
/// approximation. Over V2V ranges (≤ a few hundred metres) the
/// approximation error is far below GPS noise.
pub const EARTH_RADIUS_M: f64 = 6_371_000.0;

/// A GPS fix: geodetic latitude/longitude in degrees plus altitude in
/// metres.
///
/// The Cooper exchange package carries the transmitter's GPS reading so the
/// receiver can compute the translation `Δd` of Equation 3. [`enu_offset`]
/// performs that computation.
///
/// # Examples
///
/// ```
/// use cooper_geometry::{enu_offset, GpsFix};
///
/// let a = GpsFix::new(33.2075, -97.1526, 190.0); // UNT campus
/// let b = GpsFix::new(33.2076, -97.1526, 190.0); // ~11 m north
/// let enu = enu_offset(&a, &b);
/// assert!((enu.y - 11.1).abs() < 0.2); // north ≈ +y
/// assert!(enu.x.abs() < 0.01);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct GpsFix {
    /// Geodetic latitude, degrees, positive north.
    pub latitude: f64,
    /// Geodetic longitude, degrees, positive east.
    pub longitude: f64,
    /// Altitude above the reference ellipsoid, metres.
    pub altitude: f64,
}

impl GpsFix {
    /// Creates a fix.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when latitude is outside `[-90, 90]` or
    /// longitude outside `[-180, 180]`.
    pub fn new(latitude: f64, longitude: f64, altitude: f64) -> Self {
        debug_assert!((-90.0..=90.0).contains(&latitude), "latitude {latitude}");
        debug_assert!(
            (-180.0..=180.0).contains(&longitude),
            "longitude {longitude}"
        );
        GpsFix {
            latitude,
            longitude,
            altitude,
        }
    }

    /// Returns a fix displaced by an east-north-up offset in metres.
    ///
    /// Inverse of [`enu_offset`] (to within the flat-earth approximation).
    pub fn offset_by(&self, enu: Vec3) -> GpsFix {
        let lat_rad = self.latitude.to_radians();
        let dlat = enu.y / EARTH_RADIUS_M;
        let dlon = enu.x / (EARTH_RADIUS_M * lat_rad.cos());
        GpsFix {
            latitude: self.latitude + dlat.to_degrees(),
            longitude: self.longitude + dlon.to_degrees(),
            altitude: self.altitude + enu.z,
        }
    }
}

impl fmt::Display for GpsFix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "({:.6}°, {:.6}°, {:.1} m)",
            self.latitude, self.longitude, self.altitude
        )
    }
}

/// The east-north-up offset (metres) of `to` relative to `from`, using an
/// equirectangular approximation centered at `from`.
///
/// `x` is east, `y` is north, `z` is up — matching the world frame used by
/// the simulator and the fusion pipeline.
pub fn enu_offset(from: &GpsFix, to: &GpsFix) -> Vec3 {
    let lat0 = from.latitude.to_radians();
    let dlat = (to.latitude - from.latitude).to_radians();
    let dlon = (to.longitude - from.longitude).to_radians();
    Vec3::new(
        EARTH_RADIUS_M * dlon * lat0.cos(),
        EARTH_RADIUS_M * dlat,
        to.altitude - from.altitude,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_offset_for_same_fix() {
        let fix = GpsFix::new(40.0, -100.0, 200.0);
        assert!(enu_offset(&fix, &fix).norm() < 1e-12);
    }

    #[test]
    fn northward_offset_is_positive_y() {
        let a = GpsFix::new(40.0, -100.0, 0.0);
        let b = GpsFix::new(40.001, -100.0, 0.0);
        let enu = enu_offset(&a, &b);
        assert!(enu.y > 100.0 && enu.y < 120.0, "y = {}", enu.y);
        assert!(enu.x.abs() < 1e-9);
    }

    #[test]
    fn eastward_offset_scales_with_latitude() {
        let equator_a = GpsFix::new(0.0, 10.0, 0.0);
        let equator_b = GpsFix::new(0.0, 10.001, 0.0);
        let high_a = GpsFix::new(60.0, 10.0, 0.0);
        let high_b = GpsFix::new(60.0, 10.001, 0.0);
        let e0 = enu_offset(&equator_a, &equator_b).x;
        let e60 = enu_offset(&high_a, &high_b).x;
        // cos(60°) = 0.5, so the same longitude step is half the distance.
        assert!((e60 / e0 - 0.5).abs() < 1e-6);
    }

    #[test]
    fn offset_by_round_trip() {
        let origin = GpsFix::new(33.2075, -97.1526, 190.0);
        let delta = Vec3::new(25.0, -14.0, 2.0);
        let moved = origin.offset_by(delta);
        let back = enu_offset(&origin, &moved);
        assert!(
            (back - delta).norm() < 1e-6,
            "round trip error {}",
            (back - delta).norm()
        );
    }

    #[test]
    fn altitude_maps_to_z() {
        let a = GpsFix::new(10.0, 10.0, 100.0);
        let b = GpsFix::new(10.0, 10.0, 130.0);
        assert_eq!(enu_offset(&a, &b).z, 30.0);
    }

    #[test]
    fn display_formats() {
        let s = format!("{}", GpsFix::new(1.0, 2.0, 3.0));
        assert!(s.contains("1.000000"));
    }
}
