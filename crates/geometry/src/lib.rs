//! Geometry primitives for the Cooper cooperative-perception system.
//!
//! This crate implements the mathematical substrate that the Cooper paper
//! (Chen et al., ICDCS 2019) relies on for aligning point clouds collected
//! by different vehicles:
//!
//! * [`Vec3`] / [`Mat3`] — plain 3-D linear algebra.
//! * [`Mat3::rotation_z`], [`Mat3::rotation_y`], [`Mat3::rotation_x`] and
//!   [`Attitude::rotation_matrix`] — the paper's Equation 1,
//!   `R = Rz(α)·Ry(β)·Rx(γ)`.
//! * [`RigidTransform`] — the paper's Equation 3, `p' = R·p + Δd`.
//! * [`Obb3`] — oriented 3-D bounding boxes with bird's-eye-view and full
//!   3-D IoU, used to match detections against ground truth.
//! * [`GpsFix`] and [`enu_offset`] — GPS fixes and their conversion to the
//!   local east-north-up frame that vehicles fuse in.
//!
//! # Examples
//!
//! Align a point observed by a transmitting vehicle into a receiver's frame:
//!
//! ```
//! use cooper_geometry::{Attitude, Pose, RigidTransform, Vec3};
//!
//! let transmitter = Pose::new(Vec3::new(10.0, 5.0, 0.0), Attitude::from_yaw(0.5));
//! let receiver = Pose::new(Vec3::ZERO, Attitude::level());
//! let align = RigidTransform::between(&transmitter, &receiver);
//!
//! // A point 2 m in front of the transmitter, expressed in its local frame.
//! let local = Vec3::new(2.0, 0.0, 0.0);
//! let in_receiver_frame = align.apply(local);
//! assert!((in_receiver_frame - Vec3::new(10.0 + 2.0 * 0.5f64.cos(),
//!                                        5.0 + 2.0 * 0.5f64.sin(),
//!                                        0.0)).norm() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod angles;
mod boxes;
mod gps;
mod mat3;
mod pose;
mod vec3;

pub use angles::{normalize_angle, Degrees, Radians};
pub use boxes::{Aabb3, Obb3};
pub use gps::{enu_offset, GpsFix, EARTH_RADIUS_M};
pub use mat3::Mat3;
pub use pose::{Attitude, Pose, RigidTransform};
pub use vec3::Vec3;

/// Numerical tolerance used by approximate comparisons throughout the
/// workspace (orthonormality checks, round-trip assertions, IoU clipping).
pub const EPSILON: f64 = 1e-9;
