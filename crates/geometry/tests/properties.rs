//! Property-based tests for the geometry substrate.

use cooper_geometry::{
    enu_offset, normalize_angle, Aabb3, Attitude, GpsFix, Mat3, Obb3, Pose, RigidTransform, Vec3,
};
use proptest::prelude::*;
use std::f64::consts::PI;

fn angle() -> impl Strategy<Value = f64> {
    -PI..PI
}

fn coord() -> impl Strategy<Value = f64> {
    -100.0..100.0f64
}

fn vec3() -> impl Strategy<Value = Vec3> {
    (coord(), coord(), coord()).prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

fn attitude() -> impl Strategy<Value = Attitude> {
    (angle(), -1.4..1.4f64, angle()).prop_map(|(y, p, r)| Attitude::new(y, p, r))
}

fn pose() -> impl Strategy<Value = Pose> {
    (vec3(), attitude()).prop_map(|(p, a)| Pose::new(p, a))
}

fn obb() -> impl Strategy<Value = Obb3> {
    (vec3(), (0.5..10.0f64, 0.5..10.0f64, 0.5..10.0f64), angle())
        .prop_map(|(c, (l, w, h), yaw)| Obb3::new(c, Vec3::new(l, w, h), yaw))
}

proptest! {
    #[test]
    fn rotation_matrices_are_proper(yaw in angle(), pitch in angle(), roll in angle()) {
        let r = Mat3::from_yaw_pitch_roll(yaw, pitch, roll);
        prop_assert!(r.is_rotation(1e-9));
    }

    #[test]
    fn rotation_transpose_is_inverse(yaw in angle(), pitch in angle(), roll in angle(), v in vec3()) {
        let r = Mat3::from_yaw_pitch_roll(yaw, pitch, roll);
        let back = r.transpose() * (r * v);
        prop_assert!((back - v).norm() < 1e-8);
    }

    #[test]
    fn rotation_preserves_norm(yaw in angle(), pitch in angle(), roll in angle(), v in vec3()) {
        let r = Mat3::from_yaw_pitch_roll(yaw, pitch, roll);
        prop_assert!(((r * v).norm() - v.norm()).abs() < 1e-8);
    }

    #[test]
    fn normalize_angle_in_range(theta in -1e4..1e4f64) {
        let n = normalize_angle(theta);
        prop_assert!(n > -PI - 1e-9 && n <= PI + 1e-9);
        // Same direction: sin/cos must match.
        prop_assert!((n.sin() - theta.sin()).abs() < 1e-6);
        prop_assert!((n.cos() - theta.cos()).abs() < 1e-6);
    }

    #[test]
    fn rigid_transform_round_trip(p1 in pose(), p2 in pose(), v in vec3()) {
        let t = RigidTransform::between(&p1, &p2);
        let back = t.inverse().apply(t.apply(v));
        prop_assert!((back - v).norm() < 1e-7);
    }

    #[test]
    fn between_composes_with_world(p1 in pose(), p2 in pose(), v in vec3()) {
        let t = RigidTransform::between(&p1, &p2);
        let via_world = p2.world_to_local(p1.local_to_world(v));
        prop_assert!((t.apply(v) - via_world).norm() < 1e-7);
    }

    #[test]
    fn between_inverse_is_swapped(p1 in pose(), p2 in pose(), v in vec3()) {
        let forward = RigidTransform::between(&p1, &p2);
        let backward = RigidTransform::between(&p2, &p1);
        prop_assert!((backward.apply(forward.apply(v)) - v).norm() < 1e-7);
    }

    #[test]
    fn iou_bounds_and_symmetry(a in obb(), b in obb()) {
        let ab = a.iou_bev(&b);
        let ba = b.iou_bev(&a);
        prop_assert!((0.0..=1.0).contains(&ab));
        prop_assert!((ab - ba).abs() < 1e-6, "asymmetric: {ab} vs {ba}");
        let ab3 = a.iou_3d(&b);
        prop_assert!((0.0..=1.0).contains(&ab3));
        prop_assert!((ab3 - b.iou_3d(&a)).abs() < 1e-6);
        // 3-D IoU can never exceed BEV IoU... not strictly true in general,
        // but self-IoU must be exactly 1.
        prop_assert!((a.iou_bev(&a) - 1.0).abs() < 1e-9);
        prop_assert!((a.iou_3d(&a) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn obb_bounding_aabb_contains_box_points(b in obb(), fx in 0.0..1.0f64, fy in 0.0..1.0f64, fz in 0.0..1.0f64) {
        // A random point inside the OBB must be inside its bounding AABB.
        let local = Vec3::new(
            (fx - 0.5) * b.size.x,
            (fy - 0.5) * b.size.y,
            (fz - 0.5) * b.size.z,
        );
        let r = Mat3::rotation_z(b.yaw);
        let world = r * local + b.center;
        prop_assert!(b.contains(world));
        prop_assert!(b.bounding_aabb().inflated(1e-9).contains(world));
    }

    #[test]
    fn aabb_from_points_contains_all(pts in prop::collection::vec(vec3(), 1..50)) {
        let b = Aabb3::from_points(pts.iter().copied()).unwrap();
        for p in pts {
            prop_assert!(b.contains(p));
        }
    }

    #[test]
    fn gps_offset_round_trip(lat in -70.0..70.0f64, lon in -170.0..170.0f64,
                             dx in -500.0..500.0f64, dy in -500.0..500.0f64, dz in -50.0..50.0f64) {
        let origin = GpsFix::new(lat, lon, 100.0);
        let delta = Vec3::new(dx, dy, dz);
        let moved = origin.offset_by(delta);
        let back = enu_offset(&origin, &moved);
        prop_assert!((back - delta).norm() < 1e-4, "error {}", (back - delta).norm());
    }

    #[test]
    fn attitude_difference_zero_for_self(a in attitude()) {
        let d = a.difference(&a);
        prop_assert!(d.yaw.abs() < 1e-12 && d.pitch.abs() < 1e-12 && d.roll.abs() < 1e-12);
    }
}
