//! Canonical names for every metric and span the workspace emits.
//!
//! Instrumentation call sites reference these consts instead of string
//! literals, so a typo'd name is a compile error at the call site and
//! the [`is_registered_metric`] / [`is_registered_span`] checks let
//! tests fail on any emitted name that is not declared here.
//!
//! Two metric families carry a dynamic suffix (the drop-reason kind):
//! `pipeline.drop.<kind>` and `fleet.encode_drop.<kind>`. Those are
//! declared by prefix in [`DYNAMIC_COUNTER_PREFIXES`].

// --- counters -----------------------------------------------------------

/// Packets merged into the fused cloud, per `fuse_packets` call.
pub const PIPELINE_PACKETS_FUSED: &str = "pipeline.packets_fused";
/// Packets rejected during fusion (decode or alignment failure).
pub const PIPELINE_PACKETS_DROPPED: &str = "pipeline.packets_dropped";
/// Remote points merged into the fused cloud.
pub const PIPELINE_POINTS_MERGED: &str = "pipeline.points_merged";
/// Alignment-guard evaluations.
pub const ALIGN_EVALUATED: &str = "align.evaluated";
/// Packets the guard accepted after ICP refinement.
pub const ALIGN_REFINED: &str = "align.refined";
/// Packets the guard rejected outright.
pub const ALIGN_REJECTED: &str = "align.rejected";
/// Payload bytes that reached receivers' inboxes.
pub const FLEET_BYTES_RECEIVED: &str = "fleet.bytes_received";
/// Transfers that exceeded the delivery deadline.
pub const FLEET_DEADLINE_MISS: &str = "fleet.deadline_miss";
/// Partial deliveries whose prefix decoded into a usable packet.
pub const FLEET_PARTIAL_SALVAGED: &str = "fleet.partial_salvaged";
/// Partial deliveries whose prefix could not be decoded.
pub const FLEET_SALVAGE_FAILED: &str = "fleet.salvage_failed";
/// Transfers the bandwidth governor skipped over budget.
pub const FLEET_BUDGET_SKIP: &str = "fleet.budget_skip";
/// Governed transfers sent as quantized BEV feature frames (v3).
pub const FLEET_FEATURE_SENDS: &str = "fleet.feature_sends";
/// Remote feature frames fused at the BEV level (F-Cooper path).
pub const PIPELINE_FEATURES_FUSED: &str = "pipeline.features_fused";
/// Governor decisions that sent a feature frame instead of points.
pub const V2X_GOVERNOR_FEATURE_FRAMES: &str = "v2x.governor.feature_frames";
/// Governor decisions that narrowed the payload to the ROI.
pub const V2X_GOVERNOR_ROI_NARROWED: &str = "v2x.governor.roi_narrowed";
/// Governor decisions that sent a background delta frame.
pub const V2X_GOVERNOR_DELTA_FRAMES: &str = "v2x.governor.delta_frames";
/// Governor decisions that skipped a transfer over budget.
pub const V2X_GOVERNOR_BUDGET_SKIPS: &str = "v2x.governor.budget_skips";
/// ARQ frames retransmitted beyond the first attempt.
pub const V2X_ARQ_RETRANSMITS: &str = "v2x.arq.retransmits";
/// ARQ transfers cut off by the delivery deadline.
pub const V2X_ARQ_DEADLINE_MISS: &str = "v2x.arq.deadline_miss";
/// Sends rejected because the airtime window was saturated.
pub const V2X_WINDOW_SATURATED: &str = "v2x.window_saturated";
/// Link-layer frames put on the air.
pub const V2X_FRAMES: &str = "v2x.frames";
/// Link-layer frames lost in the channel.
pub const V2X_FRAMES_LOST: &str = "v2x.frames_lost";
/// Bytes put on the air (payload plus per-frame overhead).
pub const V2X_TX_BYTES: &str = "v2x.tx_bytes";
/// Occupied voxels after voxelization.
pub const SPOD_VOXELS_OCCUPIED: &str = "spod.voxels_occupied";
/// Incremental perceive calls answered entirely from cache (input
/// bitwise-unchanged).
pub const SPOD_INCREMENTAL_HITS: &str = "spod.incremental.hits";
/// Voxelization chunk partials reused across steps.
pub const SPOD_INCREMENTAL_CHUNKS_REUSED: &str = "spod.incremental.chunks_reused";
/// Cached VFE rows copied instead of re-encoded.
pub const SPOD_INCREMENTAL_VOXELS_REUSED: &str = "spod.incremental.voxels_reused";
/// Detections fed into per-vehicle trackers.
pub const TRACK_DETECTIONS_IN: &str = "track.detections_in";
/// New tentative tracks spawned.
pub const TRACK_SPAWNED: &str = "track.spawned";
/// Tracks promoted (or restored) to Confirmed.
pub const TRACK_PROMOTED: &str = "track.promoted";
/// Confirmed tracks that fell back to Coasting on a miss.
pub const TRACK_COASTED: &str = "track.coasted";
/// Tracks dropped after exceeding the miss budget.
pub const TRACK_DROPPED: &str = "track.dropped";
/// Link-layer frames delivered with damaged content (bit flips or
/// mid-frame truncation the FCS caught).
pub const V2X_INTEGRITY_CORRUPTED_FRAMES: &str = "v2x.integrity.corrupted_frames";
/// Received packets whose CRC-32 trailer failed verification.
pub const V2X_INTEGRITY_CRC_FAIL: &str = "v2x.integrity.crc_fail";
/// Trust violations recorded against senders (CRC failures, alignment
/// rejections, consistency violations).
pub const TRUST_VIOLATIONS: &str = "trust.violations";
/// Sender links escalated to Quarantined.
pub const TRUST_QUARANTINES: &str = "trust.quarantines";
/// Sender links re-admitted to Trusted after clean probation.
pub const TRUST_REINSTATED: &str = "trust.reinstated";
/// Transfers skipped because the sender link was quarantined.
pub const TRUST_BLOCKED_TRANSFERS: &str = "trust.blocked_transfers";
/// Consistency-guard evaluations of remote packets.
pub const GUARD_CONSISTENCY_CHECKS: &str = "guard.consistency.checks";
/// Remote packets the consistency guard rejected.
pub const GUARD_CONSISTENCY_REJECTS: &str = "guard.consistency.rejects";
/// Remote points flagged as ghosts in ego-observed free space.
pub const GUARD_CONSISTENCY_GHOST_POINTS: &str = "guard.consistency.ghost_points";

/// Prefix of the per-kind fusion drop counters: `pipeline.drop.<kind>`.
pub const PIPELINE_DROP_PREFIX: &str = "pipeline.drop.";
/// Prefix of the per-kind encode drop counters:
/// `fleet.encode_drop.<kind>`.
pub const FLEET_ENCODE_DROP_PREFIX: &str = "fleet.encode_drop.";

// --- gauges -------------------------------------------------------------

/// Worker threads the fleet executor ran with.
pub const FLEET_THREADS: &str = "fleet.threads";

// --- value histograms ---------------------------------------------------

/// Scan-phase wall time per step, microseconds.
pub const FLEET_PHASE_SCAN_US: &str = "fleet.phase.scan_us";
/// Exchange-phase wall time per step, microseconds.
pub const FLEET_PHASE_EXCHANGE_US: &str = "fleet.phase.exchange_us";
/// Perceive-phase wall time per step, microseconds.
pub const FLEET_PHASE_PERCEIVE_US: &str = "fleet.phase.perceive_us";
/// v2 codec wire size as a per-mille ratio of the v1 size.
pub const CODEC_V2_BYTES_RATIO: &str = "codec.v2.bytes_ratio";
/// v3 feature-frame wire size as a per-mille ratio of the v1 raw size.
pub const CODEC_V3_BYTES_RATIO: &str = "codec.v3.bytes_ratio";
/// Alignment-guard residual, millimetres.
pub const ALIGN_RESIDUAL: &str = "align.residual";
/// Encoded packet wire size, bytes.
pub const PACKET_WIRE_BYTES: &str = "packet.wire_bytes";
/// Delivered fraction of partial transfers, per mille.
pub const V2X_PARTIAL_FRACTION: &str = "v2x.partial.fraction";

// --- event kinds --------------------------------------------------------

/// Per-vehicle per-step structured event emitted by the fleet runner.
pub const EVENT_FLEET_VEHICLE_STEP: &str = "fleet.vehicle_step";

// --- spans --------------------------------------------------------------

/// Whole fleet run.
pub const SPAN_FLEET_RUN: &str = "fleet.run";
/// One simulation step.
pub const SPAN_FLEET_STEP: &str = "fleet.step";
/// Step phase 1: scan and encode.
pub const SPAN_FLEET_SCAN: &str = "fleet.scan";
/// Step phase 2: packet exchange.
pub const SPAN_FLEET_EXCHANGE: &str = "fleet.exchange";
/// Step phase 3: fuse and detect.
pub const SPAN_FLEET_PERCEIVE: &str = "fleet.perceive";
/// Cooperative perception over one inbox.
pub const SPAN_PIPELINE_PERCEIVE: &str = "pipeline.perceive";
/// Detection over one (fused) cloud.
pub const SPAN_PIPELINE_PERCEIVE_SINGLE: &str = "pipeline.perceive_single";
/// Packet fusion into the local cloud.
pub const SPAN_PIPELINE_FUSE: &str = "pipeline.fuse";
/// BEV-feature fusion of remote feature frames (F-Cooper path).
pub const SPAN_PIPELINE_FUSE_FEATURES: &str = "pipeline.fuse_features";
/// Packet encode to wire bytes.
pub const SPAN_PACKET_ENCODE: &str = "packet.encode";
/// Packet decode from wire bytes.
pub const SPAN_PACKET_DECODE: &str = "packet.decode";
/// Prefix-salvage decode of a truncated packet.
pub const SPAN_PACKET_DECODE_PARTIAL: &str = "packet.decode_partial";
/// Payload (point cloud) decode inside fusion.
pub const SPAN_PACKET_PAYLOAD_DECODE: &str = "packet.payload_decode";
/// SPOD feature extraction (preprocess through BEV).
pub const SPAN_SPOD_FEATURIZE: &str = "spod.featurize";
/// Densify and ground removal.
pub const SPAN_SPOD_PREPROCESS: &str = "spod.preprocess";
/// Point cloud to voxel grid.
pub const SPAN_SPOD_VOXELIZE: &str = "spod.voxelize";
/// Middle feature layers (VFE through BEV collapse).
pub const SPAN_SPOD_MIDDLE: &str = "spod.middle";
/// Voxel feature encoding.
pub const SPAN_SPOD_VFE: &str = "spod.vfe";
/// First sparse convolution block.
pub const SPAN_SPOD_CONV1: &str = "spod.conv1";
/// Second sparse convolution block.
pub const SPAN_SPOD_CONV2: &str = "spod.conv2";
/// Submanifold conv neighbour-table construction (shared by both conv
/// layers).
pub const SPAN_SPOD_RULEBOOK: &str = "spod.rulebook";
/// BEV collapse of the deep feature volume.
pub const SPAN_SPOD_BEV: &str = "spod.bev";
/// Region proposal head.
pub const SPAN_SPOD_RPN: &str = "spod.rpn";
/// Non-maximum suppression.
pub const SPAN_SPOD_NMS: &str = "spod.nms";
/// One send attempt through the shared medium.
pub const SPAN_V2X_TRY_SEND: &str = "v2x.try_send";
/// Channel round-trip simulation.
pub const SPAN_V2X_SIMULATE: &str = "v2x.simulate";

/// Every exact (non-dynamic) counter, gauge, value-histogram, and event
/// name the workspace emits.
pub const ALL_METRICS: &[&str] = &[
    PIPELINE_PACKETS_FUSED,
    PIPELINE_PACKETS_DROPPED,
    PIPELINE_POINTS_MERGED,
    ALIGN_EVALUATED,
    ALIGN_REFINED,
    ALIGN_REJECTED,
    FLEET_BYTES_RECEIVED,
    FLEET_DEADLINE_MISS,
    FLEET_PARTIAL_SALVAGED,
    FLEET_SALVAGE_FAILED,
    FLEET_BUDGET_SKIP,
    FLEET_FEATURE_SENDS,
    PIPELINE_FEATURES_FUSED,
    V2X_GOVERNOR_FEATURE_FRAMES,
    V2X_GOVERNOR_ROI_NARROWED,
    V2X_GOVERNOR_DELTA_FRAMES,
    V2X_GOVERNOR_BUDGET_SKIPS,
    V2X_ARQ_RETRANSMITS,
    V2X_ARQ_DEADLINE_MISS,
    V2X_WINDOW_SATURATED,
    V2X_FRAMES,
    V2X_FRAMES_LOST,
    V2X_TX_BYTES,
    SPOD_VOXELS_OCCUPIED,
    SPOD_INCREMENTAL_HITS,
    SPOD_INCREMENTAL_CHUNKS_REUSED,
    SPOD_INCREMENTAL_VOXELS_REUSED,
    TRACK_DETECTIONS_IN,
    TRACK_SPAWNED,
    TRACK_PROMOTED,
    TRACK_COASTED,
    TRACK_DROPPED,
    V2X_INTEGRITY_CORRUPTED_FRAMES,
    V2X_INTEGRITY_CRC_FAIL,
    TRUST_VIOLATIONS,
    TRUST_QUARANTINES,
    TRUST_REINSTATED,
    TRUST_BLOCKED_TRANSFERS,
    GUARD_CONSISTENCY_CHECKS,
    GUARD_CONSISTENCY_REJECTS,
    GUARD_CONSISTENCY_GHOST_POINTS,
    FLEET_THREADS,
    FLEET_PHASE_SCAN_US,
    FLEET_PHASE_EXCHANGE_US,
    FLEET_PHASE_PERCEIVE_US,
    CODEC_V2_BYTES_RATIO,
    CODEC_V3_BYTES_RATIO,
    ALIGN_RESIDUAL,
    PACKET_WIRE_BYTES,
    V2X_PARTIAL_FRACTION,
    EVENT_FLEET_VEHICLE_STEP,
];

/// Counter families whose full name carries a dynamic `<kind>` suffix.
pub const DYNAMIC_COUNTER_PREFIXES: &[&str] = &[PIPELINE_DROP_PREFIX, FLEET_ENCODE_DROP_PREFIX];

/// Every span name the workspace opens. Span *paths* in snapshots are
/// `/`-joined sequences of these.
pub const ALL_SPANS: &[&str] = &[
    SPAN_FLEET_RUN,
    SPAN_FLEET_STEP,
    SPAN_FLEET_SCAN,
    SPAN_FLEET_EXCHANGE,
    SPAN_FLEET_PERCEIVE,
    SPAN_PIPELINE_PERCEIVE,
    SPAN_PIPELINE_PERCEIVE_SINGLE,
    SPAN_PIPELINE_FUSE,
    SPAN_PIPELINE_FUSE_FEATURES,
    SPAN_PACKET_ENCODE,
    SPAN_PACKET_DECODE,
    SPAN_PACKET_DECODE_PARTIAL,
    SPAN_PACKET_PAYLOAD_DECODE,
    SPAN_SPOD_FEATURIZE,
    SPAN_SPOD_PREPROCESS,
    SPAN_SPOD_VOXELIZE,
    SPAN_SPOD_MIDDLE,
    SPAN_SPOD_VFE,
    SPAN_SPOD_CONV1,
    SPAN_SPOD_CONV2,
    SPAN_SPOD_RULEBOOK,
    SPAN_SPOD_BEV,
    SPAN_SPOD_RPN,
    SPAN_SPOD_NMS,
    SPAN_V2X_TRY_SEND,
    SPAN_V2X_SIMULATE,
];

/// The SPOD sub-phase spans the profiler decomposes `perceive_us` into.
/// `featurize` and `middle` are grouping spans whose *self* time (loop
/// overhead around the VFE and sparse-conv stages) still belongs to the
/// SPOD decomposition, so they count toward coverage alongside the leaf
/// stages they contain.
pub const SPOD_SUBPHASES: &[&str] = &[
    SPAN_SPOD_PREPROCESS,
    SPAN_SPOD_VOXELIZE,
    SPAN_SPOD_FEATURIZE,
    SPAN_SPOD_VFE,
    SPAN_SPOD_MIDDLE,
    SPAN_SPOD_CONV1,
    SPAN_SPOD_CONV2,
    SPAN_SPOD_RULEBOOK,
    SPAN_SPOD_BEV,
    SPAN_SPOD_RPN,
    SPAN_SPOD_NMS,
];

/// `true` when `name` is a declared metric: either an exact entry of
/// [`ALL_METRICS`] or a dynamic family prefix followed by a non-empty
/// kind.
pub fn is_registered_metric(name: &str) -> bool {
    if ALL_METRICS.contains(&name) {
        return true;
    }
    DYNAMIC_COUNTER_PREFIXES
        .iter()
        .any(|prefix| name.len() > prefix.len() && name.starts_with(prefix))
}

/// `true` when every `/`-separated segment of a span path is a declared
/// span name.
pub fn is_registered_span(path: &str) -> bool {
    !path.is_empty() && path.split('/').all(|segment| ALL_SPANS.contains(&segment))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_metric_names_are_registered() {
        assert!(is_registered_metric(PIPELINE_PACKETS_FUSED));
        assert!(is_registered_metric(V2X_ARQ_RETRANSMITS));
        assert!(is_registered_metric(FLEET_PHASE_PERCEIVE_US));
        assert!(!is_registered_metric("pipeline.packets_fussed"));
        assert!(!is_registered_metric(""));
    }

    #[test]
    fn dynamic_families_require_a_kind_suffix() {
        assert!(is_registered_metric("pipeline.drop.truncated"));
        assert!(is_registered_metric("fleet.encode_drop.codec"));
        assert!(!is_registered_metric("pipeline.drop."));
        assert!(!is_registered_metric("fleet.encode_drop."));
        assert!(!is_registered_metric("fleet.drop.truncated"));
    }

    #[test]
    fn span_paths_validate_per_segment() {
        assert!(is_registered_span(SPAN_SPOD_RPN));
        assert!(is_registered_span(
            "pipeline.perceive/pipeline.perceive_single/spod.featurize/spod.middle/spod.vfe"
        ));
        assert!(!is_registered_span("pipeline.perceive/spod.typo"));
        assert!(!is_registered_span(""));
    }

    #[test]
    fn registry_has_no_duplicates() {
        for (i, a) in ALL_METRICS.iter().enumerate() {
            assert!(!ALL_METRICS[i + 1..].contains(a), "duplicate metric {a}");
        }
        for (i, a) in ALL_SPANS.iter().enumerate() {
            assert!(!ALL_SPANS[i + 1..].contains(a), "duplicate span {a}");
        }
    }
}
