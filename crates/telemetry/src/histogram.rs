//! Fixed-bucket histogram with percentile estimation.
//!
//! Buckets are powers of two: bucket `i` covers values whose upper
//! bound is `2^i - 1` (bucket 0 holds exactly zero). This gives
//! constant-time recording, a fixed 48-slot footprint regardless of
//! value range, and relative error bounded by 2x on percentile
//! estimates — ample for microsecond-scale latency reporting, where the
//! interesting differences are orders of magnitude.

/// Number of power-of-two buckets; covers the full `u64` range because
/// bucket 47 is open-ended.
pub const BUCKETS: usize = 48;

/// A fixed-footprint histogram over `u64` values (durations in
/// microseconds, payload sizes in bytes, ...).
#[derive(Clone, Debug)]
pub struct Histogram {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: [u64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub const fn new() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; BUCKETS],
        }
    }

    fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            ((64 - value.leading_zeros()) as usize).min(BUCKETS - 1)
        }
    }

    /// Inclusive upper bound of bucket `i`; the last bucket is
    /// open-ended and reports `u64::MAX`.
    fn bucket_upper(i: usize) -> u64 {
        if i >= BUCKETS - 1 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.buckets[Self::bucket_index(value)] += 1;
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observation, or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest observation, or 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean observation, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimates the `q`-quantile (`q` in `[0, 1]`) as the upper bound
    /// of the first bucket whose cumulative count reaches the rank,
    /// clamped to the observed maximum. Exact when all observations in
    /// the answering bucket share a value; otherwise within 2x.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            cumulative += n;
            if cumulative >= rank {
                return Self::bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zeroes() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.percentile(0.5), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn percentiles_at_bucket_boundaries() {
        // 0, 1, 3, 7, 15 are exactly the upper bounds of buckets 0..=4,
        // so every percentile estimate is exact.
        let mut h = Histogram::new();
        for v in [0u64, 1, 3, 7, 15] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.percentile(0.0), 0);
        assert_eq!(h.percentile(0.2), 0);
        assert_eq!(h.percentile(0.4), 1);
        assert_eq!(h.percentile(0.5), 3);
        assert_eq!(h.percentile(0.6), 3);
        assert_eq!(h.percentile(0.8), 7);
        assert_eq!(h.percentile(1.0), 15);
    }

    #[test]
    fn percentile_clamps_to_observed_max() {
        // 9 lands in bucket 4 (upper bound 15); the estimate must not
        // exceed the largest observed value.
        let mut h = Histogram::new();
        h.record(9);
        assert_eq!(h.percentile(0.5), 9);
        assert_eq!(h.percentile(0.99), 9);
        assert_eq!(h.max(), 9);
        assert_eq!(h.min(), 9);
    }

    #[test]
    fn percentile_estimate_within_power_of_two() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = h.percentile(0.5);
        // True p50 is 500; bucket estimate is the enclosing power-of-two
        // upper bound.
        assert!((500..=1023).contains(&p50), "p50 = {p50}");
        assert_eq!(h.percentile(1.0), 1000);
        assert_eq!(h.min(), 1);
        assert_eq!(h.mean(), 500.5);
    }

    #[test]
    fn merge_combines_counts_and_extremes() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(2);
        b.record(100);
        b.record(7);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.min(), 2);
        assert_eq!(a.max(), 100);
        assert_eq!(a.sum(), 109);
    }

    #[test]
    fn huge_values_land_in_open_ended_bucket() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX - 1);
        assert_eq!(h.percentile(1.0), u64::MAX);
        assert_eq!(h.count(), 2);
    }
}
