//! Per-transfer causal tracing and Chrome trace-event export.
//!
//! A [`TraceId`] identifies one packet transfer — `(step, sender,
//! receiver)` — and threads through the transfer's whole life:
//! governor decision, channel/ARQ rounds, salvage, alignment guard, and
//! fusion. Each stage appends an instant mark carrying the id; span
//! guards additionally record their durations as slices. The collected
//! buffer exports as Chrome trace-event JSON (the `traceEvents` array
//! format), viewable in Perfetto or `chrome://tracing`, with one lane
//! per recording thread.
//!
//! Stage marks whose [`TraceEvent::terminal`] flag is set end the
//! transfer's causal chain: either the packet fused into a detection or
//! a `TransportDropReason`-shaped stage explains why it never did.

use std::fmt;

/// Identity of one packet transfer: simulation step, sender vehicle,
/// receiver vehicle. Formats as `s<step>:<from>-><to>`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TraceId {
    /// Simulation step index.
    pub step: u32,
    /// Sender vehicle id.
    pub from: u32,
    /// Receiver vehicle id.
    pub to: u32,
}

impl TraceId {
    /// Builds the id for one `(step, sender, receiver)` transfer.
    pub fn new(step: usize, from: u32, to: u32) -> Self {
        TraceId {
            step: step.min(u32::MAX as usize) as u32,
            from,
            to,
        }
    }
}

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}:{}->{}", self.step, self.from, self.to)
    }
}

/// Stage names for per-transfer trace marks. Marks flagged *terminal*
/// end a transfer's causal chain.
pub mod stage {
    /// Governor admitted the transfer (detail: wire bytes).
    pub const GOVERN_SEND: &str = "transfer.govern.send";
    /// Terminal: governor skipped the transfer over budget.
    pub const GOVERN_SKIP: &str = "transfer.govern.skip";
    /// Channel transmitted frames (detail: frames sent).
    pub const V2X_TRANSMIT: &str = "v2x.transmit";
    /// ARQ retransmitted lost fragments (detail: retransmit count).
    pub const V2X_ARQ_RETRY: &str = "v2x.arq.retry";
    /// Channel delivered the complete payload.
    pub const DELIVERED: &str = "transfer.delivered";
    /// Terminal: the channel dropped the whole payload.
    pub const CHANNEL_DROPPED: &str = "transfer.channel_dropped";
    /// Terminal: the delivery deadline expired mid-transfer.
    pub const DEADLINE_EXCEEDED: &str = "transfer.deadline_exceeded";
    /// A contiguous prefix arrived (detail: delivered bytes).
    pub const PARTIAL: &str = "transfer.partial";
    /// Prefix salvage decoded a usable packet (detail: points kept).
    pub const SALVAGED: &str = "transfer.salvaged";
    /// Terminal: the delivered prefix could not be decoded.
    pub const SALVAGE_FAILED: &str = "transfer.salvage_failed";
    /// Terminal: packet decode failed at fusion time.
    pub const DECODE_FAILED: &str = "transfer.decode_failed";
    /// Terminal: alignment guard rejected the packet (detail: residual
    /// in millimetres).
    pub const ALIGN_REJECTED: &str = "transfer.align_rejected";
    /// Terminal: the packet fused into the receiver's detection input.
    pub const FUSED: &str = "transfer.fused";
    /// Terminal: the link layer delivered the payload damaged (bit
    /// flips or mid-frame truncation) — nothing of it is usable.
    pub const V2X_CORRUPTED: &str = "transfer.corrupted";
    /// Terminal: the packet's CRC-32 integrity trailer failed
    /// verification at the receiver (detail: CRC the content hashed to).
    pub const INTEGRITY_FAILED: &str = "transfer.integrity_failed";
    /// Terminal: the transfer was skipped because the receiver has the
    /// sender quarantined.
    pub const QUARANTINED: &str = "transfer.quarantined";
    /// Terminal: the consistency guard rejected the packet content
    /// (detail: ghost points flagged).
    pub const CONSISTENCY_REJECTED: &str = "transfer.consistency_rejected";

    /// Every stage name, for validation.
    pub const ALL: &[&str] = &[
        GOVERN_SEND,
        GOVERN_SKIP,
        V2X_TRANSMIT,
        V2X_ARQ_RETRY,
        DELIVERED,
        CHANNEL_DROPPED,
        DEADLINE_EXCEEDED,
        PARTIAL,
        SALVAGED,
        SALVAGE_FAILED,
        DECODE_FAILED,
        ALIGN_REJECTED,
        FUSED,
        V2X_CORRUPTED,
        INTEGRITY_FAILED,
        QUARANTINED,
        CONSISTENCY_REJECTED,
    ];
}

/// One recorded trace entry: a completed span slice (`instant ==
/// false`) or a per-transfer stage mark (`instant == true`).
#[derive(Clone, Debug)]
pub struct TraceEvent {
    /// Span path or stage name.
    pub name: String,
    /// Transfer this event belongs to; `None` for plain span slices.
    pub trace: Option<TraceId>,
    /// Recording lane (stable per-thread index).
    pub lane: usize,
    /// Start time, microseconds since the trace epoch.
    pub ts_us: u64,
    /// Duration in microseconds; zero for instant marks.
    pub dur_us: u64,
    /// `true` for instant stage marks, `false` for span slices.
    pub instant: bool,
    /// `true` when this mark ends its transfer's causal chain.
    pub terminal: bool,
    /// Optional stage-specific detail (bytes, retransmits, ...).
    pub detail: Option<u64>,
}

/// A drained trace buffer ready for export.
#[derive(Clone, Debug, Default)]
pub struct ChromeTrace {
    /// Recorded events in completion order.
    pub events: Vec<TraceEvent>,
    /// Number of per-thread lanes referenced by the events.
    pub lane_count: usize,
}

impl ChromeTrace {
    /// Events belonging to one transfer, in recording order.
    pub fn events_for(&self, trace: TraceId) -> Vec<&TraceEvent> {
        self.events
            .iter()
            .filter(|event| event.trace == Some(trace))
            .collect()
    }

    /// Every distinct transfer id that appears in the buffer.
    pub fn trace_ids(&self) -> Vec<TraceId> {
        let mut ids: Vec<TraceId> = self.events.iter().filter_map(|event| event.trace).collect();
        ids.sort();
        ids.dedup();
        ids
    }

    /// `true` when the transfer's chain contains a terminal stage mark.
    pub fn has_terminal(&self, trace: TraceId) -> bool {
        self.events
            .iter()
            .any(|event| event.trace == Some(trace) && event.terminal)
    }

    /// Serializes the buffer as Chrome trace-event JSON: an object with
    /// a `traceEvents` array of `ph: "X"` duration slices and `ph: "i"`
    /// instant marks, plus `thread_name` metadata naming each lane.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[");
        let mut first = true;
        for lane in 0..self.lane_count {
            push_sep(&mut out, &mut first);
            out.push_str(&format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{lane},\
                 \"args\":{{\"name\":\"lane-{lane}\"}}}}"
            ));
        }
        for event in &self.events {
            push_sep(&mut out, &mut first);
            out.push('{');
            out.push_str(&format!("\"name\":\"{}\"", escape(&event.name)));
            if event.instant {
                out.push_str(",\"ph\":\"i\",\"s\":\"t\"");
            } else {
                out.push_str(&format!(",\"ph\":\"X\",\"dur\":{}", event.dur_us));
            }
            out.push_str(&format!(
                ",\"ts\":{},\"pid\":1,\"tid\":{}",
                event.ts_us, event.lane
            ));
            out.push_str(",\"args\":{");
            let mut first_arg = true;
            if let Some(trace) = event.trace {
                push_sep(&mut out, &mut first_arg);
                out.push_str(&format!("\"trace\":\"{trace}\""));
            }
            if event.terminal {
                push_sep(&mut out, &mut first_arg);
                out.push_str("\"terminal\":true");
            }
            if let Some(detail) = event.detail {
                push_sep(&mut out, &mut first_arg);
                out.push_str(&format!("\"detail\":{detail}"));
            }
            out.push_str("}}");
        }
        out.push_str("]}");
        out
    }
}

fn push_sep(out: &mut String, first: &mut bool) {
    if *first {
        *first = false;
    } else {
        out.push(',');
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ChromeTrace {
        let id = TraceId::new(3, 1, 2);
        ChromeTrace {
            events: vec![
                TraceEvent {
                    name: "fleet.exchange".into(),
                    trace: None,
                    lane: 0,
                    ts_us: 10,
                    dur_us: 500,
                    instant: false,
                    terminal: false,
                    detail: None,
                },
                TraceEvent {
                    name: stage::PARTIAL.into(),
                    trace: Some(id),
                    lane: 0,
                    ts_us: 120,
                    dur_us: 0,
                    instant: true,
                    terminal: false,
                    detail: Some(4096),
                },
                TraceEvent {
                    name: stage::FUSED.into(),
                    trace: Some(id),
                    lane: 1,
                    ts_us: 400,
                    dur_us: 0,
                    instant: true,
                    terminal: true,
                    detail: None,
                },
            ],
            lane_count: 2,
        }
    }

    #[test]
    fn trace_id_formats_as_step_sender_receiver() {
        assert_eq!(TraceId::new(3, 1, 2).to_string(), "s3:1->2");
    }

    #[test]
    fn chain_queries_join_by_trace_id() {
        let trace = sample();
        let id = TraceId::new(3, 1, 2);
        assert_eq!(trace.events_for(id).len(), 2);
        assert!(trace.has_terminal(id));
        assert!(!trace.has_terminal(TraceId::new(0, 9, 9)));
        assert_eq!(trace.trace_ids(), vec![id]);
    }

    #[test]
    fn chrome_json_has_lanes_slices_and_marks() {
        let json = sample().to_chrome_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\"name\":\"thread_name\""));
        assert!(json.contains("\"args\":{\"name\":\"lane-1\"}"));
        assert!(json.contains("\"ph\":\"X\",\"dur\":500"));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"trace\":\"s3:1->2\""));
        assert!(json.contains("\"terminal\":true"));
        assert!(json.contains("\"detail\":4096"));
        // Balanced braces and brackets — a cheap well-formedness check.
        for (open, close) in [('{', '}'), ('[', ']')] {
            let opens = json.matches(open).count();
            let closes = json.matches(close).count();
            assert_eq!(opens, closes, "unbalanced {open}{close}");
        }
    }

    #[test]
    fn escape_handles_quotes_and_control_chars() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{01}"), "\\u0001");
    }

    #[test]
    fn stage_names_are_distinct() {
        for (i, a) in stage::ALL.iter().enumerate() {
            assert!(!stage::ALL[i + 1..].contains(a), "duplicate stage {a}");
        }
    }
}
