//! Immutable summaries of registry state, with table and CSV render.

use serde::Serialize;
use std::fmt::Write as _;

/// Aggregated timing for one span path.
#[derive(Clone, Debug, Serialize)]
pub struct SpanSummary {
    /// Full `/`-joined path, e.g. `pipeline.perceive/pipeline.fuse`.
    pub path: String,
    /// Leaf name, e.g. `pipeline.fuse`.
    pub name: String,
    /// Nesting depth (number of `/` in the path).
    pub depth: usize,
    /// Completed executions.
    pub count: u64,
    /// Total wall-clock microseconds across executions.
    pub total_us: u64,
    /// Mean microseconds per execution.
    pub mean_us: f64,
    /// Estimated 50th-percentile microseconds.
    pub p50_us: u64,
    /// Estimated 95th-percentile microseconds.
    pub p95_us: u64,
    /// Estimated 99th-percentile microseconds.
    pub p99_us: u64,
    /// Slowest execution in microseconds.
    pub max_us: u64,
}

/// Aggregated statistics for one value histogram.
#[derive(Clone, Debug, Serialize)]
pub struct ValueSummary {
    /// Histogram name, e.g. `v2x.frame_bytes`.
    pub name: String,
    /// Observations recorded.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Estimated 50th percentile.
    pub p50: u64,
    /// Estimated 95th percentile.
    pub p95: u64,
    /// Estimated 99th percentile.
    pub p99: u64,
    /// Largest observation.
    pub max: u64,
}

/// Time spent in a span path itself, excluding its direct children.
#[derive(Clone, Debug, Serialize)]
pub struct SelfTimeEntry {
    /// Full `/`-joined path.
    pub path: String,
    /// Leaf name.
    pub name: String,
    /// Completed executions.
    pub count: u64,
    /// Total wall-clock microseconds including children.
    pub total_us: u64,
    /// Microseconds not attributed to any direct child span.
    pub self_us: u64,
}

/// A point-in-time copy of everything a registry has recorded.
#[derive(Clone, Debug, Default, Serialize)]
pub struct TelemetrySnapshot {
    /// Span timings sorted by path, parents before children.
    pub spans: Vec<SpanSummary>,
    /// Monotonic counters sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Gauges sorted by name.
    pub gauges: Vec<(String, f64)>,
    /// Value histograms sorted by name.
    pub values: Vec<ValueSummary>,
}

impl TelemetrySnapshot {
    /// Looks up a span by its full path.
    pub fn span(&self, path: &str) -> Option<&SpanSummary> {
        self.spans.iter().find(|s| s.path == path)
    }

    /// Looks up a counter value.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Looks up a gauge value.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Looks up a value histogram summary.
    pub fn value(&self, name: &str) -> Option<&ValueSummary> {
        self.values.iter().find(|v| v.name == name)
    }

    /// `true` when nothing at all was recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
            && self.counters.is_empty()
            && self.gauges.is_empty()
            && self.values.is_empty()
    }

    /// Renders a human-readable report: the span tree (children
    /// indented under parents) with count and latency percentiles,
    /// then counters, gauges, and value histograms.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        if !self.spans.is_empty() {
            out.push_str("spans\n");
            let _ = writeln!(
                out,
                "  {:<52} {:>8} {:>12} {:>10} {:>10} {:>10} {:>10}",
                "span", "count", "total_ms", "p50_us", "p95_us", "p99_us", "max_us"
            );
            for span in &self.spans {
                let label = format!("{}{}", "  ".repeat(span.depth), span.name);
                let _ = writeln!(
                    out,
                    "  {:<52} {:>8} {:>12.3} {:>10} {:>10} {:>10} {:>10}",
                    label,
                    span.count,
                    span.total_us as f64 / 1_000.0,
                    span.p50_us,
                    span.p95_us,
                    span.p99_us,
                    span.max_us
                );
            }
        }
        if !self.counters.is_empty() {
            out.push_str("counters\n");
            for (name, value) in &self.counters {
                let _ = writeln!(out, "  {name:<52} {value:>12}");
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges\n");
            for (name, value) in &self.gauges {
                let _ = writeln!(out, "  {name:<52} {value:>12.4}");
            }
        }
        if !self.values.is_empty() {
            out.push_str("values\n");
            let _ = writeln!(
                out,
                "  {:<52} {:>8} {:>12} {:>10} {:>10} {:>10} {:>10}",
                "value", "count", "sum", "p50", "p95", "p99", "max"
            );
            for value in &self.values {
                let _ = writeln!(
                    out,
                    "  {:<52} {:>8} {:>12} {:>10} {:>10} {:>10} {:>10}",
                    value.name, value.count, value.sum, value.p50, value.p95, value.p99, value.max
                );
            }
        }
        if out.is_empty() {
            out.push_str("telemetry: no data recorded\n");
        }
        out
    }

    /// Self time per span path: total time minus the summed totals of
    /// its direct children, sorted by descending self time. This is
    /// the profiler's primary view — the paths at the top are where
    /// the time actually goes, not just where it accumulates.
    pub fn self_times(&self) -> Vec<SelfTimeEntry> {
        let mut entries: Vec<SelfTimeEntry> = self
            .spans
            .iter()
            .map(|span| {
                let child_total: u64 = self
                    .spans
                    .iter()
                    .filter(|other| {
                        other
                            .path
                            .strip_prefix(&span.path)
                            .and_then(|rest| rest.strip_prefix('/'))
                            .is_some_and(|rest| !rest.contains('/'))
                    })
                    .map(|child| child.total_us)
                    .sum();
                SelfTimeEntry {
                    path: span.path.clone(),
                    name: span.name.clone(),
                    count: span.count,
                    total_us: span.total_us,
                    self_us: span.total_us.saturating_sub(child_total),
                }
            })
            .collect();
        entries.sort_by(|a, b| b.self_us.cmp(&a.self_us).then(a.path.cmp(&b.path)));
        entries
    }

    /// Self time aggregated by leaf span name across all paths (the
    /// same stage can run under several parents and on several
    /// threads), sorted by descending self time.
    pub fn self_times_by_name(&self) -> Vec<SelfTimeEntry> {
        let mut by_name: Vec<SelfTimeEntry> = Vec::new();
        for entry in self.self_times() {
            match by_name.iter_mut().find(|e| e.name == entry.name) {
                Some(existing) => {
                    existing.count += entry.count;
                    existing.total_us += entry.total_us;
                    existing.self_us += entry.self_us;
                }
                None => by_name.push(SelfTimeEntry {
                    path: entry.name.clone(),
                    ..entry
                }),
            }
        }
        by_name.sort_by(|a, b| b.self_us.cmp(&a.self_us).then(a.name.cmp(&b.name)));
        by_name
    }

    /// Renders the ranked self-time table produced by
    /// [`TelemetrySnapshot::self_times_by_name`], with each stage's
    /// share of the summed self time.
    pub fn render_self_time_table(&self) -> String {
        let entries = self.self_times_by_name();
        let grand_total: u64 = entries.iter().map(|e| e.self_us).sum();
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<32} {:>8} {:>12} {:>12} {:>7}",
            "stage", "count", "self_ms", "total_ms", "share"
        );
        for entry in &entries {
            let share = if grand_total == 0 {
                0.0
            } else {
                entry.self_us as f64 / grand_total as f64 * 100.0
            };
            let _ = writeln!(
                out,
                "{:<32} {:>8} {:>12.3} {:>12.3} {:>6.1}%",
                entry.name,
                entry.count,
                entry.self_us as f64 / 1_000.0,
                entry.total_us as f64 / 1_000.0,
                share
            );
        }
        out
    }

    /// Renders span timings as CSV with header
    /// `stage,count,p50_us,p95_us,p99_us`.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("stage,count,p50_us,p95_us,p99_us\n");
        for span in &self.spans {
            let _ = writeln!(
                out,
                "{},{},{},{},{}",
                span.path, span.count, span.p50_us, span.p95_us, span.p99_us
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_snapshot() -> TelemetrySnapshot {
        TelemetrySnapshot {
            spans: vec![
                SpanSummary {
                    path: "pipeline.fuse".into(),
                    name: "pipeline.fuse".into(),
                    depth: 0,
                    count: 3,
                    total_us: 3_000,
                    mean_us: 1_000.0,
                    p50_us: 1_023,
                    p95_us: 2_047,
                    p99_us: 2_047,
                    max_us: 1_900,
                },
                SpanSummary {
                    path: "pipeline.fuse/packet.decode".into(),
                    name: "packet.decode".into(),
                    depth: 1,
                    count: 9,
                    total_us: 900,
                    mean_us: 100.0,
                    p50_us: 127,
                    p95_us: 255,
                    p99_us: 255,
                    max_us: 140,
                },
            ],
            counters: vec![("pipeline.packets_fused".into(), 9)],
            gauges: vec![("fleet.connected_ratio".into(), 0.5)],
            values: vec![ValueSummary {
                name: "v2x.frame_bytes".into(),
                count: 4,
                sum: 4_096,
                p50: 1_023,
                p95: 2_047,
                p99: 2_047,
                max: 1_500,
            }],
        }
    }

    #[test]
    fn table_indents_children_and_lists_sections() {
        let table = sample_snapshot().render_table();
        assert!(table.contains("pipeline.fuse"));
        assert!(
            table.contains("  packet.decode"),
            "child indented:\n{table}"
        );
        assert!(table.contains("counters"));
        assert!(table.contains("pipeline.packets_fused"));
        assert!(table.contains("gauges"));
        assert!(table.contains("values"));
        assert!(table.contains("v2x.frame_bytes"));
    }

    #[test]
    fn csv_lists_all_span_paths() {
        let csv = sample_snapshot().to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("stage,count,p50_us,p95_us,p99_us"));
        assert_eq!(lines.next(), Some("pipeline.fuse,3,1023,2047,2047"));
        assert_eq!(
            lines.next(),
            Some("pipeline.fuse/packet.decode,9,127,255,255")
        );
        assert_eq!(lines.next(), None);
    }

    #[test]
    fn empty_snapshot_renders_placeholder() {
        let table = TelemetrySnapshot::default().render_table();
        assert!(table.contains("no data"));
        assert!(TelemetrySnapshot::default().is_empty());
    }

    fn span(path: &str, count: u64, total_us: u64) -> SpanSummary {
        SpanSummary {
            path: path.into(),
            name: path.rsplit('/').next().unwrap().into(),
            depth: path.matches('/').count(),
            count,
            total_us,
            mean_us: 0.0,
            p50_us: 0,
            p95_us: 0,
            p99_us: 0,
            max_us: 0,
        }
    }

    #[test]
    fn self_time_subtracts_direct_children_only() {
        let snap = TelemetrySnapshot {
            spans: vec![
                span("a", 1, 1_000),
                span("a/b", 2, 600),
                span("a/b/c", 2, 500),
                span("a/d", 1, 100),
            ],
            ..TelemetrySnapshot::default()
        };
        let times = snap.self_times();
        let find = |p: &str| times.iter().find(|e| e.path == p).unwrap();
        // a: 1000 - (600 + 100); grandchild c must NOT be subtracted.
        assert_eq!(find("a").self_us, 300);
        assert_eq!(find("a/b").self_us, 100);
        assert_eq!(find("a/b/c").self_us, 500);
        assert_eq!(find("a/d").self_us, 100);
        // Ranked descending by self time.
        assert_eq!(times[0].path, "a/b/c");
        // Over-subscribed parents saturate to zero rather than wrap.
        let snap2 = TelemetrySnapshot {
            spans: vec![span("p", 1, 10), span("p/q", 1, 50)],
            ..TelemetrySnapshot::default()
        };
        assert_eq!(
            snap2
                .self_times()
                .iter()
                .find(|e| e.path == "p")
                .unwrap()
                .self_us,
            0
        );
    }

    #[test]
    fn self_time_by_name_merges_paths_and_renders() {
        let snap = TelemetrySnapshot {
            spans: vec![
                span("x/stage", 1, 300),
                span("y/stage", 2, 200),
                span("x", 1, 400),
                span("y", 2, 250),
            ],
            ..TelemetrySnapshot::default()
        };
        let by_name = snap.self_times_by_name();
        let stage = by_name.iter().find(|e| e.name == "stage").unwrap();
        assert_eq!(stage.count, 3);
        assert_eq!(stage.self_us, 500);
        assert_eq!(by_name[0].name, "stage", "largest self time first");
        let table = snap.render_self_time_table();
        assert!(table.contains("stage"));
        assert!(table.contains("share"));
        assert!(table.contains('%'));
    }

    #[test]
    fn lookups_find_recorded_entries() {
        let snap = sample_snapshot();
        assert_eq!(snap.span("pipeline.fuse").unwrap().count, 3);
        assert_eq!(snap.counter("pipeline.packets_fused"), Some(9));
        assert_eq!(snap.gauge("fleet.connected_ratio"), Some(0.5));
        assert_eq!(snap.value("v2x.frame_bytes").unwrap().max, 1_500);
        assert!(snap.span("nope").is_none());
        assert!(snap.counter("nope").is_none());
    }
}
