//! Event sinks: where emitted [`TelemetryEvent`]s go.

use crate::event::TelemetryEvent;
use parking_lot::Mutex;
use std::io::Write;

/// Receives emitted events. Implementations must tolerate concurrent
/// calls; the registry invokes `record` from whatever thread emits.
pub trait TelemetrySink: Send + Sync {
    /// Handles one event.
    fn record(&self, event: &TelemetryEvent);
}

/// Buffers events in memory; useful in tests and for post-run export.
#[derive(Default)]
pub struct MemorySink {
    events: Mutex<Vec<TelemetryEvent>>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        MemorySink::default()
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.lock().is_empty()
    }

    /// Snapshot of all buffered events.
    pub fn events(&self) -> Vec<TelemetryEvent> {
        self.events.lock().clone()
    }

    /// Drains and returns all buffered events.
    pub fn drain(&self) -> Vec<TelemetryEvent> {
        std::mem::take(&mut *self.events.lock())
    }
}

impl TelemetrySink for MemorySink {
    fn record(&self, event: &TelemetryEvent) {
        self.events.lock().push(event.clone());
    }
}

/// Writes each event as one JSON line to the wrapped writer.
/// Write errors are swallowed: telemetry must never take down the
/// pipeline it observes.
///
/// The sink is line-buffered: every line is flushed as it is written,
/// and any buffered bytes are flushed again when the sink drops —
/// including during unwinding — so a truncated or panicking run still
/// leaves a parseable JSON-lines file.
pub struct JsonLinesSink<W: Write + Send> {
    /// `None` only after [`JsonLinesSink::into_inner`] took the writer.
    writer: Mutex<Option<W>>,
}

impl<W: Write + Send> JsonLinesSink<W> {
    /// Wraps a writer.
    pub fn new(writer: W) -> Self {
        JsonLinesSink {
            writer: Mutex::new(Some(writer)),
        }
    }

    /// Flushes and returns the writer.
    ///
    /// # Panics
    ///
    /// Never in practice: the writer is only absent after a previous
    /// `into_inner`, which consumes the sink.
    pub fn into_inner(self) -> W {
        let mut writer = self.writer.lock().take().expect("writer present");
        let _ = writer.flush();
        writer
    }
}

impl<W: Write + Send> TelemetrySink for JsonLinesSink<W> {
    fn record(&self, event: &TelemetryEvent) {
        let mut guard = self.writer.lock();
        if let Some(writer) = guard.as_mut() {
            let _ = writeln!(writer, "{}", event.to_json_line());
            let _ = writer.flush();
        }
    }
}

impl<W: Write + Send> Drop for JsonLinesSink<W> {
    fn drop(&mut self) {
        if let Some(writer) = self.writer.get_mut().as_mut() {
            let _ = writer.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_sink_buffers_in_order() {
        let sink = MemorySink::new();
        sink.record(&TelemetryEvent::new("a"));
        sink.record(&TelemetryEvent::new("b").with("n", 1u64));
        assert_eq!(sink.len(), 2);
        let events = sink.drain();
        assert_eq!(events[0].kind(), "a");
        assert_eq!(events[1].kind(), "b");
        assert!(sink.is_empty());
    }

    /// Shared writer that counts flushes and exposes the bytes written
    /// so far, surviving the sink it is installed in.
    #[derive(Clone, Default)]
    struct SharedBuf(std::sync::Arc<Mutex<(Vec<u8>, usize)>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().0.extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            self.0.lock().1 += 1;
            Ok(())
        }
    }

    #[test]
    fn json_lines_sink_flushes_every_line_and_on_drop() {
        let shared = SharedBuf::default();
        let sink = JsonLinesSink::new(shared.clone());
        sink.record(&TelemetryEvent::new("first").with("n", 1u64));
        {
            // The line is already visible without into_inner: the sink
            // flushed it as it was written.
            let state = shared.0.lock();
            let text = String::from_utf8(state.0.clone()).expect("utf-8");
            assert_eq!(text.lines().count(), 1);
            TelemetryEvent::from_json_line(text.lines().next().unwrap()).expect("parses");
            assert!(state.1 >= 1, "flushed at least once per line");
        }
        let flushes_before_drop = shared.0.lock().1;
        drop(sink);
        assert!(
            shared.0.lock().1 > flushes_before_drop,
            "drop flushes the writer"
        );
    }

    #[test]
    fn json_lines_sink_survives_a_panicking_run() {
        let shared = SharedBuf::default();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let sink = JsonLinesSink::new(shared.clone());
            sink.record(&TelemetryEvent::new("before_panic"));
            panic!("simulated truncated run");
        }));
        assert!(result.is_err());
        let state = shared.0.lock();
        let text = String::from_utf8(state.0.clone()).expect("utf-8");
        let lines: Vec<_> = text.lines().collect();
        assert_eq!(lines.len(), 1);
        TelemetryEvent::from_json_line(lines[0]).expect("line parses after panic");
    }

    #[test]
    fn json_lines_sink_writes_parseable_lines() {
        let sink = JsonLinesSink::new(Vec::<u8>::new());
        sink.record(&TelemetryEvent::new("x").with("v", 7u64));
        sink.record(&TelemetryEvent::new("y").with("s", "hi"));
        let bytes = sink.into_inner();
        let text = String::from_utf8(bytes).expect("utf-8");
        let lines: Vec<_> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            TelemetryEvent::from_json_line(line).expect("each line parses");
        }
    }
}
