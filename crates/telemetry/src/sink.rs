//! Event sinks: where emitted [`TelemetryEvent`]s go.

use crate::event::TelemetryEvent;
use parking_lot::Mutex;
use std::io::Write;

/// Receives emitted events. Implementations must tolerate concurrent
/// calls; the registry invokes `record` from whatever thread emits.
pub trait TelemetrySink: Send + Sync {
    /// Handles one event.
    fn record(&self, event: &TelemetryEvent);
}

/// Buffers events in memory; useful in tests and for post-run export.
#[derive(Default)]
pub struct MemorySink {
    events: Mutex<Vec<TelemetryEvent>>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        MemorySink::default()
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.lock().is_empty()
    }

    /// Snapshot of all buffered events.
    pub fn events(&self) -> Vec<TelemetryEvent> {
        self.events.lock().clone()
    }

    /// Drains and returns all buffered events.
    pub fn drain(&self) -> Vec<TelemetryEvent> {
        std::mem::take(&mut *self.events.lock())
    }
}

impl TelemetrySink for MemorySink {
    fn record(&self, event: &TelemetryEvent) {
        self.events.lock().push(event.clone());
    }
}

/// Writes each event as one JSON line to the wrapped writer.
/// Write errors are swallowed: telemetry must never take down the
/// pipeline it observes.
pub struct JsonLinesSink<W: Write + Send> {
    writer: Mutex<W>,
}

impl<W: Write + Send> JsonLinesSink<W> {
    /// Wraps a writer.
    pub fn new(writer: W) -> Self {
        JsonLinesSink {
            writer: Mutex::new(writer),
        }
    }

    /// Flushes and returns the writer.
    pub fn into_inner(self) -> W {
        let mut writer = self.writer.into_inner();
        let _ = writer.flush();
        writer
    }
}

impl<W: Write + Send> TelemetrySink for JsonLinesSink<W> {
    fn record(&self, event: &TelemetryEvent) {
        let mut writer = self.writer.lock();
        let _ = writeln!(writer, "{}", event.to_json_line());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_sink_buffers_in_order() {
        let sink = MemorySink::new();
        sink.record(&TelemetryEvent::new("a"));
        sink.record(&TelemetryEvent::new("b").with("n", 1u64));
        assert_eq!(sink.len(), 2);
        let events = sink.drain();
        assert_eq!(events[0].kind(), "a");
        assert_eq!(events[1].kind(), "b");
        assert!(sink.is_empty());
    }

    #[test]
    fn json_lines_sink_writes_parseable_lines() {
        let sink = JsonLinesSink::new(Vec::<u8>::new());
        sink.record(&TelemetryEvent::new("x").with("v", 7u64));
        sink.record(&TelemetryEvent::new("y").with("s", "hi"));
        let bytes = sink.into_inner();
        let text = String::from_utf8(bytes).expect("utf-8");
        let lines: Vec<_> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            TelemetryEvent::from_json_line(line).expect("each line parses");
        }
    }
}
