//! Structured telemetry events with a JSON-lines wire form.
//!
//! Events are flat string-keyed maps (one nesting level keeps the
//! encoder and decoder small and every consumer — `jq`, spreadsheets,
//! log shippers — happy). Encoding is hand-rolled: the build
//! environment has no crates.io access, so `serde_json` is not
//! available, and the subset needed here (strings, bools, integers,
//! floats) is small.

use std::collections::BTreeMap;
use std::fmt;

/// A single typed field value.
#[derive(Clone, Debug, PartialEq)]
pub enum FieldValue {
    U64(u64),
    I64(i64),
    F64(f64),
    Bool(bool),
    Str(String),
}

impl fmt::Display for FieldValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldValue::U64(v) => write!(f, "{v}"),
            FieldValue::I64(v) => write!(f, "{v}"),
            FieldValue::F64(v) => write!(f, "{v}"),
            FieldValue::Bool(v) => write!(f, "{v}"),
            FieldValue::Str(v) => write!(f, "{v}"),
        }
    }
}

macro_rules! impl_from_field_value {
    ($($t:ty => $variant:ident as $conv:ty),*) => {$(
        impl From<$t> for FieldValue {
            fn from(v: $t) -> Self {
                FieldValue::$variant(v as $conv)
            }
        }
    )*};
}

impl_from_field_value!(
    u64 => U64 as u64,
    u32 => U64 as u64,
    usize => U64 as u64,
    i64 => I64 as i64,
    i32 => I64 as i64,
    f64 => F64 as f64,
    f32 => F64 as f64
);

impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

/// A structured event: a kind plus flat typed fields.
///
/// `kind` is serialized under the reserved key `"kind"`, so fields may
/// not use that name ([`TelemetryEvent::with`] panics if they try).
#[derive(Clone, Debug, PartialEq)]
pub struct TelemetryEvent {
    kind: String,
    fields: BTreeMap<String, FieldValue>,
}

impl TelemetryEvent {
    /// Creates an event of the given kind with no fields.
    pub fn new(kind: impl Into<String>) -> Self {
        TelemetryEvent {
            kind: kind.into(),
            fields: BTreeMap::new(),
        }
    }

    /// Adds a field (builder style).
    ///
    /// # Panics
    ///
    /// Panics when `key` is the reserved name `"kind"`.
    pub fn with(mut self, key: impl Into<String>, value: impl Into<FieldValue>) -> Self {
        let key = key.into();
        assert_ne!(key, "kind", "\"kind\" is reserved for the event kind");
        self.fields.insert(key, value.into());
        self
    }

    /// The event kind.
    pub fn kind(&self) -> &str {
        &self.kind
    }

    /// Looks up a field.
    pub fn field(&self, key: &str) -> Option<&FieldValue> {
        self.fields.get(key)
    }

    /// All fields in key order.
    pub fn fields(&self) -> impl Iterator<Item = (&str, &FieldValue)> {
        self.fields.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Encodes as one JSON object on a single line (no trailing
    /// newline). `kind` comes first, fields follow in key order.
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(64);
        out.push_str("{\"kind\":");
        encode_json_string(&self.kind, &mut out);
        for (key, value) in &self.fields {
            out.push(',');
            encode_json_string(key, &mut out);
            out.push(':');
            match value {
                FieldValue::U64(v) => out.push_str(&v.to_string()),
                FieldValue::I64(v) => out.push_str(&v.to_string()),
                FieldValue::F64(v) => {
                    if v.is_finite() {
                        let s = format!("{v}");
                        // Keep floats recognisable as floats on re-parse.
                        if s.contains('.') || s.contains('e') || s.contains('E') {
                            out.push_str(&s);
                        } else {
                            out.push_str(&s);
                            out.push_str(".0");
                        }
                    } else {
                        // JSON has no Inf/NaN literal; encode as null.
                        out.push_str("null");
                    }
                }
                FieldValue::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
                FieldValue::Str(v) => encode_json_string(v, &mut out),
            }
        }
        out.push('}');
        out
    }

    /// Decodes an event from a JSON line produced by
    /// [`TelemetryEvent::to_json_line`] (or any flat JSON object with a
    /// string `"kind"` member).
    pub fn from_json_line(line: &str) -> Result<Self, ParseError> {
        let mut parser = Parser {
            bytes: line.trim().as_bytes(),
            pos: 0,
        };
        parser.expect(b'{')?;
        let mut kind = None;
        let mut fields = BTreeMap::new();
        loop {
            parser.skip_ws();
            if parser.eat(b'}') {
                break;
            }
            if !fields.is_empty() || kind.is_some() {
                parser.expect(b',')?;
                parser.skip_ws();
            }
            let key = parser.parse_string()?;
            parser.skip_ws();
            parser.expect(b':')?;
            parser.skip_ws();
            let value = parser.parse_value()?;
            if key == "kind" {
                match value {
                    FieldValue::Str(s) => kind = Some(s),
                    _ => return Err(ParseError::at(parser.pos, "\"kind\" must be a string")),
                }
            } else {
                fields.insert(key, value);
            }
        }
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(ParseError::at(parser.pos, "trailing bytes after object"));
        }
        let kind = kind.ok_or(ParseError::at(0, "missing \"kind\" member"))?;
        Ok(TelemetryEvent { kind, fields })
    }
}

/// Why a JSON line failed to parse.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// Human-readable cause.
    pub message: &'static str,
}

impl ParseError {
    fn at(offset: usize, message: &'static str) -> Self {
        ParseError { offset, message }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "telemetry event parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

fn encode_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        self.skip_ws();
        if self.eat(b) {
            Ok(())
        } else {
            Err(ParseError::at(self.pos, "unexpected character"))
        }
    }

    fn parse_string(&mut self) -> Result<String, ParseError> {
        if !self.eat(b'"') {
            return Err(ParseError::at(self.pos, "expected string"));
        }
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(ParseError::at(self.pos, "unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or(ParseError::at(self.pos, "truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| ParseError::at(self.pos, "bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| ParseError::at(self.pos, "bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or(ParseError::at(self.pos, "bad \\u escape"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(ParseError::at(self.pos, "bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| ParseError::at(self.pos, "invalid utf-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_value(&mut self) -> Result<FieldValue, ParseError> {
        match self.peek() {
            Some(b'"') => Ok(FieldValue::Str(self.parse_string()?)),
            Some(b't') => self.parse_literal("true", FieldValue::Bool(true)),
            Some(b'f') => self.parse_literal("false", FieldValue::Bool(false)),
            Some(b'n') => self.parse_literal("null", FieldValue::F64(f64::NAN)),
            Some(_) => self.parse_number(),
            None => Err(ParseError::at(self.pos, "expected value")),
        }
    }

    fn parse_literal(&mut self, lit: &str, value: FieldValue) -> Result<FieldValue, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(ParseError::at(self.pos, "bad literal"))
        }
    }

    fn parse_number(&mut self) -> Result<FieldValue, ParseError> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| ParseError::at(start, "bad number"))?;
        if text.contains(['.', 'e', 'E']) {
            text.parse::<f64>()
                .map(FieldValue::F64)
                .map_err(|_| ParseError::at(start, "bad number"))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(FieldValue::I64)
                .map_err(|_| ParseError::at(start, "bad number"))
        } else {
            text.parse::<u64>()
                .map(FieldValue::U64)
                .map_err(|_| ParseError::at(start, "bad number"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_line_round_trip() {
        let event = TelemetryEvent::new("fleet.vehicle_step")
            .with("vehicle", 3u64)
            .with("step", 12u64)
            .with("latency_ms", 4.25)
            .with("connected", true)
            .with("note", "line one\nline \"two\" \\ done");
        let line = event.to_json_line();
        let back = TelemetryEvent::from_json_line(&line).expect("parses");
        assert_eq!(back, event);
    }

    #[test]
    fn negative_and_float_numbers_round_trip() {
        let event = TelemetryEvent::new("x")
            .with("dx", -42i64)
            .with("whole", 3.0f64);
        let line = event.to_json_line();
        assert!(line.contains("\"whole\":3.0"), "line = {line}");
        let back = TelemetryEvent::from_json_line(&line).expect("parses");
        assert_eq!(back.field("dx"), Some(&FieldValue::I64(-42)));
        assert_eq!(back.field("whole"), Some(&FieldValue::F64(3.0)));
    }

    #[test]
    fn kind_is_first_and_reserved() {
        let line = TelemetryEvent::new("k").with("a", 1u64).to_json_line();
        assert!(line.starts_with("{\"kind\":\"k\""), "line = {line}");
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn kind_field_rejected() {
        let _ = TelemetryEvent::new("k").with("kind", 1u64);
    }

    #[test]
    fn malformed_lines_error_out() {
        assert!(TelemetryEvent::from_json_line("").is_err());
        assert!(TelemetryEvent::from_json_line("{}").is_err());
        assert!(TelemetryEvent::from_json_line("{\"kind\":3}").is_err());
        assert!(TelemetryEvent::from_json_line("{\"kind\":\"k\"} extra").is_err());
        assert!(TelemetryEvent::from_json_line("{\"kind\":\"k\",\"a\":}").is_err());
    }

    #[test]
    fn control_chars_escape_as_unicode() {
        let line = TelemetryEvent::new("k").with("s", "\u{1}").to_json_line();
        assert!(line.contains("\\u0001"), "line = {line}");
        let back = TelemetryEvent::from_json_line(&line).expect("parses");
        assert_eq!(back.field("s"), Some(&FieldValue::Str("\u{1}".into())));
    }
}
