//! The telemetry registry: span timing, counters, gauges, value
//! histograms, and event fan-out, behind one enable switch.
//!
//! Disabled (the default) the cost of every instrumentation point is a
//! single relaxed atomic load — no clock read, no allocation, no lock.
//! Enabled, recording takes one short mutex hold; contention is
//! negligible next to the millisecond-scale stages being measured.

use crate::event::TelemetryEvent;
use crate::histogram::Histogram;
use crate::sink::TelemetrySink;
use crate::snapshot::{SpanSummary, TelemetrySnapshot, ValueSummary};
use crate::trace::{ChromeTrace, TraceEvent, TraceId};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::ThreadId;
use std::time::Instant;

#[derive(Default)]
struct Inner {
    /// Completed spans, keyed by full `/`-joined path.
    spans: BTreeMap<String, Histogram>,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    values: BTreeMap<String, Histogram>,
    /// Per-thread stacks of open span names; linear scan is fine for
    /// the handful of threads a simulation run uses.
    stacks: Vec<(ThreadId, Vec<&'static str>)>,
    sink: Option<Arc<dyn TelemetrySink>>,
    /// Time zero of the trace buffer, set lazily at the first traced
    /// event so timestamps start near zero.
    trace_epoch: Option<Instant>,
    /// Completed span slices and per-transfer stage marks, in
    /// completion order.
    trace_events: Vec<TraceEvent>,
    /// Stable thread → lane mapping; index in this vec is the lane.
    trace_lanes: Vec<ThreadId>,
}

impl Inner {
    /// Lane index for `thread`, assigning the next free lane on first
    /// sight.
    fn lane_for(&mut self, thread: ThreadId) -> usize {
        match self.trace_lanes.iter().position(|id| *id == thread) {
            Some(lane) => lane,
            None => {
                self.trace_lanes.push(thread);
                self.trace_lanes.len() - 1
            }
        }
    }

    /// Microseconds since the trace epoch, establishing it on first
    /// use.
    fn trace_now_us(&mut self) -> u64 {
        let epoch = *self.trace_epoch.get_or_insert_with(Instant::now);
        epoch.elapsed().as_micros().min(u64::MAX as u128) as u64
    }
}

/// A thread-safe telemetry registry, usable as a `static`.
pub struct Registry {
    enabled: AtomicBool,
    /// Whether completed spans and stage marks are additionally
    /// captured into the trace buffer; only effective while `enabled`.
    tracing: AtomicBool,
    inner: Mutex<Inner>,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

impl Registry {
    /// A disabled registry with no recordings.
    pub const fn new() -> Self {
        Registry {
            enabled: AtomicBool::new(false),
            tracing: AtomicBool::new(false),
            inner: Mutex::new(Inner {
                spans: BTreeMap::new(),
                counters: BTreeMap::new(),
                gauges: BTreeMap::new(),
                values: BTreeMap::new(),
                stacks: Vec::new(),
                sink: None,
                trace_epoch: None,
                trace_events: Vec::new(),
                trace_lanes: Vec::new(),
            }),
        }
    }

    /// Turns recording on.
    pub fn enable(&self) {
        self.enabled.store(true, Ordering::Relaxed);
    }

    /// Turns recording off; existing data is kept.
    pub fn disable(&self) {
        self.enabled.store(false, Ordering::Relaxed);
    }

    /// Whether instrumentation points currently record.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turns trace capture on or off. Tracing only records while the
    /// registry is also enabled.
    pub fn set_tracing(&self, on: bool) {
        self.tracing.store(on, Ordering::Relaxed);
    }

    /// Whether completed spans and stage marks currently land in the
    /// trace buffer.
    pub fn is_tracing(&self) -> bool {
        self.is_enabled() && self.tracing.load(Ordering::Relaxed)
    }

    /// Appends a per-transfer stage mark to the trace buffer. No-op
    /// unless tracing.
    pub fn trace_mark(&self, trace: TraceId, stage: &str, terminal: bool) {
        self.trace_mark_inner(trace, stage, terminal, None);
    }

    /// [`Registry::trace_mark`] with a stage-specific numeric detail
    /// (bytes, retransmit count, residual, ...).
    pub fn trace_mark_with(&self, trace: TraceId, stage: &str, terminal: bool, detail: u64) {
        self.trace_mark_inner(trace, stage, terminal, Some(detail));
    }

    fn trace_mark_inner(&self, trace: TraceId, stage: &str, terminal: bool, detail: Option<u64>) {
        if !self.is_tracing() {
            return;
        }
        let thread = std::thread::current().id();
        let mut inner = self.inner.lock();
        let ts_us = inner.trace_now_us();
        let lane = inner.lane_for(thread);
        inner.trace_events.push(TraceEvent {
            name: stage.to_string(),
            trace: Some(trace),
            lane,
            ts_us,
            dur_us: 0,
            instant: true,
            terminal,
            detail,
        });
    }

    /// Drains the trace buffer, returning everything captured since
    /// tracing was enabled (or last drained). The epoch and lane
    /// mapping are kept so successive drains stay on one time base.
    pub fn take_trace(&self) -> ChromeTrace {
        let mut inner = self.inner.lock();
        ChromeTrace {
            events: std::mem::take(&mut inner.trace_events),
            lane_count: inner.trace_lanes.len(),
        }
    }

    /// Opens a timing span; the returned guard records the elapsed
    /// wall-clock time on drop, nested under any enclosing spans opened
    /// on the same thread. When disabled this is a no-op guard.
    pub fn span(&self, name: &'static str) -> SpanGuard<'_> {
        if !self.is_enabled() {
            return SpanGuard { open: None };
        }
        let thread = std::thread::current().id();
        {
            let mut inner = self.inner.lock();
            match inner.stacks.iter_mut().find(|(id, _)| *id == thread) {
                Some((_, stack)) => stack.push(name),
                None => inner.stacks.push((thread, vec![name])),
            }
        }
        SpanGuard {
            open: Some(OpenSpan {
                registry: self,
                name,
                start: Instant::now(),
            }),
        }
    }

    fn close_span(&self, name: &'static str, elapsed_us: u64) {
        let thread = std::thread::current().id();
        let mut inner = self.inner.lock();
        // RAII guarantees LIFO drop order per thread, so `name` is the
        // top of this thread's stack unless `reset` intervened.
        let path = match inner.stacks.iter_mut().find(|(id, _)| *id == thread) {
            Some((_, stack)) if stack.last() == Some(&name) => {
                let path = stack.join("/");
                stack.pop();
                path
            }
            _ => name.to_string(),
        };
        if self.tracing.load(Ordering::Relaxed) {
            let now_us = inner.trace_now_us();
            let lane = inner.lane_for(thread);
            inner.trace_events.push(TraceEvent {
                name: path.clone(),
                trace: None,
                lane,
                ts_us: now_us.saturating_sub(elapsed_us),
                dur_us: elapsed_us,
                instant: false,
                terminal: false,
                detail: None,
            });
        }
        inner.spans.entry(path).or_default().record(elapsed_us);
    }

    /// Adds `delta` to a monotonic counter.
    pub fn counter_add(&self, name: &str, delta: u64) {
        if !self.is_enabled() {
            return;
        }
        let mut inner = self.inner.lock();
        match inner.counters.get_mut(name) {
            Some(v) => *v += delta,
            None => {
                inner.counters.insert(name.to_string(), delta);
            }
        }
    }

    /// Sets a gauge to its latest value.
    pub fn gauge_set(&self, name: &str, value: f64) {
        if !self.is_enabled() {
            return;
        }
        let mut inner = self.inner.lock();
        match inner.gauges.get_mut(name) {
            Some(v) => *v = value,
            None => {
                inner.gauges.insert(name.to_string(), value);
            }
        }
    }

    /// Records one observation into a named value histogram
    /// (payload sizes, queue depths, ...).
    pub fn record_value(&self, name: &str, value: u64) {
        if !self.is_enabled() {
            return;
        }
        let mut inner = self.inner.lock();
        match inner.values.get_mut(name) {
            Some(h) => h.record(value),
            None => {
                let mut h = Histogram::new();
                h.record(value);
                inner.values.insert(name.to_string(), h);
            }
        }
    }

    /// Forwards an event to the configured sink, if any. Dropped
    /// silently when disabled or sinkless.
    pub fn emit(&self, event: TelemetryEvent) {
        if !self.is_enabled() {
            return;
        }
        // Clone the sink handle out of the lock so slow sinks (file
        // writers) never block other instrumentation points.
        let sink = self.inner.lock().sink.clone();
        if let Some(sink) = sink {
            sink.record(&event);
        }
    }

    /// Installs the event sink, replacing any previous one.
    pub fn set_sink(&self, sink: Arc<dyn TelemetrySink>) {
        self.inner.lock().sink = Some(sink);
    }

    /// Removes the event sink.
    pub fn clear_sink(&self) {
        self.inner.lock().sink = None;
    }

    /// Clears all recorded data (spans, counters, gauges, values, open
    /// span stacks, and the trace buffer). The enabled and tracing
    /// flags and the sink are kept.
    pub fn reset(&self) {
        let mut inner = self.inner.lock();
        inner.spans.clear();
        inner.counters.clear();
        inner.gauges.clear();
        inner.values.clear();
        inner.stacks.clear();
        inner.trace_epoch = None;
        inner.trace_events.clear();
        inner.trace_lanes.clear();
    }

    /// Copies current state into an immutable, serializable summary.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let inner = self.inner.lock();
        let spans = inner
            .spans
            .iter()
            .map(|(path, hist)| {
                let name = path.rsplit('/').next().unwrap_or(path).to_string();
                SpanSummary {
                    depth: path.matches('/').count(),
                    path: path.clone(),
                    name,
                    count: hist.count(),
                    total_us: hist.sum(),
                    mean_us: hist.mean(),
                    p50_us: hist.percentile(0.50),
                    p95_us: hist.percentile(0.95),
                    p99_us: hist.percentile(0.99),
                    max_us: hist.max(),
                }
            })
            .collect();
        let values = inner
            .values
            .iter()
            .map(|(name, hist)| ValueSummary {
                name: name.clone(),
                count: hist.count(),
                sum: hist.sum(),
                p50: hist.percentile(0.50),
                p95: hist.percentile(0.95),
                p99: hist.percentile(0.99),
                max: hist.max(),
            })
            .collect();
        TelemetrySnapshot {
            spans,
            counters: inner
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
            gauges: inner.gauges.iter().map(|(k, v)| (k.clone(), *v)).collect(),
            values,
        }
    }
}

struct OpenSpan<'a> {
    registry: &'a Registry,
    name: &'static str,
    start: Instant,
}

/// RAII guard returned by [`Registry::span`]; records the span's
/// duration when dropped.
#[must_use = "a span records its duration when the guard drops; binding to _ closes it immediately"]
pub struct SpanGuard<'a> {
    open: Option<OpenSpan<'a>>,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some(open) = self.open.take() {
            let elapsed_us = open.start.elapsed().as_micros().min(u64::MAX as u128) as u64;
            open.registry.close_span(open.name, elapsed_us);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_records_nothing() {
        let reg = Registry::new();
        {
            let _guard = reg.span("a");
            reg.counter_add("c", 1);
            reg.gauge_set("g", 1.0);
            reg.record_value("v", 1);
        }
        let snap = reg.snapshot();
        assert!(snap.spans.is_empty());
        assert!(snap.counters.is_empty());
        assert!(snap.gauges.is_empty());
        assert!(snap.values.is_empty());
    }

    #[test]
    fn nested_spans_build_slash_paths() {
        let reg = Registry::new();
        reg.enable();
        {
            let _outer = reg.span("outer");
            {
                let _inner = reg.span("inner");
            }
            {
                let _inner = reg.span("inner");
            }
        }
        {
            let _lone = reg.span("inner");
        }
        let snap = reg.snapshot();
        assert_eq!(snap.span("outer").expect("outer").count, 1);
        assert_eq!(snap.span("outer/inner").expect("nested").count, 2);
        assert_eq!(snap.span("inner").expect("top-level inner").count, 1);
        assert_eq!(snap.span("outer/inner").unwrap().depth, 1);
        assert_eq!(snap.span("outer/inner").unwrap().name, "inner");
    }

    #[test]
    fn nested_span_total_includes_child_time() {
        let reg = Registry::new();
        reg.enable();
        {
            let _outer = reg.span("outer");
            let _inner = reg.span("inner");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let snap = reg.snapshot();
        let outer = snap.span("outer").unwrap();
        let inner = snap.span("outer/inner").unwrap();
        assert!(inner.total_us >= 2_000, "inner = {}us", inner.total_us);
        assert!(
            outer.total_us >= inner.total_us,
            "outer {}us < inner {}us",
            outer.total_us,
            inner.total_us
        );
    }

    #[test]
    fn sibling_threads_do_not_nest_under_each_other() {
        let reg = Registry::new();
        reg.enable();
        std::thread::scope(|scope| {
            let _outer = reg.span("outer");
            scope
                .spawn(|| {
                    let _other = reg.span("other");
                })
                .join()
                .unwrap();
        });
        let snap = reg.snapshot();
        assert!(
            snap.span("other").is_some(),
            "span from second thread is top-level"
        );
        assert!(snap.span("outer/other").is_none());
    }

    #[test]
    fn counters_accumulate_across_threads() {
        let reg = Registry::new();
        reg.enable();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..1000 {
                        reg.counter_add("hits", 1);
                    }
                });
            }
        });
        assert_eq!(reg.snapshot().counter("hits"), Some(4000));
    }

    #[test]
    fn gauges_keep_latest_value() {
        let reg = Registry::new();
        reg.enable();
        reg.gauge_set("load", 0.25);
        reg.gauge_set("load", 0.75);
        let snap = reg.snapshot();
        assert_eq!(snap.gauges, vec![("load".to_string(), 0.75)]);
    }

    #[test]
    fn reset_clears_data_but_keeps_enabled() {
        let reg = Registry::new();
        reg.enable();
        reg.counter_add("c", 5);
        {
            let _s = reg.span("s");
        }
        reg.reset();
        assert!(reg.is_enabled());
        let snap = reg.snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.spans.is_empty());
    }

    #[test]
    fn tracing_captures_spans_and_marks_with_lanes() {
        let reg = Registry::new();
        reg.enable();
        reg.set_tracing(true);
        assert!(reg.is_tracing());
        let id = TraceId::new(0, 1, 2);
        {
            let _outer = reg.span("outer");
            let _inner = reg.span("inner");
            reg.trace_mark(id, crate::trace::stage::DELIVERED, false);
        }
        std::thread::scope(|scope| {
            scope.spawn(|| {
                let _other = reg.span("other");
                reg.trace_mark_with(id, crate::trace::stage::FUSED, true, 7);
            });
        });
        let trace = reg.take_trace();
        assert_eq!(trace.lane_count, 2, "one lane per recording thread");
        assert!(trace
            .events
            .iter()
            .any(|e| e.name == "outer/inner" && !e.instant));
        assert!(trace.has_terminal(id));
        let chain = trace.events_for(id);
        assert_eq!(chain.len(), 2);
        assert_eq!(chain[1].detail, Some(7));
        // Drained: a second take is empty.
        assert!(reg.take_trace().events.is_empty());
        // Metrics side is unaffected by tracing.
        assert_eq!(reg.snapshot().span("outer").unwrap().count, 1);
    }

    #[test]
    fn tracing_is_inert_when_disabled_or_off() {
        let reg = Registry::new();
        reg.set_tracing(true);
        // Enabled flag off: nothing records.
        reg.trace_mark(TraceId::new(0, 0, 1), "x", true);
        assert!(!reg.is_tracing());
        assert!(reg.take_trace().events.is_empty());
        // Enabled but tracing off: spans record, buffer stays empty.
        reg.enable();
        reg.set_tracing(false);
        {
            let _s = reg.span("plain");
        }
        reg.trace_mark(TraceId::new(0, 0, 1), "x", true);
        assert!(reg.take_trace().events.is_empty());
        assert_eq!(reg.snapshot().span("plain").unwrap().count, 1);
    }

    #[test]
    fn reset_clears_trace_buffer_and_lanes() {
        let reg = Registry::new();
        reg.enable();
        reg.set_tracing(true);
        {
            let _s = reg.span("s");
        }
        reg.trace_mark(TraceId::new(1, 2, 3), "x", true);
        reg.reset();
        let trace = reg.take_trace();
        assert!(trace.events.is_empty());
        assert_eq!(trace.lane_count, 0);
        assert!(reg.is_tracing(), "tracing flag survives reset");
    }

    #[test]
    fn emit_reaches_sink_only_when_enabled() {
        let reg = Registry::new();
        let sink = Arc::new(crate::sink::MemorySink::new());
        reg.set_sink(sink.clone());
        reg.emit(TelemetryEvent::new("dropped"));
        assert!(sink.is_empty());
        reg.enable();
        reg.emit(TelemetryEvent::new("kept").with("n", 1u64));
        assert_eq!(sink.len(), 1);
        assert_eq!(sink.events()[0].kind(), "kept");
    }
}
