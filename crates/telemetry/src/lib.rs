//! `cooper-telemetry`: pipeline-wide tracing spans, a metrics
//! registry, and structured event export for the Cooper workspace.
//!
//! The crate is deliberately tiny and dependency-free (std plus the
//! workspace's existing `serde` marker derives and `parking_lot`): the
//! perception pipeline must pay essentially nothing for
//! instrumentation when telemetry is off, and the crate must build in
//! the offline environments the workspace targets.
//!
//! # Model
//!
//! - **Spans** time a region via an RAII guard. Spans opened while
//!   another span is open on the same thread nest under it, producing
//!   `/`-joined paths such as
//!   `pipeline.perceive/pipeline.fuse/packet.decode`.
//!   Durations aggregate into fixed-footprint power-of-two histograms,
//!   so p50/p95/p99/max come free at snapshot time.
//! - **Counters** accumulate monotonically (`pipeline.packets_fused`).
//! - **Gauges** keep their latest value (`fleet.connected_ratio`).
//! - **Value histograms** aggregate non-duration observations
//!   (`v2x.frame_bytes`).
//! - **Events** are structured records forwarded to a pluggable
//!   [`TelemetrySink`] and exportable as JSON lines.
//!
//! # Naming scheme
//!
//! Names are `<subsystem>.<point>` with dots: `pipeline.fuse`,
//! `spod.voxelize`, `v2x.tx_bytes`, `fleet.step`. The `/` separator is
//! reserved for span nesting.
//!
//! # Global vs local
//!
//! Instrumented library code records into the process-wide registry
//! via the free functions ([`span()`], [`counter_add`], ...). Tests and
//! embedders that need isolation construct their own [`Registry`].
//!
//! ```
//! cooper_telemetry::enable();
//! {
//!     let _outer = cooper_telemetry::span("pipeline.fuse");
//!     let _inner = cooper_telemetry::span("packet.decode");
//! }
//! cooper_telemetry::counter_add("pipeline.packets_fused", 3);
//! let snapshot = cooper_telemetry::snapshot();
//! assert_eq!(snapshot.span("pipeline.fuse/packet.decode").unwrap().count, 1);
//! cooper_telemetry::reset();
//! cooper_telemetry::disable();
//! ```

pub mod event;
pub mod histogram;
pub mod names;
pub mod registry;
pub mod sink;
pub mod snapshot;
pub mod trace;

pub use event::{FieldValue, TelemetryEvent};
pub use histogram::Histogram;
pub use registry::{Registry, SpanGuard};
pub use sink::{JsonLinesSink, MemorySink, TelemetrySink};
pub use snapshot::{SelfTimeEntry, SpanSummary, TelemetrySnapshot, ValueSummary};
pub use trace::{ChromeTrace, TraceEvent, TraceId};

use std::sync::Arc;

static GLOBAL: Registry = Registry::new();

/// The process-wide registry used by the free functions below.
pub fn global() -> &'static Registry {
    &GLOBAL
}

/// Turns global recording on.
pub fn enable() {
    GLOBAL.enable();
}

/// Turns global recording off; recorded data is kept.
pub fn disable() {
    GLOBAL.disable();
}

/// Whether the global registry currently records.
pub fn is_enabled() -> bool {
    GLOBAL.is_enabled()
}

/// Opens a timing span on the global registry.
pub fn span(name: &'static str) -> SpanGuard<'static> {
    GLOBAL.span(name)
}

/// Adds to a global monotonic counter.
pub fn counter_add(name: &str, delta: u64) {
    GLOBAL.counter_add(name, delta);
}

/// Sets a global gauge.
pub fn gauge_set(name: &str, value: f64) {
    GLOBAL.gauge_set(name, value);
}

/// Records into a global value histogram.
pub fn record_value(name: &str, value: u64) {
    GLOBAL.record_value(name, value);
}

/// Emits an event to the global sink.
pub fn emit(event: TelemetryEvent) {
    GLOBAL.emit(event);
}

/// Installs the global event sink.
pub fn set_sink(sink: Arc<dyn TelemetrySink>) {
    GLOBAL.set_sink(sink);
}

/// Removes the global event sink.
pub fn clear_sink() {
    GLOBAL.clear_sink();
}

/// Snapshots the global registry.
pub fn snapshot() -> TelemetrySnapshot {
    GLOBAL.snapshot()
}

/// Turns global trace capture on or off (see [`Registry::set_tracing`];
/// effective only while [`enable`]d).
pub fn set_tracing(on: bool) {
    GLOBAL.set_tracing(on);
}

/// Whether the global registry currently captures trace events.
pub fn is_tracing() -> bool {
    GLOBAL.is_tracing()
}

/// Appends a per-transfer stage mark to the global trace buffer.
pub fn trace_mark(trace: TraceId, stage: &str, terminal: bool) {
    GLOBAL.trace_mark(trace, stage, terminal);
}

/// [`trace_mark`] with a stage-specific numeric detail.
pub fn trace_mark_with(trace: TraceId, stage: &str, terminal: bool, detail: u64) {
    GLOBAL.trace_mark_with(trace, stage, terminal, detail);
}

/// Drains the global trace buffer.
pub fn take_trace() -> ChromeTrace {
    GLOBAL.take_trace()
}

/// Clears all global recordings (keeps the enabled flag and sink).
pub fn reset() {
    GLOBAL.reset();
}

/// Opens a span on the global registry:
/// `let _guard = span!("pipeline.fuse");`.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span($name)
    };
}

#[cfg(test)]
mod tests {
    // The global registry is shared across the test binary's threads,
    // so tests here use distinctive names and avoid `reset`; behaviour
    // is covered in depth by per-module tests on local registries.
    use super::*;

    #[test]
    fn global_round_trip() {
        enable();
        {
            let _guard = span!("lib_test.outer");
            let _inner = span!("lib_test.inner");
        }
        counter_add("lib_test.counter", 2);
        gauge_set("lib_test.gauge", 1.5);
        record_value("lib_test.value", 64);

        let snap = snapshot();
        assert_eq!(snap.span("lib_test.outer").unwrap().count, 1);
        assert_eq!(snap.span("lib_test.outer/lib_test.inner").unwrap().count, 1);
        assert_eq!(snap.counter("lib_test.counter"), Some(2));
        assert_eq!(snap.gauge("lib_test.gauge"), Some(1.5));
        assert_eq!(snap.value("lib_test.value").unwrap().count, 1);
    }

    #[test]
    fn global_sink_receives_events() {
        let sink = Arc::new(MemorySink::new());
        set_sink(sink.clone());
        enable();
        emit(TelemetryEvent::new("lib_test.event").with("ok", true));
        clear_sink();
        assert!(sink
            .events()
            .iter()
            .any(|event| event.kind() == "lib_test.event"));
    }
}
