//! Offline stub of `crossbeam`, backed by `std::thread::scope`.
//!
//! Provides the scoped-thread subset the Cooper workspace uses:
//! `crossbeam::thread::scope`, `Scope::spawn` (whose closure receives
//! the scope, as in the real crate) and `ScopedJoinHandle::join`.

pub use thread::scope;

pub mod thread {
    //! Scoped threads.

    use std::any::Any;

    /// The result of a scope or a joined scoped thread: `Err` carries
    /// the panic payload.
    pub type Result<T> = std::result::Result<T, Box<dyn Any + Send + 'static>>;

    /// A scope handle passed to [`scope`]'s closure and to every
    /// spawned thread.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish, returning its result.
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope, so
        /// spawned threads can spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Runs `f` with a scope in which threads borrowing from the
    /// enclosing environment can be spawned; all are joined before
    /// `scope` returns.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_join_in_order() {
        let data = vec![1, 2, 3];
        let doubled = crate::thread::scope(|scope| {
            let handles: Vec<_> = data
                .iter()
                .map(|&x| scope.spawn(move |_| x * 2))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("no panic"))
                .collect::<Vec<i32>>()
        })
        .expect("scope");
        assert_eq!(doubled, vec![2, 4, 6]);
    }
}
