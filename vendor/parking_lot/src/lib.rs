//! Offline stub of `parking_lot`, backed by `std::sync`.
//!
//! The build environment has no crates.io access; this crate implements
//! the exact subset of the `parking_lot` 0.12 API the Cooper workspace
//! uses: `Mutex`/`RwLock` with infallible, non-poisoning lock methods
//! and `const` constructors.

use std::sync::{self, PoisonError};

/// A mutex that never poisons: a panic while holding the lock simply
/// releases it, as in the real `parking_lot`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a mutex (usable in `static` items).
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// `parking_lot::const_mutex` compatibility constructor.
pub const fn const_mutex<T>(value: T) -> Mutex<T> {
    Mutex::new(value)
}

/// A reader-writer lock that never poisons.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// RAII read guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// RAII write guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a lock (usable in `static` items).
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        static M: Mutex<i32> = Mutex::new(1);
        *M.lock() += 1;
        assert_eq!(*M.lock(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(l.into_inner(), 6);
    }
}
