//! Offline stub of `criterion`.
//!
//! A minimal timing harness with criterion-compatible surface:
//! [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros. Each benchmark
//! runs a short warm-up, then `sample_size` timed samples, and prints
//! mean/min per-iteration wall-clock time. No statistics, plots, or
//! baseline comparison.

use std::time::{Duration, Instant};

/// Opaque barrier preventing the optimiser from deleting a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Controls how [`Bencher::iter_batched`] amortises setup cost; the
/// stub times one routine call per setup call regardless of variant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
    NumBatches(u64),
    NumIterations(u64),
}

/// Measurement entry point handed to benchmark functions.
pub struct Bencher {
    samples: usize,
    /// Mean per-iteration time of the last `iter*` call.
    last_mean: Duration,
    last_min: Duration,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Bencher {
            samples,
            last_mean: Duration::ZERO,
            last_min: Duration::ZERO,
        }
    }

    /// Times `routine`, called once per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: one untimed call.
        black_box(routine());
        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            let dt = start.elapsed();
            total += dt;
            min = min.min(dt);
        }
        self.last_mean = total / self.samples as u32;
        self.last_min = min;
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            let dt = start.elapsed();
            total += dt;
            min = min.min(dt);
        }
        self.last_mean = total / self.samples as u32;
        self.last_min = min;
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} us", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

fn run_one(id: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher::new(samples);
    f(&mut bencher);
    println!(
        "bench {id:<48} mean {:>12}  min {:>12}  ({samples} samples)",
        format_duration(bencher.last_mean),
        format_duration(bencher.last_min),
    );
}

/// Named set of related benchmarks sharing a sample count.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into());
        run_one(&id, self.samples, &mut f);
        self
    }

    /// Ends the group (no-op beyond marking intent, as in criterion).
    pub fn finish(self) {}
}

/// Benchmark driver.
pub struct Criterion {
    samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { samples: 20 }
    }
}

impl Criterion {
    /// Honour criterion's CLI shim; arguments are ignored.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: self.samples,
            _criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into(), self.samples, &mut f);
        self
    }
}

/// Declares a function running the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_addition(c: &mut Criterion) {
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        group.bench_function("iter", |b| b.iter(|| black_box(1u64 + 1)));
        group.bench_function("iter_batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::LargeInput)
        });
        group.finish();
    }

    #[test]
    fn harness_runs_group_and_standalone() {
        criterion_group!(benches, bench_addition);
        benches();
        Criterion::default()
            .configure_from_args()
            .bench_function("standalone", |b| b.iter(|| black_box(2u64 * 2)));
    }
}
