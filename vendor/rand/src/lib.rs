//! Offline stub of the `rand` crate.
//!
//! Provides the subset the Cooper workspace uses: the [`Rng`] extension
//! trait (`gen`, `gen_range`, `gen_bool`), [`SeedableRng::seed_from_u64`],
//! a deterministic [`rngs::StdRng`] built on SplitMix64, and
//! [`thread_rng`]. Statistical quality is adequate for simulation and
//! tests, not cryptography.

use std::ops::{Range, RangeInclusive};

/// Core source of randomness: a stream of `u64` values.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A value that can be sampled uniformly from a generator's full output
/// range (the `Standard` distribution in real `rand`).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 significand bits -> uniform in [0, 1).
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 significand bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A range that [`Rng::gen_range`] can sample a `T` from. Shaped like
/// the real crate's `SampleRange<T>` so literal ranges infer their
/// element type from the call site.
pub trait SampleRange<T> {
    /// Draws one value from `rng` within the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + (self.end - self.start) * <$t as Standard>::sample(rng)
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                lo + (hi - lo) * <$t as Standard>::sample(rng)
            }
        }
    )*};
}

impl_float_sample_range!(f32, f64);

/// Extension methods for random generators, mirroring `rand::Rng`.
///
/// Generic methods take `&mut self` without a `Sized` bound so the
/// trait is usable behind `R: Rng + ?Sized`.
pub trait Rng: RngCore {
    /// Samples a value from the standard distribution
    /// (floats in `[0, 1)`, integers over their full range).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics when `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0, 1]");
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a `u64` seed.
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    //! Concrete generator types.

    use super::{RngCore, SeedableRng};

    /// Deterministic generator (SplitMix64). Same seed, same stream —
    /// which is all the workspace relies on.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }

    /// Per-thread generator returned by [`crate::thread_rng`].
    #[derive(Clone, Debug)]
    pub struct ThreadRng {
        _not_send: std::marker::PhantomData<*mut ()>,
    }

    impl ThreadRng {
        pub(crate) fn new() -> Self {
            ThreadRng {
                _not_send: std::marker::PhantomData,
            }
        }
    }

    thread_local! {
        static THREAD_RNG_STATE: std::cell::Cell<u64> = std::cell::Cell::new({
            use std::hash::{Hash, Hasher};
            let mut h = std::collections::hash_map::DefaultHasher::new();
            std::thread::current().id().hash(&mut h);
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_nanos() as u64)
                .unwrap_or(0)
                .hash(&mut h);
            h.finish() | 1
        });
    }

    impl RngCore for ThreadRng {
        fn next_u64(&mut self) -> u64 {
            THREAD_RNG_STATE.with(|state| {
                let mut rng = StdRng { state: state.get() };
                let v = rng.next_u64();
                state.set(rng.state);
                v
            })
        }
    }
}

/// Returns a lazily seeded per-thread generator.
pub fn thread_rng() -> rngs::ThreadRng {
    rngs::ThreadRng::new()
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_stream_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let f = rng.gen_range(-2.5_f64..7.5);
            assert!((-2.5..7.5).contains(&f));
            let i = rng.gen_range(3_usize..9);
            assert!((3..9).contains(&i));
            let j = rng.gen_range(-4_i32..=4);
            assert!((-4..=4).contains(&j));
        }
    }

    #[test]
    fn unit_floats_stay_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn works_through_dyn_sized_borrow() {
        fn roll<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen::<f64>()
        }
        let mut rng = StdRng::seed_from_u64(9);
        let f = roll(&mut rng);
        assert!((0.0..1.0).contains(&f));
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
    }
}
