//! Offline stub of the `bytes` crate.
//!
//! Implements the subset the Cooper workspace uses: cheaply cloneable
//! immutable [`Bytes`], growable [`BytesMut`], and the big-endian
//! [`Buf`]/[`BufMut`] cursor traits.

use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// A cheaply cloneable, immutable byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copies `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes { data: data.into() }
    }

    /// Creates a buffer from a static slice (copied here; the real
    /// crate borrows, which only affects allocation, not behaviour).
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes::copy_from_slice(data)
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: v.into() }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

/// A growable byte buffer implementing [`BufMut`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with room for `capacity` bytes.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Freezes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data.into(),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, data: &[u8]) {
        self.data.extend_from_slice(data);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

/// Read cursor over a contiguous byte source; integers decode
/// big-endian, as in the real `bytes` crate.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;
    /// The unconsumed bytes.
    fn chunk(&self) -> &[u8];
    /// Consumes `cnt` bytes.
    ///
    /// # Panics
    ///
    /// Panics when fewer than `cnt` bytes remain.
    fn advance(&mut self, cnt: usize);

    /// Copies `dst.len()` bytes out, consuming them.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    /// Reads a big-endian `i16`.
    fn get_i16(&mut self) -> i16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        i16::from_be_bytes(b)
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }

    /// Reads a big-endian `f32`.
    fn get_f32(&mut self) -> f32 {
        f32::from_bits(self.get_u32())
    }

    /// Reads a big-endian `f64`.
    fn get_f64(&mut self) -> f64 {
        f64::from_bits(self.get_u64())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "buffer underflow");
        *self = &self[cnt..];
    }
}

/// Write cursor; integers encode big-endian, as in the real `bytes`
/// crate.
pub trait BufMut {
    /// Appends a slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Writes one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Writes a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Writes a big-endian `i16`.
    fn put_i16(&mut self, v: i16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Writes a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Writes a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Writes a big-endian `f32`.
    fn put_f32(&mut self, v: f32) {
        self.put_u32(v.to_bits());
    }

    /// Writes a big-endian `f64`.
    fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_widths() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_u8(7);
        buf.put_i16(-300);
        buf.put_u32(70_000);
        buf.put_u64(1 << 40);
        buf.put_f32(1.5);
        buf.put_f64(-2.25);
        buf.put_slice(b"xy");
        let frozen = buf.freeze();
        let mut cursor: &[u8] = &frozen;
        assert_eq!(cursor.get_u8(), 7);
        assert_eq!(cursor.get_i16(), -300);
        assert_eq!(cursor.get_u32(), 70_000);
        assert_eq!(cursor.get_u64(), 1 << 40);
        assert_eq!(cursor.get_f32(), 1.5);
        assert_eq!(cursor.get_f64(), -2.25);
        let mut out = [0u8; 2];
        cursor.copy_to_slice(&mut out);
        assert_eq!(&out, b"xy");
        assert_eq!(cursor.remaining(), 0);
    }

    #[test]
    fn bytes_clone_is_cheap_and_equal() {
        let b = Bytes::copy_from_slice(b"hello");
        let c = b.clone();
        assert_eq!(b, c);
        assert_eq!(&c[..], b"hello");
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut cursor: &[u8] = &[1];
        let _ = cursor.get_u32();
    }
}
