//! Offline stub of `serde`.
//!
//! The Cooper workspace derives `Serialize`/`Deserialize` as a
//! forward-compatibility marker but never routes data through serde
//! (artifacts are written with hand-rolled CSV/JSON). Marker traits and
//! no-op derives are therefore sufficient, and keep the workspace
//! building without network access.

/// Marker trait; the real serde serialization contract is not needed
/// offline.
pub trait Serialize {}

/// Marker trait; the real serde deserialization contract is not needed
/// offline.
pub trait Deserialize {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
