//! Offline stub of `proptest`.
//!
//! Runs each property as a deterministic random-sampling test: the
//! [`proptest!`] macro expands to a `#[test]` that draws `cases`
//! samples from each strategy (seeded from the test name, so failures
//! reproduce) and executes the body. There is no shrinking — a failing
//! case panics with the drawn values printed by `prop_assert!`.
//!
//! Covered surface: [`Strategy`] (with `prop_map`), range and tuple
//! strategies, [`any`], `bool::ANY`, `collection::vec`,
//! [`ProptestConfig`], `proptest!`, `prop_assert!`, `prop_assert_eq!`,
//! and the [`prelude`].

use std::ops::{Range, RangeInclusive};

/// Deterministic SplitMix64 generator driving all sampling.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Seeds a [`TestRng`] from a test name (FNV-1a) so every run of a
/// given property test draws the same cases.
pub fn test_rng(name: &str) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    TestRng { state: h | 1 }
}

/// A recipe for generating values of `Value`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + (self.end - self.start) * rng.unit_f64() as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                lo + (hi - lo) * rng.unit_f64() as $t
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);

/// One repeatable unit of a string pattern: a set of inclusive char
/// ranges plus a repetition count range.
#[derive(Clone, Debug)]
struct PatternUnit {
    ranges: Vec<(char, char)>,
    lo: usize,
    hi: usize,
}

/// Parses the regex subset used as string strategies: literal chars,
/// `\n`/`\t`/`\r`/`\\`-style escapes, char classes `[a-z...]`, and
/// quantifiers `{lo,hi}` / `{n}` / `*` / `+` / `?`.
fn parse_pattern(pattern: &str) -> Vec<PatternUnit> {
    let mut chars = pattern.chars().peekable();
    let mut units = Vec::new();

    fn unescape(c: char) -> char {
        match c {
            'n' => '\n',
            't' => '\t',
            'r' => '\r',
            other => other,
        }
    }

    while let Some(c) = chars.next() {
        let ranges = match c {
            '[' => {
                let mut ranges = Vec::new();
                loop {
                    let lo = match chars.next() {
                        None => panic!("unterminated char class in pattern {pattern:?}"),
                        Some(']') => break,
                        Some('\\') => unescape(chars.next().expect("escape")),
                        Some(other) => other,
                    };
                    if chars.peek() == Some(&'-') {
                        chars.next();
                        let hi = match chars.next().expect("range end") {
                            '\\' => unescape(chars.next().expect("escape")),
                            other => other,
                        };
                        ranges.push((lo, hi));
                    } else {
                        ranges.push((lo, lo));
                    }
                }
                ranges
            }
            '\\' => {
                let c = unescape(chars.next().expect("escape"));
                vec![(c, c)]
            }
            other => vec![(other, other)],
        };

        let (lo, hi) = match chars.peek() {
            Some('{') => {
                chars.next();
                let mut spec = String::new();
                for c in chars.by_ref() {
                    if c == '}' {
                        break;
                    }
                    spec.push(c);
                }
                match spec.split_once(',') {
                    Some((a, b)) => (
                        a.trim().parse().expect("quantifier lo"),
                        b.trim().parse().expect("quantifier hi"),
                    ),
                    None => {
                        let n = spec.trim().parse().expect("quantifier");
                        (n, n)
                    }
                }
            }
            Some('*') => {
                chars.next();
                (0, 32)
            }
            Some('+') => {
                chars.next();
                (1, 32)
            }
            Some('?') => {
                chars.next();
                (0, 1)
            }
            _ => (1, 1),
        };
        units.push(PatternUnit { ranges, lo, hi });
    }
    units
}

/// String patterns act as strategies, as in real proptest: the pattern
/// is the regex subset documented on [`parse_pattern`].
impl Strategy for str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for unit in parse_pattern(self) {
            let span = (unit.hi - unit.lo) as u64 + 1;
            let n = unit.lo + (rng.next_u64() % span) as usize;
            let total: u64 = unit
                .ranges
                .iter()
                .map(|&(lo, hi)| hi as u64 - lo as u64 + 1)
                .sum();
            for _ in 0..n {
                let mut idx = rng.next_u64() % total.max(1);
                for &(lo, hi) in &unit.ranges {
                    let size = hi as u64 - lo as u64 + 1;
                    if idx < size {
                        out.push(char::from_u32(lo as u32 + idx as u32).unwrap_or(lo));
                        break;
                    }
                    idx -= size;
                }
            }
        }
        out
    }
}

/// Types with a canonical whole-domain strategy, used by [`any`].
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        // Finite values spanning a wide magnitude range.
        ((rng.unit_f64() - 0.5) * 2e6) as f32
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        (rng.unit_f64() - 0.5) * 2e12
    }
}

/// Strategy returned by [`any`].
#[derive(Clone, Debug)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy covering the whole domain of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

pub mod bool {
    //! Boolean strategies.

    /// Strategy yielding either boolean with equal probability.
    #[derive(Clone, Copy, Debug)]
    pub struct BoolAny;

    /// Uniform boolean strategy.
    pub const ANY: BoolAny = BoolAny;

    impl super::Strategy for BoolAny {
        type Value = bool;
        fn sample(&self, rng: &mut super::TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on a generated collection's length, converted
    /// from the range forms `proptest` accepts.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    /// Strategy returned by [`vec`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        len: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.hi - self.len.lo) as u64 + 1;
            let n = self.len.lo + (rng.next_u64() % span) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Generates `Vec`s whose length is drawn from `len` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            len: len.into(),
        }
    }
}

/// Runner configuration; only `cases` is honoured by this stub.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases drawn per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Declares property tests. Each `fn name(pat in strategy, ...) { .. }`
/// becomes a `#[test]` drawing `cases` deterministic samples.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    let ($($arg,)+) = ($($crate::Strategy::sample(&($strat), &mut rng),)+);
                    let run = || -> ::std::result::Result<(), ::std::string::String> {
                        $body
                        return Ok(());
                    };
                    if let Err(msg) = run() {
                        panic!("property {} failed at case {case}: {msg}", stringify!($name));
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err(format!(
                "assertion failed: {} == {}\n  left: {l:?}\n right: {r:?}",
                stringify!($left),
                stringify!($right),
            ));
        }
    }};
}

pub mod prelude {
    //! Everything a property-test module usually imports.

    pub use crate::{any, Arbitrary, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, proptest};

    /// Namespaced strategy modules (`prop::collection::vec`, ...).
    pub mod prop {
        pub use crate::{bool, collection};
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        fn tuple_and_map_strategies(
            (a, b) in (0u32..10, 0.0f64..1.0),
            v in prop::collection::vec(any::<u8>(), 1..8),
            flag in prop::bool::ANY,
        ) {
            prop_assert!(a < 10);
            prop_assert!((0.0..1.0).contains(&b));
            prop_assert!(!v.is_empty() && v.len() < 8);
            prop_assert_eq!(flag || !flag, true);
        }

        fn mapped_strategy_applies_function(n in (0u64..100).prop_map(|x| x * 2)) {
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn sampling_is_deterministic_per_name() {
        let mut a = crate::test_rng("x");
        let mut b = crate::test_rng("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
