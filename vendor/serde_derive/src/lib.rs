//! No-op `Serialize`/`Deserialize` derives for the offline serde stub.
//!
//! The stub's traits are empty markers, so the derive only has to
//! recover the item's name and generic parameters and emit
//! `impl<...> ::serde::Trait for Name<...> {}`. Parsing is a small
//! hand-rolled token scan — `syn`/`quote` are unavailable offline.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "Serialize")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "Deserialize")
}

/// One parsed generic parameter: its declaration (with bounds, minus
/// any default) and its bare name as used in the type's argument list.
struct GenericParam {
    decl: String,
    name: String,
}

fn marker_impl(input: TokenStream, trait_name: &str) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip attributes, visibility, and anything else before the
    // `struct`/`enum` keyword.
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Ident(id) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" {
                    i += 1;
                    break;
                }
                i += 1;
            }
            _ => i += 1,
        }
    }

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("derive({trait_name}): expected type name, found {other:?}"),
    };
    i += 1;

    let params = match tokens.get(i) {
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => parse_generics(&tokens, i + 1),
        _ => Vec::new(),
    };

    let (impl_generics, type_args) = if params.is_empty() {
        (String::new(), String::new())
    } else {
        let decls: Vec<&str> = params.iter().map(|p| p.decl.as_str()).collect();
        let names: Vec<&str> = params.iter().map(|p| p.name.as_str()).collect();
        (
            format!("<{}>", decls.join(", ")),
            format!("<{}>", names.join(", ")),
        )
    };

    format!("impl{impl_generics} ::serde::{trait_name} for {name}{type_args} {{}}")
        .parse()
        .expect("derive output parses")
}

/// Parses `tokens` starting just past the opening `<` of a generics
/// list, up to the matching `>`. Defaults (`= ...`) are stripped from
/// declarations since impl generics cannot carry them.
fn parse_generics(tokens: &[TokenTree], mut i: usize) -> Vec<GenericParam> {
    let mut params = Vec::new();
    let mut depth = 1usize;
    let mut decl = String::new();
    let mut name: Option<String> = None;
    let mut in_default = false;

    while i < tokens.len() && depth > 0 {
        let tok = &tokens[i];
        match tok {
            TokenTree::Punct(p) => match p.as_char() {
                '<' => {
                    depth += 1;
                    if !in_default {
                        decl.push('<');
                    }
                }
                '>' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                    if !in_default {
                        decl.push('>');
                    }
                }
                ',' if depth == 1 => {
                    push_param(&mut params, &mut decl, &mut name);
                    in_default = false;
                }
                '=' if depth == 1 => in_default = true,
                c => {
                    if !in_default {
                        decl.push(c);
                        if c != '\'' {
                            decl.push(' ');
                        }
                    }
                }
            },
            TokenTree::Ident(id) => {
                let s = id.to_string();
                if !in_default {
                    // First ident of a param is its name, except the
                    // `const` keyword, where the name follows.
                    if name.is_none() && s != "const" {
                        name = Some(match decl.trim_end() {
                            d if d.ends_with('\'') => format!("'{s}"),
                            _ => s.clone(),
                        });
                    }
                    decl.push_str(&s);
                    decl.push(' ');
                }
            }
            other => {
                if !in_default {
                    decl.push_str(&other.to_string());
                    decl.push(' ');
                }
            }
        }
        i += 1;
    }
    push_param(&mut params, &mut decl, &mut name);
    params
}

fn push_param(params: &mut Vec<GenericParam>, decl: &mut String, name: &mut Option<String>) {
    let d = decl.trim().to_string();
    if let Some(n) = name.take() {
        params.push(GenericParam { decl: d, name: n });
    }
    decl.clear();
}

// Silence an unused-import lint when the crate is compiled standalone.
#[allow(unused)]
fn _delimiter_witness(d: Delimiter) -> Delimiter {
    d
}
