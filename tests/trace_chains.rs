//! End-to-end trace-context propagation: every packet transfer the
//! fleet attempts — across ARQ retries, partial salvage, alignment
//! rejection, channel corruption, consistency conviction and
//! quarantine — must leave a causal chain in the trace buffer that is
//! joinable by [`TraceId`] and ends in exactly the terminal stage its
//! reported outcome claims. One test function owns the global registry
//! for the whole file (this file is its own test binary), running the
//! four channel regimes sequentially with a reset in between.

use cooper_core::fleet::{
    straight_trajectory, FleetConfig, FleetSimulation, FleetStepReport, FleetVehicle,
    TransportDropReason, TrustGuardConfig,
};
use cooper_core::{AlignmentGuardConfig, CooperPipeline, PerfectChannel};
use cooper_lidar_sim::{scenario, BeamModel, FaultPlan};
use cooper_spod::{SpodConfig, SpodDetector};
use cooper_telemetry::trace::stage;
use cooper_telemetry::{ChromeTrace, TraceId};
use cooper_v2x::{ArqConfig, DsrcChannel, DsrcConfig, GilbertElliott, LossModel, SharedMedium};

fn pipeline() -> CooperPipeline {
    CooperPipeline::new(SpodDetector::new(SpodConfig::default()))
}

fn fleet(azimuth_steps: usize, fault_plan: Option<FaultPlan>) -> FleetSimulation {
    let scene = scenario::tj_scenario_1();
    let vehicles: Vec<FleetVehicle> = scene
        .observers
        .iter()
        .enumerate()
        .map(|(i, pose)| FleetVehicle {
            id: i as u32 + 1,
            trajectory: straight_trajectory(*pose, 1.0, 3),
            beams: BeamModel::vlp16().with_azimuth_steps(azimuth_steps),
        })
        .collect();
    FleetSimulation::new(
        scene.world.clone(),
        vehicles,
        FleetConfig {
            seed: 2024,
            threads: Some(2),
            fault_plan,
            ..FleetConfig::default()
        },
    )
}

/// The join the tracing exists for: every reported transport drop must
/// resolve, by its `(step, from, to)` identity, to a trace chain that
/// reaches a terminal stage — and the terminal must be consistent with
/// the reported [`TransportDropReason`].
fn assert_drops_join(reports: &[FleetStepReport], trace: &ChromeTrace) {
    for report in reports {
        for drop in &report.transport_drops {
            let id = TraceId::new(report.step, drop.from, drop.to);
            let chain = trace.events_for(id);
            assert!(
                !chain.is_empty(),
                "transport drop {id} ({:?}) has no trace events",
                drop.reason
            );
            assert!(
                trace.has_terminal(id),
                "transport drop {id} ({:?}) has no terminal stage",
                drop.reason
            );
            let has_stage = |name: &str| chain.iter().any(|e| e.name == name);
            match &drop.reason {
                TransportDropReason::DeadlineExceeded => {
                    assert!(has_stage(stage::DEADLINE_EXCEEDED), "{id}: {chain:?}");
                }
                // A salvaged partial is reported as a drop (the transfer
                // degraded) but its chain continues into fusion, so the
                // terminal is whatever phase 3 decided.
                TransportDropReason::PartialDelivery { .. } => {
                    assert!(has_stage(stage::PARTIAL), "{id}: {chain:?}");
                }
                TransportDropReason::SalvageFailed { .. } => {
                    assert!(has_stage(stage::SALVAGE_FAILED), "{id}: {chain:?}");
                }
                TransportDropReason::BudgetExceeded => {
                    assert!(has_stage(stage::GOVERN_SKIP), "{id}: {chain:?}");
                }
                TransportDropReason::AlignmentRejected { residual_mm } => {
                    let mark = chain
                        .iter()
                        .find(|e| e.name == stage::ALIGN_REJECTED)
                        .unwrap_or_else(|| panic!("{id}: no align_rejected in {chain:?}"));
                    assert_eq!(mark.detail, Some(u64::from(*residual_mm)));
                }
                TransportDropReason::Corrupted => {
                    assert!(has_stage(stage::V2X_CORRUPTED), "{id}: {chain:?}");
                }
                TransportDropReason::IntegrityFailed => {
                    assert!(has_stage(stage::INTEGRITY_FAILED), "{id}: {chain:?}");
                }
                TransportDropReason::Quarantined => {
                    assert!(has_stage(stage::QUARANTINED), "{id}: {chain:?}");
                }
                TransportDropReason::ConsistencyRejected { ghost_points } => {
                    let mark = chain
                        .iter()
                        .find(|e| e.name == stage::CONSISTENCY_REJECTED)
                        .unwrap_or_else(|| panic!("{id}: no consistency_rejected in {chain:?}"));
                    assert_eq!(mark.detail, Some(u64::from(*ghost_points)));
                }
            }
        }
    }
    // Stronger: *every* transfer the trace knows about ended somewhere —
    // fused, rejected, dropped, or skipped. No chain dangles.
    for id in trace.trace_ids() {
        assert!(trace.has_terminal(id), "transfer {id} never terminated");
    }
}

fn traced<R>(run: impl FnOnce() -> R) -> (R, ChromeTrace) {
    cooper_telemetry::reset();
    cooper_telemetry::enable();
    cooper_telemetry::set_tracing(true);
    let out = run();
    let trace = cooper_telemetry::take_trace();
    cooper_telemetry::set_tracing(false);
    cooper_telemetry::disable();
    cooper_telemetry::reset();
    (out, trace)
}

#[test]
fn every_transfer_outcome_joins_to_a_terminal_trace_chain() {
    let p = pipeline();

    // Regime 1 — bursty loss with fragment ARQ: retries and whole-frame
    // losses. The trace must show v2x transmit activity, at least one
    // ARQ retry mark, and a terminal for every transfer.
    let ((reports, _), trace) = traced(|| {
        let mut medium = SharedMedium::new(DsrcChannel::new(DsrcConfig {
            loss_model: LossModel::GilbertElliott(GilbertElliott::from_loss_rate(0.1)),
            ..DsrcConfig::default()
        }))
        .with_seed(77)
        .with_arq(ArqConfig::default());
        fleet(900, None).run_with_channel(&p, 2, &mut medium)
    });
    assert_drops_join(&reports, &trace);
    assert!(
        trace.events.iter().any(|e| e.name == stage::V2X_TRANSMIT),
        "ARQ medium recorded no transmit marks"
    );
    assert!(
        trace.events.iter().any(|e| e.name == stage::V2X_ARQ_RETRY),
        "lossy ARQ run recorded no retry marks"
    );
    assert!(
        trace.events.iter().any(|e| e.name == stage::FUSED),
        "no transfer fused"
    );

    // Regime 2 — a 3 Mbit/s medium with ARQ and a tight 5 Hz delivery
    // deadline: transfers are cut mid-flight, producing partial
    // deliveries whose salvage chains must continue into fusion.
    let ((reports, _), trace) = traced(|| {
        let mut medium = SharedMedium::new(DsrcChannel::new(DsrcConfig {
            data_rate: cooper_v2x::DataRate::Mbps3,
            ..DsrcConfig::default()
        }))
        .with_seed(11)
        .with_arq(ArqConfig::default())
        .with_rate_hz(5.0);
        fleet(1500, None).run_with_channel(&p, 2, &mut medium)
    });
    assert_drops_join(&reports, &trace);
    let partials = reports
        .iter()
        .flat_map(|r| &r.transport_drops)
        .filter(|d| matches!(d.reason, TransportDropReason::PartialDelivery { .. }))
        .count();
    assert!(
        partials > 0,
        "saturated medium produced no partial deliveries"
    );
    assert!(
        trace.events.iter().any(|e| e.name == stage::SALVAGED),
        "no partial delivery was salvaged"
    );

    // Regime 3 — perfect channel, heavy pose drift, alignment guard:
    // rejected packets must terminate with the rejection residual on
    // the mark.
    let guarded = pipeline().with_alignment_guard(AlignmentGuardConfig::default());
    let plan = FaultPlan::parse("2:drift:8.0@0..3").expect("valid plan");
    let ((reports, _), trace) = traced(|| {
        let mut channel = PerfectChannel;
        fleet(300, Some(plan)).run_with_channel(&guarded, 3, &mut channel)
    });
    assert_drops_join(&reports, &trace);
    let rejected = reports
        .iter()
        .flat_map(|r| &r.transport_drops)
        .filter(|d| matches!(d.reason, TransportDropReason::AlignmentRejected { .. }))
        .count();
    assert!(rejected > 0, "drifting sender was never rejected");
    assert!(
        trace
            .events
            .iter()
            .any(|e| e.name == stage::ALIGN_REJECTED && e.terminal),
        "no terminal align_rejected mark"
    );

    // Regime 4 — adversarial: a corrupting channel plus a ghost-cluster
    // sender under the trust guard. Corrupted frames, consistency
    // rejections and quarantine skips are all reported drops, and each
    // must still close its trace chain with the matching terminal.
    let guarded = pipeline().with_alignment_guard(AlignmentGuardConfig::default());
    let plan = FaultPlan::parse("2:ghost:3@0").expect("valid plan");
    let ((reports, stats), trace) = traced(|| {
        let mut medium = SharedMedium::new(DsrcChannel::new(DsrcConfig {
            corruption_probability: 0.01,
            ..DsrcConfig::default()
        }))
        .with_seed(5);
        let scene = scenario::tj_scenario_1();
        // Four vehicles on the two observer anchors (shifted ring by
        // ring): receivers need vantage over the space the ghost
        // clusters claim, or the consistency guard has no free-space
        // evidence to convict on.
        let vehicles: Vec<FleetVehicle> = (0..4usize)
            .map(|i| {
                let base = scene.observers[i % scene.observers.len()];
                let ring = (i / scene.observers.len()) as f64;
                let start = cooper_geometry::Pose::new(
                    base.position + cooper_geometry::Vec3::new(3.0 * ring, 3.0 * ring, 0.0),
                    base.attitude,
                );
                FleetVehicle {
                    id: i as u32 + 1,
                    trajectory: straight_trajectory(start, 0.5, 6),
                    beams: BeamModel::vlp16().with_azimuth_steps(400),
                }
            })
            .collect();
        FleetSimulation::new(
            scene.world.clone(),
            vehicles,
            FleetConfig {
                seed: 2024,
                threads: Some(2),
                fault_plan: Some(plan),
                trust: Some(TrustGuardConfig::default()),
                ..FleetConfig::default()
            },
        )
        .run_with_channel(&guarded, 6, &mut medium)
    });
    assert_drops_join(&reports, &trace);
    let reason_count = |f: fn(&TransportDropReason) -> bool| {
        reports
            .iter()
            .flat_map(|r| &r.transport_drops)
            .filter(|d| f(&d.reason))
            .count()
    };
    assert!(
        reason_count(|r| matches!(r, TransportDropReason::Corrupted)) > 0,
        "corrupting channel produced no corrupted drops"
    );
    assert!(
        reason_count(|r| matches!(r, TransportDropReason::ConsistencyRejected { .. })) > 0,
        "ghost sender was never consistency-rejected"
    );
    assert!(
        reason_count(|r| matches!(r, TransportDropReason::Quarantined)) > 0,
        "ghost sender was never quarantined"
    );
    assert!(
        trace
            .events
            .iter()
            .any(|e| e.name == stage::QUARANTINED && e.terminal),
        "no terminal quarantined mark"
    );
    assert!(
        stats.trust.values().any(|t| t.quarantines > 0),
        "trust stats recorded no quarantine transitions"
    );
}
