//! The executor determinism contract, end to end: a fleet simulation
//! produces bit-identical reports at every thread count — under the
//! perfect channel, under a stateful [`SharedMedium`], and under the
//! [`ExchangeScheduler`] policy. This is the same property the CI
//! determinism job checks across processes via `cooper simulate
//! --threads {1,4}`.

use cooper_core::fleet::{
    straight_trajectory, FleetConfig, FleetSimulation, FleetStats, FleetStepReport, FleetVehicle,
};
use cooper_core::{
    AlignmentGuardConfig, ChannelModel, CooperPipeline, GovernorConfig, PerfectChannel,
};
use cooper_exec::Executor;
use cooper_lidar_sim::{scenario, BeamModel, FaultPlan, LidarScanner};
use cooper_pointcloud::roi::RoiCategory;
use cooper_spod::{DetectOptions, DetectScratch, SpodConfig, SpodDetector};
use cooper_telemetry::names;
use cooper_v2x::{
    ArqConfig, BandwidthGovernor, DsrcChannel, DsrcConfig, ExchangeScheduler, GilbertElliott,
    LossModel, SharedMedium,
};

fn pipeline() -> CooperPipeline {
    CooperPipeline::new(SpodDetector::new(SpodConfig::default()))
}

fn fleet_with_beams(threads: Option<usize>, azimuth_steps: usize) -> FleetSimulation {
    let scene = scenario::tj_scenario_1();
    let vehicles: Vec<FleetVehicle> = scene
        .observers
        .iter()
        .enumerate()
        .map(|(i, pose)| FleetVehicle {
            id: i as u32 + 1,
            trajectory: straight_trajectory(*pose, 1.0, 3),
            beams: BeamModel::vlp16().with_azimuth_steps(azimuth_steps),
        })
        .collect();
    FleetSimulation::new(
        scene.world.clone(),
        vehicles,
        FleetConfig {
            seed: 2024,
            threads,
            ..FleetConfig::default()
        },
    )
}

fn fleet(threads: Option<usize>) -> FleetSimulation {
    fleet_with_beams(threads, 300)
}

/// Everything except the wall-clock timings must match.
fn assert_reports_identical(
    (a_reports, a_stats): &(Vec<FleetStepReport>, FleetStats),
    (b_reports, b_stats): &(Vec<FleetStepReport>, FleetStats),
) {
    assert_eq!(a_stats, b_stats);
    assert_eq!(a_reports.len(), b_reports.len());
    for (a, b) in a_reports.iter().zip(b_reports.iter()) {
        assert_eq!(a.deterministic_view(), b.deterministic_view());
    }
}

#[test]
fn perfect_channel_run_is_thread_count_invariant() {
    let p = pipeline();
    let serial = fleet(Some(1)).run(&p, 2);
    let parallel = fleet(Some(4)).run(&p, 2);
    assert_reports_identical(&serial, &parallel);
    // The run actually exchanged data.
    assert!(serial.1.total_bytes > 0);
    assert!(serial.0[0]
        .per_vehicle
        .iter()
        .any(|v| v.packets_received > 0));
}

#[test]
fn featurize_and_fleet_are_identical_at_1_2_4_threads() {
    // The SoA hot path (chunked voxelization, VFE, rulebook sparse
    // conv, BEV collapse) must produce bit-identical feature maps at
    // every executor width: chunk boundaries are fixed constants and
    // every float accumulation order is pinned.
    let scene = scenario::tj_scenario_1();
    let scanner = LidarScanner::new(BeamModel::vlp16().with_azimuth_steps(600));
    let cloud = scanner.scan(&scene.world, &scene.observers[0], 5);
    let detector = SpodDetector::new(SpodConfig::default());
    let featurize = |threads: usize| {
        detector.featurize_with(
            &cloud,
            &DetectOptions::default().with_executor(Executor::new(Some(threads))),
            &mut DetectScratch::new(),
        )
    };
    let baseline = featurize(1);
    assert!(
        baseline.active_cells() > 0,
        "scene must produce occupied BEV cells"
    );
    for threads in [2usize, 4] {
        assert_eq!(
            baseline,
            featurize(threads),
            "featurize diverged at {threads} threads"
        );
    }
    // And end to end: full fleet reports bit-identical at 1/2/4 worker
    // threads, now that phase 3 fans out per receiver with per-worker
    // detector scratch.
    let p = pipeline();
    let serial = fleet(Some(1)).run(&p, 2);
    for threads in [2usize, 4] {
        let parallel = fleet(Some(threads)).run(&p, 2);
        assert_reports_identical(&serial, &parallel);
    }
}

#[test]
fn feature_fused_governed_run_is_thread_count_invariant() {
    // The feature-exchange tier adds per-vehicle featurization to the
    // parallel scan phase and BEV-level fusion to the parallel perceive
    // phase; neither may introduce thread-count dependence. Reports of
    // a governed feature-preferring run must stay bit-identical at
    // 1/2/4 worker threads.
    let p = pipeline();
    let governor = GovernorConfig {
        features: true,
        ..GovernorConfig::default()
    };
    let run = |threads: Option<usize>| {
        let mut channel = PerfectChannel;
        let mut policy = BandwidthGovernor::default().with_features();
        fleet(threads).run_governed(&p, 2, &mut channel, &mut policy, &governor)
    };
    cooper_telemetry::enable();
    let serial = run(Some(1));
    let snapshot = cooper_telemetry::snapshot();
    cooper_telemetry::disable();
    for threads in [2usize, 4] {
        assert_reports_identical(&serial, &run(Some(threads)));
    }
    // The run really exchanged feature frames, not points.
    assert!(
        snapshot
            .counters
            .iter()
            .any(|(name, value)| name == names::FLEET_FEATURE_SENDS && *value > 0),
        "feature tier never engaged"
    );
    assert!(serial.1.total_bytes > 0);
}

#[test]
fn guarded_fault_run_is_thread_count_invariant() {
    // Pose faults draw from per-(vehicle, step) seeded streams and the
    // alignment guard runs inside the parallel fuse phase; neither may
    // introduce thread-count dependence.
    let p = pipeline().with_alignment_guard(AlignmentGuardConfig::default());
    let plan = FaultPlan::parse("1:drift:0.5@0,2:freeze@1,3:yaw:0.1@0..2").expect("valid plan");
    let run = |threads: Option<usize>| {
        let scene = scenario::tj_scenario_1();
        let vehicles: Vec<FleetVehicle> = scene
            .observers
            .iter()
            .enumerate()
            .map(|(i, pose)| FleetVehicle {
                id: i as u32 + 1,
                trajectory: straight_trajectory(*pose, 1.0, 3),
                beams: BeamModel::vlp16().with_azimuth_steps(300),
            })
            .collect();
        FleetSimulation::new(
            scene.world.clone(),
            vehicles,
            FleetConfig {
                seed: 2024,
                threads,
                fault_plan: Some(plan.clone()),
                ..FleetConfig::default()
            },
        )
        .run(&p, 3)
    };
    let serial = run(Some(1));
    let parallel = run(Some(4));
    assert_reports_identical(&serial, &parallel);
    // The guard actually ran: every receiver evaluated incoming clouds.
    assert!(serial.1.alignment.values().any(|s| s.evaluated > 0));
}

#[test]
fn trust_guarded_adversarial_run_is_identical_at_1_2_4_threads() {
    // The integrity-and-trust layer adds CRC verification, consistency
    // checks and a per-(receiver, sender) trust ledger to the exchange,
    // while the fault plan injects ghost clusters and at-source
    // corruption from per-(vehicle, step) seeded streams and the
    // channel corrupts frames from its own seeded process. None of it
    // may introduce thread-count dependence.
    use cooper_core::fleet::TrustGuardConfig;
    let p = pipeline().with_alignment_guard(AlignmentGuardConfig::default());
    let plan = FaultPlan::parse("2:ghost:3@0,1:corrupt:0.3@0..2").expect("valid plan");
    let run = |threads: Option<usize>| {
        let scene = scenario::tj_scenario_1();
        let vehicles: Vec<FleetVehicle> = scene
            .observers
            .iter()
            .enumerate()
            .map(|(i, pose)| FleetVehicle {
                id: i as u32 + 1,
                trajectory: straight_trajectory(*pose, 0.5, 3),
                beams: BeamModel::vlp16().with_azimuth_steps(300),
            })
            .collect();
        let mut medium = SharedMedium::new(DsrcChannel::new(DsrcConfig {
            loss_model: LossModel::GilbertElliott(GilbertElliott::from_loss_rate(0.1)),
            corruption_probability: 0.01,
            ..DsrcConfig::default()
        }))
        .with_seed(5);
        FleetSimulation::new(
            scene.world.clone(),
            vehicles,
            FleetConfig {
                seed: 2024,
                threads,
                fault_plan: Some(plan.clone()),
                trust: Some(TrustGuardConfig::default()),
                ..FleetConfig::default()
            },
        )
        .run_with_channel(&p, 3, &mut medium)
    };
    let serial = run(Some(1));
    for threads in [2usize, 4] {
        assert_reports_identical(&serial, &run(Some(threads)));
    }
    // The trust layer actually engaged: violations were charged.
    assert!(serial.1.trust.values().any(|t| t.violations > 0));
}

#[test]
fn shared_medium_drives_the_fleet_and_stays_deterministic() {
    // A 3 Mbit/s medium cannot carry a full mesh of raw frames in one
    // second: delivery decisions depend on shared air-time state, the
    // case that forces the serial exchange phase. The outcome must
    // still be identical at any thread count.
    let p = pipeline();
    // Dense scans: a full mesh of 4 vehicles exchanging ~full frames
    // overruns a 3 Mbit/s one-second window.
    let run = |threads: Option<usize>| {
        let mut medium = SharedMedium::new(DsrcChannel::new(DsrcConfig {
            data_rate: cooper_v2x::DataRate::Mbps3,
            ..DsrcConfig::default()
        }))
        .with_seed(11);
        fleet_with_beams(threads, 1500).run_with_channel(&p, 2, &mut medium)
    };
    let serial = run(Some(1));
    let parallel = run(Some(4));
    assert_reports_identical(&serial, &parallel);
    // Saturation bites: somebody received fewer packets than the full
    // mesh would deliver.
    let full_mesh = fleet(Some(1)).vehicles().len() - 1;
    assert!(serial
        .0
        .iter()
        .any(|r| r.per_vehicle.iter().any(|v| v.packets_received < full_mesh)));
}

#[test]
fn bursty_arq_medium_stays_thread_count_invariant() {
    // The hardest determinism case: Gilbert–Elliott burst loss plus
    // fragment ARQ, where every transfer draws a variable number of
    // random samples (burst-state walks, retransmission rounds) and the
    // medium accumulates per-step air time. All randomness comes from
    // per-(step, sender, receiver) seeded streams, so the outcome must
    // not depend on worker thread count.
    let p = pipeline();
    let run = |threads: Option<usize>| {
        let mut medium = SharedMedium::new(DsrcChannel::new(DsrcConfig {
            loss_model: LossModel::GilbertElliott(GilbertElliott::from_loss_rate(0.1)),
            ..DsrcConfig::default()
        }))
        .with_seed(77)
        .with_arq(ArqConfig::default());
        fleet_with_beams(threads, 900).run_with_channel(&p, 2, &mut medium)
    };
    let serial = run(Some(1));
    let parallel = run(Some(4));
    assert_reports_identical(&serial, &parallel);
    // The lossy run still moved data: at least one packet was fused.
    assert!(serial.1.total_bytes > 0);
}

#[test]
fn exchange_scheduler_policy_applies_through_the_trait() {
    let p = pipeline();
    // 0.5 Hz: steps 0 and 2 exchange, step 1 is silent.
    let mut scheduler = ExchangeScheduler::new(0.5, RoiCategory::FullFrame);
    let (reports, _) = fleet(Some(2)).run_with_channel(&p, 3, &mut scheduler);
    assert!(reports[0]
        .per_vehicle
        .iter()
        .all(|v| v.packets_received > 0));
    assert!(reports[1]
        .per_vehicle
        .iter()
        .all(|v| v.packets_received == 0));
    assert!(reports[2]
        .per_vehicle
        .iter()
        .all(|v| v.packets_received > 0));
}

#[test]
fn closure_channels_see_the_documented_transfer_order() {
    let p = pipeline();
    let mut seen: Vec<(usize, u32, u32)> = Vec::new();
    let mut recorder = |step: usize, from: u32, to: u32, _bytes: usize| {
        seen.push((step, from, to));
        true
    };
    // The blanket impl makes the closure a ChannelModel.
    fn takes_model(m: &mut dyn ChannelModel) -> &mut dyn ChannelModel {
        m
    }
    let _ = fleet(Some(3)).run_with_channel(&p, 1, takes_model(&mut recorder));
    // Serial order: receiver id ascending, then sender in fleet order.
    let expected: Vec<(usize, u32, u32)> = (1..=4u32)
        .flat_map(|to| {
            (1..=4u32)
                .filter(move |&from| from != to)
                .map(move |from| (0, from, to))
        })
        .collect();
    assert_eq!(seen, expected);
}
