//! [`cooper_telemetry::reset`] must actually clear aggregated state
//! between fleet runs: running the same governed simulation twice with
//! a reset in between must yield an identical snapshot both times. A
//! leaky reset would double counters and inflate latency histogram
//! counts, silently corrupting bench comparisons across runs. One test
//! function owns the global registry (this file is its own test
//! binary).

use cooper_core::fleet::{straight_trajectory, FleetConfig, FleetSimulation, FleetVehicle};
use cooper_core::{CooperPipeline, GovernorConfig};
use cooper_lidar_sim::{scenario, BeamModel};
use cooper_pointcloud::roi::RoiCategory;
use cooper_spod::{SpodConfig, SpodDetector};
use cooper_telemetry::TelemetrySnapshot;
use cooper_v2x::{BandwidthGovernor, DsrcChannel, DsrcConfig, SharedMedium};

fn run_once() -> TelemetrySnapshot {
    let scene = scenario::tj_scenario_1();
    let vehicles: Vec<FleetVehicle> = scene
        .observers
        .iter()
        .enumerate()
        .map(|(i, pose)| FleetVehicle {
            id: i as u32 + 1,
            trajectory: straight_trajectory(*pose, 1.0, 2),
            beams: BeamModel::vlp16().with_azimuth_steps(300),
        })
        .collect();
    let sim = FleetSimulation::new(
        scene.world.clone(),
        vehicles,
        FleetConfig {
            seed: 2024,
            threads: Some(2),
            ..FleetConfig::default()
        },
    );
    let pipeline = CooperPipeline::new(SpodDetector::new(SpodConfig::default()));
    let mut medium = SharedMedium::new(DsrcChannel::new(DsrcConfig::default())).with_seed(5);
    let mut policy = BandwidthGovernor::new(RoiCategory::FullFrame);
    let governor = GovernorConfig::default();

    cooper_telemetry::reset();
    cooper_telemetry::enable();
    let _ = sim.run_governed(&pipeline, 2, &mut medium, &mut policy, &governor);
    let snapshot = cooper_telemetry::snapshot();
    cooper_telemetry::disable();
    cooper_telemetry::reset();
    snapshot
}

#[test]
fn back_to_back_runs_see_identical_fresh_registries() {
    let first = run_once();
    let second = run_once();

    assert!(!first.counters.is_empty(), "run recorded no counters");
    assert!(!first.spans.is_empty(), "run recorded no spans");

    // Counters: identical names and values — a leaky reset would double
    // every count in the second run.
    assert_eq!(first.counters, second.counters);
    assert_eq!(first.gauges, second.gauges);

    // Spans and value histograms carry wall-clock durations, which
    // cannot be compared bit-for-bit; their *counts* must match exactly
    // — an unreset registry would inflate execution counts and shift
    // the latency percentiles' sample base.
    assert_eq!(first.spans.len(), second.spans.len());
    for (a, b) in first.spans.iter().zip(second.spans.iter()) {
        assert_eq!(a.path, b.path);
        assert_eq!(
            a.count, b.count,
            "span {} count changed across reset: {} vs {}",
            a.path, a.count, b.count
        );
    }
    assert_eq!(first.values.len(), second.values.len());
    for (a, b) in first.values.iter().zip(second.values.iter()) {
        assert_eq!(a.name, b.name);
        assert_eq!(
            a.count, b.count,
            "value {} count changed across reset: {} vs {}",
            a.name, a.count, b.count
        );
    }
}
