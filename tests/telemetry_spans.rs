//! Tier-1 integration test: the instrumented pipeline emits the
//! expected span tree and counters through the global telemetry
//! registry.
//!
//! All assertions live in ONE test function: the registry is a process
//! global, and Rust runs tests in the same binary concurrently —
//! a single test owns the enable → run → snapshot → reset sequence.

use cooper_core::{CooperPipeline, ExchangePacket};
use cooper_geometry::{Attitude, GpsFix, Pose, Vec3};
use cooper_lidar_sim::PoseEstimate;
use cooper_pointcloud::{Point, PointCloud};
use cooper_spod::{SpodConfig, SpodDetector};

fn origin() -> GpsFix {
    GpsFix::new(33.2075, -97.1526, 190.0)
}

fn car_blob(offset: f64) -> PointCloud {
    (0..200)
        .map(|i| {
            let fx = (i % 20) as f64 * 0.2;
            let fy = ((i / 20) % 5) as f64 * 0.35;
            Point::new(Vec3::new(8.0 + offset + fx, -0.9 + fy, -1.5), 0.45)
        })
        .collect()
}

#[test]
fn perceive_emits_expected_span_tree() {
    let pipeline = CooperPipeline::new(SpodDetector::new(SpodConfig::default()));
    let pose = Pose::new(Vec3::new(0.0, 0.0, 1.8), Attitude::level());
    let est = PoseEstimate::from_pose(&pose, &origin());
    let local = car_blob(0.0);
    let remote = car_blob(4.0);
    let packet = ExchangePacket::build(2, 0, &remote, est).expect("encodes");
    let wire = packet.to_bytes();

    cooper_telemetry::reset();
    cooper_telemetry::enable();
    let received = ExchangePacket::from_bytes(&wire).expect("decodes");
    let result = pipeline.perceive(&local, &est, &[received], &origin());
    cooper_telemetry::disable();
    let snapshot = cooper_telemetry::snapshot();
    cooper_telemetry::reset();

    assert_eq!(result.packets_fused, 1);

    // The span tree: decode at the root (it happened before the
    // pipeline call), then the cooperative span with fusion and
    // detection nested beneath it, and the SPOD stages beneath those.
    for path in [
        "packet.decode",
        "pipeline.perceive",
        "pipeline.perceive/pipeline.fuse",
        "pipeline.perceive/pipeline.fuse/packet.payload_decode",
        "pipeline.perceive/pipeline.perceive_single",
        "pipeline.perceive/pipeline.perceive_single/spod.featurize",
        "pipeline.perceive/pipeline.perceive_single/spod.featurize/spod.preprocess",
        "pipeline.perceive/pipeline.perceive_single/spod.featurize/spod.voxelize",
        "pipeline.perceive/pipeline.perceive_single/spod.featurize/spod.middle",
        "pipeline.perceive/pipeline.perceive_single/spod.rpn",
        "pipeline.perceive/pipeline.perceive_single/spod.nms",
    ] {
        let span = snapshot
            .span(path)
            .unwrap_or_else(|| panic!("missing span {path}:\n{}", snapshot.render_table()));
        assert_eq!(span.count, 1, "span {path} ran once");
    }

    // Encoding happened before telemetry was enabled — it must NOT
    // appear; nothing from the fleet layer ran either.
    assert!(snapshot.span("packet.encode").is_none());
    assert!(!snapshot.spans.iter().any(|s| s.name.starts_with("fleet.")));

    // A child's total time is bounded by its parent's.
    let coop = snapshot.span("pipeline.perceive").unwrap();
    let fuse = snapshot.span("pipeline.perceive/pipeline.fuse").unwrap();
    let detect = snapshot
        .span("pipeline.perceive/pipeline.perceive_single")
        .unwrap();
    assert!(fuse.total_us + detect.total_us <= coop.total_us + 1_000);

    // Counters recorded by the fusion helper.
    assert_eq!(snapshot.counter("pipeline.packets_fused"), Some(1));
    assert_eq!(snapshot.counter("pipeline.packets_dropped"), Some(0));
    assert_eq!(
        snapshot.counter("pipeline.points_merged"),
        Some(remote.len() as u64)
    );
}
