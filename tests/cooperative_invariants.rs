//! Invariant tests on the fusion machinery, independent of detector
//! quality.

use cooper_core::{alignment_transform, CooperPipeline, ExchangePacket};
use cooper_geometry::{Attitude, GpsFix, Pose, RigidTransform, Vec3};
use cooper_lidar_sim::{scenario, LidarScanner, PoseEstimate};
use cooper_pointcloud::{Point, PointCloud};
use cooper_spod::{SpodConfig, SpodDetector};

fn origin() -> GpsFix {
    GpsFix::new(33.2075, -97.1526, 190.0)
}

fn untrained() -> CooperPipeline {
    CooperPipeline::new(SpodDetector::new(SpodConfig::default()))
}

#[test]
fn fusion_point_count_is_additive() {
    let pipeline = untrained();
    let pose = Pose::new(Vec3::new(0.0, 0.0, 1.8), Attitude::level());
    let est = PoseEstimate::from_pose(&pose, &origin());
    let local: PointCloud = (0..100)
        .map(|i| Point::new(Vec3::new(5.0 + 0.01 * i as f64, 0.0, -1.0), 0.5))
        .collect();
    let remote: PointCloud = (0..50)
        .map(|i| Point::new(Vec3::new(8.0, 0.01 * i as f64, -1.0), 0.5))
        .collect();
    let packets: Vec<ExchangePacket> = (0..3)
        .map(|i| ExchangePacket::build(i, 0, &remote, est).expect("encodes"))
        .collect();
    let fused = pipeline
        .fuse(&local, &est, &packets, &origin())
        .expect("fuses");
    assert_eq!(fused.len(), 100 + 3 * 50);
}

#[test]
fn alignment_is_inverse_consistent() {
    // Aligning A->B then B->A returns points to their origin (up to GPS
    // quantization of the equirectangular approximation).
    let pose_a = Pose::new(Vec3::new(10.0, -4.0, 1.9), Attitude::from_yaw(0.6));
    let pose_b = Pose::new(Vec3::new(-7.0, 12.0, 1.73), Attitude::from_yaw(-1.1));
    let est_a = PoseEstimate::from_pose(&pose_a, &origin());
    let est_b = PoseEstimate::from_pose(&pose_b, &origin());
    let ab = alignment_transform(&est_a, &est_b, &origin());
    let ba = alignment_transform(&est_b, &est_a, &origin());
    for p in [Vec3::new(3.0, 1.0, -1.5), Vec3::new(-20.0, 8.0, 0.0)] {
        let round = ba.apply(ab.apply(p));
        assert!(
            (round - p).norm() < 1e-3,
            "round-trip error {}",
            (round - p).norm()
        );
    }
}

#[test]
fn aligned_points_land_on_world_surfaces() {
    // Scan the same wall from two poses; after alignment, each remote
    // point must be close to some local point of the same surface.
    let scene = scenario::stop_sign();
    let scanner = LidarScanner::new(scene.kind.beam_model().noiseless().with_azimuth_steps(720));
    let pose_a = scene.observers[0];
    let pose_b = scene.observers[1];
    let scan_b = scanner.scan(&scene.world, &pose_b, 0);
    let align = RigidTransform::between(&pose_b, &pose_a);
    let aligned_b = scan_b.transformed(&align);

    // Every aligned remote point must sit on *some* world surface: test
    // via the world's entities or the ground plane.
    let mut on_surface = 0;
    let mut total = 0;
    let world_from_a = RigidTransform::from_pose(&pose_a);
    for p in aligned_b.iter().step_by(37) {
        total += 1;
        let world_point = world_from_a.apply(p.position);
        let on_ground = world_point.z.abs() < 0.15;
        let on_entity = scene
            .world
            .entities()
            .iter()
            .any(|e| e.shape.bounding_aabb().inflated(0.15).contains(world_point));
        if on_ground || on_entity {
            on_surface += 1;
        }
    }
    let frac = on_surface as f64 / total as f64;
    assert!(frac > 0.97, "only {frac:.3} of aligned points on surfaces");
}

#[test]
fn fusion_is_order_insensitive_for_detection_input() {
    // Merging A then B vs B then A yields permuted clouds; voxel-based
    // detection must be identical.
    let pipeline = untrained();
    let scene = scenario::tj_scenario_1();
    let scanner = LidarScanner::new(scene.kind.beam_model());
    let scan_a = scanner.scan(&scene.world, &scene.observers[0], 1);
    let scan_b = scanner
        .scan(&scene.world, &scene.observers[1], 2)
        .transformed(&RigidTransform::between(
            &scene.observers[1],
            &scene.observers[0],
        ));
    let ab = scan_a.merged(&scan_b);
    let ba = scan_b.merged(&scan_a);
    let bev_ab = pipeline.detector().featurize(&ab);
    let bev_ba = pipeline.detector().featurize(&ba);
    assert_eq!(bev_ab.active_cells(), bev_ba.active_cells());
    // Feature vectors agree cell-by-cell (max-pool and sums are
    // permutation-invariant up to float association; voxel stats use
    // sums of the same values in different order — equal within 1e-4).
    for (cell, f) in bev_ab.iter() {
        let g = bev_ba.get(cell.0, cell.1).expect("same active set");
        for (a, b) in f.iter().zip(g) {
            assert!((a - b).abs() < 1e-3, "cell {cell:?} differs: {a} vs {b}");
        }
    }
}

#[test]
fn exchange_packet_wire_size_accounts_header() {
    let est = PoseEstimate::from_pose(&Pose::origin(), &origin());
    let empty = ExchangePacket::build(0, 0, &PointCloud::new(), est).expect("encodes");
    // Header + empty cloud codec frame.
    assert_eq!(empty.to_bytes().len(), empty.wire_size());
    assert!(empty.wire_size() > 60);
    assert!(empty.wire_size() < 100);
}

#[test]
fn pipeline_accepts_many_transmitters() {
    let pipeline = untrained();
    let scene = scenario::tj_scenario_2();
    let scanner = LidarScanner::new(scene.kind.beam_model().with_azimuth_steps(300));
    let est_rx = PoseEstimate::from_pose(&scene.observers[0], &origin());
    let local = scanner.scan(&scene.world, &scene.observers[0], 0);
    let mut packets = Vec::new();
    let mut expected = local.len();
    for (i, pose) in scene.observers.iter().enumerate().skip(1) {
        let scan = scanner.scan(&scene.world, pose, i as u64);
        expected += scan.len();
        let est = PoseEstimate::from_pose(pose, &origin());
        packets.push(ExchangePacket::build(i as u32, 0, &scan, est).expect("encodes"));
    }
    let result = pipeline.perceive(&local, &est_rx, &packets, &origin());
    assert_eq!(result.packets_fused, packets.len());
    assert_eq!(result.fused_cloud.len(), expected);
}
