//! Failure-injection tests: lossy channels, truncated frames, missing
//! fragments, extreme pose errors.

use cooper_core::{AlignmentGuardConfig, CooperError, CooperPipeline, ExchangePacket};
use cooper_geometry::{Attitude, GpsFix, Pose, Vec3};
use cooper_lidar_sim::{scenario, GpsImuModel, LidarScanner, PoseEstimate, SkewMode};
use cooper_pointcloud::{Point, PointCloud};
use cooper_spod::{SpodConfig, SpodDetector};
use cooper_v2x::{fragment, reassemble, DsrcChannel, DsrcConfig, ReassemblyError};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn origin() -> GpsFix {
    GpsFix::new(33.2075, -97.1526, 190.0)
}

fn sample_packet() -> ExchangePacket {
    let cloud: PointCloud = (0..5_000)
        .map(|i| {
            Point::new(
                Vec3::new(10.0 + (i % 50) as f64 * 0.1, (i / 50) as f64 * 0.1, -1.0),
                0.5,
            )
        })
        .collect();
    let est = PoseEstimate::from_pose(
        &Pose::new(Vec3::new(10.0, 5.0, 1.9), Attitude::from_yaw(0.4)),
        &origin(),
    );
    ExchangePacket::build(1, 0, &cloud, est).expect("encodes")
}

#[test]
fn lost_fragment_is_detected_and_reported() {
    let packet = sample_packet();
    let wire = packet.to_bytes();
    let mut fragments = fragment(1, &wire, 1460);
    let dropped_index = fragments.len() / 2;
    fragments.remove(dropped_index);
    match reassemble(&fragments) {
        Err(ReassemblyError::MissingFragments { missing }) => {
            assert_eq!(missing, vec![dropped_index as u32]);
        }
        other => panic!("expected missing-fragment error, got {other:?}"),
    }
}

#[test]
fn reordered_and_duplicated_fragments_still_reassemble() {
    let packet = sample_packet();
    let wire = packet.to_bytes();
    let mut fragments = fragment(1, &wire, 1460);
    fragments.reverse();
    fragments.push(fragments[0].clone());
    let bytes = reassemble(&fragments).expect("reassembles");
    let parsed = ExchangePacket::from_bytes(&bytes).expect("parses");
    assert_eq!(parsed.cloud().expect("decodes").len(), 5_000);
}

#[test]
fn truncated_wire_frame_rejected_not_panicking() {
    let packet = sample_packet();
    let wire = packet.to_bytes();
    for cut in [0, 1, 10, 40, wire.len() / 2, wire.len() - 1] {
        let err = ExchangePacket::from_bytes(&wire[..cut]).expect_err("must fail");
        assert!(
            matches!(err, CooperError::Truncated { .. } | CooperError::BadMagic),
            "cut {cut}: unexpected {err}"
        );
    }
}

#[test]
fn bit_flips_in_header_are_caught() {
    let packet = sample_packet();
    let wire = packet.to_bytes().to_vec();
    // Magic corruption.
    let mut bad = wire.clone();
    bad[1] ^= 0xFF;
    assert!(ExchangePacket::from_bytes(&bad).is_err());
    // Version corruption.
    let mut bad = wire.clone();
    bad[4] = 77;
    assert!(matches!(
        ExchangePacket::from_bytes(&bad),
        Err(CooperError::UnsupportedVersion(77))
    ));
}

#[test]
fn lossy_receiver_drops_bad_packets_and_continues() {
    let pipeline = CooperPipeline::new(SpodDetector::new(SpodConfig::default()));
    let good = sample_packet();
    // Corrupt the payload magic of a second packet.
    let mut bytes = good.to_bytes().to_vec();
    let header = bytes.len() - good.payload_len();
    bytes[header] ^= 0xFF;
    let bad = ExchangePacket::from_bytes(&bytes).expect("header still parses");

    let local: PointCloud = (0..100)
        .map(|i| Point::new(Vec3::new(5.0, 0.01 * i as f64, -1.0), 0.5))
        .collect();
    let est = PoseEstimate::from_pose(
        &Pose::new(Vec3::new(0.0, 0.0, 1.9), Attitude::level()),
        &origin(),
    );
    let outcome = pipeline.perceive(&local, &est, &[good.clone(), bad], &origin());
    assert_eq!(outcome.drops.len(), 1);
    assert_eq!(outcome.drops[0].index, 1);
    assert_eq!(outcome.drops[0].error.kind(), "codec");
    assert_eq!(outcome.packets_fused, 1);
    assert_eq!(outcome.fused_cloud.len(), 100 + good.cloud().unwrap().len());
}

#[test]
fn heavy_channel_loss_reflected_in_reports() {
    let channel = DsrcChannel::new(DsrcConfig {
        loss_probability: 0.3,
        ..DsrcConfig::default()
    });
    let mut rng = StdRng::seed_from_u64(3);
    let report = channel.transmit_sized(sample_packet().wire_size(), &mut rng);
    assert!(report.frames > 10);
    assert!(report.frames_delivered < report.frames);
    assert!(!report.complete);
}

#[test]
fn double_drift_skew_degrades_but_does_not_crash() {
    // The paper's abnormal case: 2× the max GPS drift. Fusion must
    // still run and produce *some* detections; scores may drop.
    let detector = SpodDetector::train_default(&cooper_spod::train::TrainingConfig::fast());
    let pipeline = CooperPipeline::new(detector);
    let scene = scenario::tj_scenario_1();
    let scanner = LidarScanner::new(scene.kind.beam_model());
    let (rx, tx) = scene.pairs[0];
    let local = scanner.scan(&scene.world, &scene.observers[rx], 1);
    let remote = scanner.scan(&scene.world, &scene.observers[tx], 2);
    let model = GpsImuModel::ideal();
    let mut rng = StdRng::seed_from_u64(0);
    let est_rx = model.measure(&scene.observers[rx], &origin(), &mut rng);
    let est_tx = model.measure_skewed(
        &scene.observers[tx],
        &origin(),
        SkewMode::DoubleDrift,
        &mut rng,
    );
    let packet = ExchangePacket::build(1, 0, &remote, est_tx).expect("encodes");
    let result = pipeline.perceive(&local, &est_rx, &[packet], &origin());
    assert_eq!(result.fused_cloud.len(), local.len() + remote.len());
    // 20 cm misalignment is well under a car length: detection survives.
    assert!(!result.detections.is_empty());
}

#[test]
fn grossly_wrong_pose_still_fails_safe() {
    // A pose 500 m off (e.g. GPS cold-start garbage) must not panic —
    // the remote points simply land outside the detector extent.
    let pipeline = CooperPipeline::new(SpodDetector::new(SpodConfig::default()));
    let cloud: PointCloud = (0..100)
        .map(|i| Point::new(Vec3::new(10.0, 0.01 * i as f64, -1.0), 0.5))
        .collect();
    let est_rx = PoseEstimate::from_pose(
        &Pose::new(Vec3::new(0.0, 0.0, 1.9), Attitude::level()),
        &origin(),
    );
    let wrong_pose = Pose::new(Vec3::new(500.0, -300.0, 1.9), Attitude::level());
    let est_tx = PoseEstimate::from_pose(&wrong_pose, &origin());
    let packet = ExchangePacket::build(1, 0, &cloud, est_tx).expect("encodes");
    let result = pipeline.perceive(&cloud, &est_rx, &[packet], &origin());
    assert_eq!(result.fused_cloud.len(), 200);
}

#[test]
fn guard_rejects_extreme_pose_error_and_falls_back_to_ego_only() {
    // A transmitter pose 40 m off is far beyond what ICP can repair:
    // the alignment guard must reject the packet (never panic) and the
    // receiver must fall back to exactly its ego-only perception.
    let detector = SpodDetector::train_default(&cooper_spod::train::TrainingConfig::fast());
    let guarded =
        CooperPipeline::new(detector).with_alignment_guard(AlignmentGuardConfig::default());
    let scene = scenario::tj_scenario_1();
    let scanner = LidarScanner::new(scene.kind.beam_model());
    let (rx, tx) = scene.pairs[0];
    let local = scanner.scan(&scene.world, &scene.observers[rx], 1);
    let remote = scanner.scan(&scene.world, &scene.observers[tx], 2);
    let est_rx = PoseEstimate::from_pose(&scene.observers[rx], &origin());
    let mut est_tx = PoseEstimate::from_pose(&scene.observers[tx], &origin());
    est_tx.gps = est_tx.gps.offset_by(Vec3::new(40.0, 0.0, 0.0));
    let packet = ExchangePacket::build(1, 0, &remote, est_tx).expect("encodes");

    let coop = guarded.perceive(&local, &est_rx, &[packet], &origin());
    assert_eq!(coop.packets_fused, 0);
    assert_eq!(coop.drops.len(), 1);
    assert!(
        matches!(
            coop.drops[0].error,
            CooperError::AlignmentRejected { residual_m } if residual_m.is_finite()
        ),
        "expected alignment rejection, got {:?}",
        coop.drops[0].error
    );

    let ego = guarded.perceive(&local, &est_rx, &[], &origin());
    assert_eq!(coop.fused_cloud.len(), local.len());
    assert_eq!(coop.detections, ego.detections);
}

#[test]
fn nan_pose_rejected_before_it_can_poison_fusion() {
    let cloud = PointCloud::new();
    let mut est = PoseEstimate::from_pose(&Pose::origin(), &origin());
    est.attitude.pitch = f64::INFINITY;
    assert!(matches!(
        ExchangePacket::build(1, 0, &cloud, est),
        Err(CooperError::InvalidPose)
    ));
}

#[test]
fn quarantine_round_trip_recovers_transient_corruption() {
    use cooper_core::fleet::{
        straight_trajectory, FleetConfig, FleetSimulation, FleetVehicle, TransportDropReason,
        TrustGuardConfig,
    };
    use cooper_core::TrustConfig;
    use cooper_lidar_sim::{BeamModel, FaultPlan};
    use cooper_v2x::SharedMedium;

    // Vehicle 2 flips its own payload bytes at the source for steps
    // 0..3, then the fault clears. Over a real fragmented DSRC
    // transport the receiver's CRC check must fail while the fault is
    // live, the trust ledger must quarantine the sender, and once the
    // quarantine elapses a clean probation must re-admit it — the full
    // Trusted → Suspect → Quarantined → Probation → Trusted loop.
    let scene = scenario::tj_scenario_1();
    let steps = 12usize;
    let vehicles = vec![
        FleetVehicle {
            id: 1,
            trajectory: straight_trajectory(scene.observers[0], 0.0, steps),
            beams: BeamModel::vlp16().with_azimuth_steps(300),
        },
        FleetVehicle {
            id: 2,
            trajectory: straight_trajectory(scene.observers[1], 0.0, steps),
            beams: BeamModel::vlp16().with_azimuth_steps(300),
        },
    ];
    let sim = FleetSimulation::new(
        scene.world,
        vehicles,
        FleetConfig {
            seed: 11,
            sensor_model: GpsImuModel::ideal(),
            fault_plan: Some(FaultPlan::parse("2:corrupt:0.4@0..3").unwrap()),
            trust: Some(TrustGuardConfig {
                trust: TrustConfig {
                    suspect_after: 1,
                    quarantine_after: 2,
                    quarantine_steps: 2,
                    probation_clean_steps: 2,
                },
                ..TrustGuardConfig::default()
            }),
            ..FleetConfig::default()
        },
    );
    let pipeline = CooperPipeline::new(SpodDetector::new(SpodConfig::default()))
        .with_alignment_guard(AlignmentGuardConfig::default());
    let mut medium = SharedMedium::new(DsrcChannel::new(DsrcConfig::default())).with_seed(9);
    let (reports, stats) = sim.run_with_channel(&pipeline, steps, &mut medium);

    let steps_with = |f: fn(&TransportDropReason) -> bool| -> Vec<usize> {
        reports
            .iter()
            .filter(|r| r.transport_drops.iter().any(|d| f(&d.reason)))
            .map(|r| r.step)
            .collect()
    };
    let integrity = steps_with(|r| matches!(r, TransportDropReason::IntegrityFailed));
    let quarantined = steps_with(|r| matches!(r, TransportDropReason::Quarantined));
    assert!(
        !integrity.is_empty(),
        "at-source corruption must fail the receiver's CRC check"
    );
    assert!(
        !quarantined.is_empty(),
        "repeated integrity violations must quarantine the sender"
    );
    assert!(
        integrity[0] < quarantined[0],
        "violations precede the quarantine they earn"
    );
    let t = stats.trust.get(&1).expect("receiver 1 charged violations");
    assert!(t.violations >= 2);
    assert!(t.quarantines >= 1);
    assert!(t.blocked_transfers >= 1);
    assert!(t.reinstated >= 1, "clean probation re-admits the sender");
    // After re-admission the exchange is fully restored: the last step
    // shows vehicle 1 fusing vehicle 2's packet with no quarantine.
    let last = reports.last().unwrap();
    let v1 = &last.per_vehicle[0];
    assert_eq!(v1.packets_received, 1, "re-admitted sender fuses again");
    assert_eq!(v1.quarantined_peers, 0);
}

#[test]
fn ghost_injection_never_drops_fused_below_ego() {
    use cooper_core::fleet::{
        straight_trajectory, FleetConfig, FleetSimulation, FleetVehicle, TransportDropReason,
        TrustGuardConfig,
    };
    use cooper_lidar_sim::{BeamModel, FaultPlan};

    // Vehicle 2 appends fabricated car clusters to every broadcast. The
    // consistency guard must convict on ego-observed free space, and —
    // the regression this test pins — rejecting the poisoned packets
    // must degrade the receiver to ego-only perception, never below it.
    let detector = SpodDetector::train_default(&cooper_spod::train::TrainingConfig::fast());
    let pipeline =
        CooperPipeline::new(detector).with_alignment_guard(AlignmentGuardConfig::default());
    let scene = scenario::tj_scenario_1();
    let steps = 5usize;
    let vehicles = vec![
        FleetVehicle {
            id: 1,
            trajectory: straight_trajectory(scene.observers[0], 0.0, steps),
            beams: BeamModel::vlp16().with_azimuth_steps(300),
        },
        FleetVehicle {
            id: 2,
            trajectory: straight_trajectory(scene.observers[1], 0.0, steps),
            beams: BeamModel::vlp16().with_azimuth_steps(300),
        },
    ];
    let sim = FleetSimulation::new(
        scene.world,
        vehicles,
        FleetConfig {
            seed: 11,
            sensor_model: GpsImuModel::ideal(),
            fault_plan: Some(FaultPlan::parse("2:ghost:4@0").unwrap()),
            trust: Some(TrustGuardConfig::default()),
            ..FleetConfig::default()
        },
    );
    let (reports, _stats) = sim.run(&pipeline, steps);
    let mut rejected = 0usize;
    for r in &reports {
        for d in &r.transport_drops {
            if let TransportDropReason::ConsistencyRejected { ghost_points } = d.reason {
                assert_eq!((d.from, d.to), (2, 1), "only the ghost sender is convicted");
                assert!(ghost_points > 0, "verdict carries the ghost evidence");
                rejected += 1;
            }
        }
        for v in &r.per_vehicle {
            assert!(
                v.cooperative_detections >= v.single_detections,
                "step {} vehicle {}: fused {} fell below ego {}",
                r.step,
                v.vehicle_id,
                v.cooperative_detections,
                v.single_detections
            );
        }
    }
    assert!(rejected >= 1, "ghost injection must be caught");
}

#[test]
fn lossy_fleet_degrades_gracefully() {
    use cooper_core::fleet::{straight_trajectory, FleetConfig, FleetSimulation, FleetVehicle};
    use cooper_lidar_sim::BeamModel;

    let scene = scenario::tj_scenario_1();
    let vehicles: Vec<FleetVehicle> = scene
        .observers
        .iter()
        .take(3)
        .enumerate()
        .map(|(i, pose)| FleetVehicle {
            id: i as u32 + 1,
            trajectory: straight_trajectory(*pose, 1.0, 2),
            beams: BeamModel::vlp16().with_azimuth_steps(300),
        })
        .collect();
    let sim = FleetSimulation::new(scene.world, vehicles, FleetConfig::default());
    let pipeline = CooperPipeline::new(SpodDetector::new(SpodConfig::default()));

    // Ideal channel: every vehicle hears the other two.
    let (ideal, _) = sim.run(&pipeline, 2);
    assert!(ideal[0].per_vehicle.iter().all(|v| v.packets_received == 2));

    // A channel that drops every frame from vehicle 2: its packets never
    // arrive, everyone else's still do — the receiver keeps working.
    // (Closures implement ChannelModel through the blanket impl.)
    let mut drop_vehicle_2 = |_: usize, from: u32, _: u32, _: usize| from != 2;
    let (lossy, stats) = sim.run_with_channel(&pipeline, 2, &mut drop_vehicle_2);
    for report in &lossy {
        for v in &report.per_vehicle {
            if v.vehicle_id == 2 {
                continue;
            }
            assert_eq!(v.packets_received, 1, "only vehicle 2's frames are lost");
        }
    }
    assert!(stats.total_bytes > 0);

    // A fully partitioned channel: no packets, single-shot perception
    // still runs for everyone.
    let mut blackout = |_: usize, _: u32, _: u32, _: usize| false;
    let (dark, dark_stats) = sim.run_with_channel(&pipeline, 1, &mut blackout);
    assert!(dark[0].per_vehicle.iter().all(|v| v.packets_received == 0));
    assert_eq!(dark_stats.total_bytes, 0);
}
