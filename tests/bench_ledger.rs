//! The bench regression ledger's CI contract, exercised through the
//! real `bench_check` binary: a healthy history passes (exit 0), an
//! injected regression past tolerance fails (exit non-zero), and a
//! corrupt or empty ledger also fails rather than silently passing.

use std::path::PathBuf;
use std::process::Command;

use cooper_bench::ledger::{append, BenchRecord, HISTORY_FILE};

fn bench_check(history: &std::path::Path) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_bench_check"))
        .args(["--history", history.to_str().expect("utf-8 path")])
        .output()
        .expect("bench_check runs")
}

fn temp_ledger(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cooper-bench-ledger-{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir.join(HISTORY_FILE)
}

#[test]
fn bench_check_gates_on_injected_regression() {
    // A healthy two-run history across all three --check benches: small
    // in-tolerance movement, noisy-but-informational timings.
    let path = temp_ledger("healthy");
    for record in [
        BenchRecord::new(
            "bandwidth_sweep",
            &[("reduction", 3.40), ("detection_drift", 0.00)],
        ),
        BenchRecord::new(
            "fault_sweep",
            &[("guard_on_recall", 0.82), ("guard_off_recall", 0.40)],
        ),
        BenchRecord::new(
            "parallel_fleet",
            &[("deterministic", 1.0), ("total_4t_us", 1_000_000.0)],
        ),
        BenchRecord::new(
            "bandwidth_sweep",
            &[("reduction", 3.25), ("detection_drift", 0.01)],
        ),
        BenchRecord::new(
            "fault_sweep",
            &[("guard_on_recall", 0.81), ("guard_off_recall", 0.35)],
        ),
        BenchRecord::new(
            "parallel_fleet",
            &[("deterministic", 1.0), ("total_4t_us", 7_000_000.0)],
        ),
    ] {
        append(&path, &record).expect("append");
    }
    let out = bench_check(&path);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "healthy history must pass: {stdout}\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("bench_check passed"), "{stdout}");

    // Inject a regression: the guard's recall collapses past tolerance.
    append(
        &path,
        &BenchRecord::new(
            "fault_sweep",
            &[("guard_on_recall", 0.60), ("guard_off_recall", 0.35)],
        ),
    )
    .expect("append");
    let out = bench_check(&path);
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        !out.status.success(),
        "regressed history must fail: {stdout}"
    );
    assert!(stdout.contains("REGRESSED"), "{stdout}");
    assert!(stderr.contains("bench_check FAILED"), "{stderr}");
}

#[test]
fn bench_check_rejects_missing_empty_and_corrupt_ledgers() {
    let missing = temp_ledger("missing");
    let out = bench_check(&missing);
    assert!(!out.status.success(), "missing ledger must fail");

    let empty = temp_ledger("empty");
    std::fs::create_dir_all(empty.parent().expect("has parent")).expect("mkdir");
    std::fs::write(&empty, "\n\n").expect("write");
    let out = bench_check(&empty);
    assert!(!out.status.success(), "empty ledger must fail");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("no records"),
        "diagnostic names the problem"
    );

    let corrupt = temp_ledger("corrupt");
    std::fs::create_dir_all(corrupt.parent().expect("has parent")).expect("mkdir");
    std::fs::write(&corrupt, "{\"kind\":\"a\",\"m\":1.0}\nnot json\n").expect("write");
    let out = bench_check(&corrupt);
    assert!(!out.status.success(), "corrupt ledger must fail");
}
