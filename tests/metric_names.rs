//! Every metric and span the workspace emits must be declared in
//! [`cooper_telemetry::names`]. The test drives the heaviest emitting
//! path — a governed, guarded, lossy fleet run — snapshots the global
//! registry, and fails on any name the const module does not know.
//! One test function owns the global registry (this file is its own
//! test binary).

use cooper_core::fleet::{straight_trajectory, FleetConfig, FleetSimulation, FleetVehicle};
use cooper_core::{AlignmentGuardConfig, CooperPipeline, GovernorConfig};
use cooper_lidar_sim::{scenario, BeamModel, FaultPlan};
use cooper_pointcloud::roi::RoiCategory;
use cooper_spod::{SpodConfig, SpodDetector};
use cooper_telemetry::names;
use cooper_v2x::{
    ArqConfig, BandwidthGovernor, DsrcChannel, DsrcConfig, GilbertElliott, LossModel, SharedMedium,
};

#[test]
fn every_emitted_name_is_registered() {
    let scene = scenario::tj_scenario_1();
    let vehicles: Vec<FleetVehicle> = scene
        .observers
        .iter()
        .enumerate()
        .map(|(i, pose)| FleetVehicle {
            id: i as u32 + 1,
            trajectory: straight_trajectory(*pose, 1.0, 3),
            beams: BeamModel::vlp16().with_azimuth_steps(900),
        })
        .collect();
    let sim = FleetSimulation::new(
        scene.world.clone(),
        vehicles,
        FleetConfig {
            seed: 2024,
            threads: Some(2),
            fault_plan: Some(FaultPlan::parse("2:drift:8.0@0..3").expect("valid plan")),
            ..FleetConfig::default()
        },
    );
    let pipeline = CooperPipeline::new(SpodDetector::new(SpodConfig::default()))
        .with_alignment_guard(AlignmentGuardConfig::default());
    // Governed + delta-encode + lossy ARQ medium: exercises the
    // governor counters, codec ratio values, ARQ counters, partial
    // salvage, and the alignment guard in one run.
    let mut medium = SharedMedium::new(DsrcChannel::new(DsrcConfig {
        data_rate: cooper_v2x::DataRate::Mbps3,
        loss_model: LossModel::GilbertElliott(GilbertElliott::from_loss_rate(0.1)),
        ..DsrcConfig::default()
    }))
    .with_seed(7)
    .with_arq(ArqConfig::default());
    // Feature preference + feature tier: the v3 codec ratio, feature
    // send counters and the BEV-fusion span all get emitted too.
    let mut policy = BandwidthGovernor::new(RoiCategory::FullFrame).with_features();
    let governor = GovernorConfig {
        delta_encode: true,
        keyframe_every: 2,
        features: true,
        ..GovernorConfig::default()
    };

    cooper_telemetry::reset();
    cooper_telemetry::enable();
    let (reports, _) = sim.run_governed(&pipeline, 3, &mut medium, &mut policy, &governor);
    let snapshot = cooper_telemetry::snapshot();
    cooper_telemetry::disable();
    cooper_telemetry::reset();

    assert_eq!(reports.len(), 3);
    assert!(!snapshot.spans.is_empty(), "run recorded no spans");
    assert!(!snapshot.counters.is_empty(), "run recorded no counters");
    for (name, _) in &snapshot.counters {
        assert!(
            names::is_registered_metric(name),
            "unregistered counter {name:?} — declare it in cooper_telemetry::names"
        );
    }
    for (name, _) in &snapshot.gauges {
        assert!(
            names::is_registered_metric(name),
            "unregistered gauge {name:?} — declare it in cooper_telemetry::names"
        );
    }
    for value in &snapshot.values {
        assert!(
            names::is_registered_metric(&value.name),
            "unregistered value histogram {:?} — declare it in cooper_telemetry::names",
            value.name
        );
    }
    for span in &snapshot.spans {
        assert!(
            names::is_registered_span(&span.path),
            "unregistered span path {:?} — declare its segments in cooper_telemetry::names",
            span.path
        );
    }
}
