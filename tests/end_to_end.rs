//! End-to-end integration tests: scenario → scan → exchange → align →
//! fuse → detect, across all workspace crates.

use std::sync::OnceLock;

use cooper_core::report::{evaluate_pair, evaluate_scenario, EvaluationConfig};
use cooper_core::{CooperPipeline, ExchangePacket};
use cooper_geometry::GpsFix;
use cooper_lidar_sim::{scenario, GpsImuModel, LidarScanner, PoseEstimate};
use cooper_spod::train::TrainingConfig;
use cooper_spod::SpodDetector;

fn pipeline() -> &'static CooperPipeline {
    static PIPELINE: OnceLock<CooperPipeline> = OnceLock::new();
    PIPELINE.get_or_init(|| {
        CooperPipeline::new(SpodDetector::train_default(&TrainingConfig::standard()))
    })
}

fn origin() -> GpsFix {
    GpsFix::new(33.2075, -97.1526, 190.0)
}

#[test]
fn packet_survives_serialization_across_the_pipeline() {
    let scene = scenario::tj_scenario_1();
    let scanner = LidarScanner::new(scene.kind.beam_model());
    let (rx, tx) = scene.pairs[0];
    let local = scanner.scan(&scene.world, &scene.observers[rx], 1);
    let remote = scanner.scan(&scene.world, &scene.observers[tx], 2);
    let est_rx = PoseEstimate::from_pose(&scene.observers[rx], &origin());
    let est_tx = PoseEstimate::from_pose(&scene.observers[tx], &origin());

    // Serialize and re-parse the packet as a real receiver would.
    let packet = ExchangePacket::build(tx as u32, 0, &remote, est_tx).expect("encodes");
    let parsed = ExchangePacket::from_bytes(&packet.to_bytes()).expect("parses");
    assert_eq!(parsed.cloud().expect("decodes").len(), remote.len());

    let result = pipeline().perceive(&local, &est_rx, &[parsed], &origin());
    assert_eq!(result.fused_cloud.len(), local.len() + remote.len());
    assert_eq!(result.packets_fused, 1);
}

#[test]
fn cooperation_dominates_single_shots_in_t_junction() {
    let scene = scenario::t_junction();
    let eval = evaluate_pair(pipeline(), &scene, 0, &EvaluationConfig::default());
    assert!(
        eval.detected_coop() >= eval.detected_a().max(eval.detected_b()),
        "coop {} < best single {}",
        eval.detected_coop(),
        eval.detected_a().max(eval.detected_b())
    );
    // The T-junction is built so cooperation discovers something.
    assert!(
        eval.detected_coop() > eval.detected_a().min(eval.detected_b()),
        "cooperation added nothing"
    );
}

#[test]
fn all_scenarios_evaluate_without_regression_in_counts() {
    let config = EvaluationConfig::default();
    let mut total_cases = 0;
    let mut dominated = 0;
    for scene in scenario::all_scenarios() {
        for eval in evaluate_scenario(pipeline(), &scene, &config) {
            total_cases += 1;
            if eval.detected_coop() >= eval.detected_a().max(eval.detected_b()) {
                dominated += 1;
            }
        }
    }
    // The paper: "the amount of detected cars in cooperative data is
    // equal to or exceeds the number in individual single shots." The
    // reproduction's small detector occasionally drops one car when the
    // fused density shifts; require dominance in at least 85 % of the
    // 19 cases (the observed rate is 17–18/19).
    assert!(
        dominated as f64 >= total_cases as f64 * 0.85,
        "cooperation dominated in only {dominated}/{total_cases} cases"
    );
}

#[test]
fn hard_objects_are_discovered_by_cooperation() {
    // Pooled over the T&J scenarios there must exist cars detected
    // cooperatively that neither single shot found (Figure 5's
    // "unmarked vehicles"; the premise of the hard class in Figure 8).
    let config = EvaluationConfig::default();
    let mut hard_discoveries = 0;
    for scene in scenario::tj_scenarios() {
        for eval in evaluate_scenario(pipeline(), &scene, &config) {
            for imp in eval.improvements() {
                if imp.difficulty == cooper_core::CooperDifficulty::Hard {
                    hard_discoveries += 1;
                    // Hard improvements are reported as raw score %.
                    assert!(imp.increase_percent >= 50.0 * 0.0);
                }
            }
        }
    }
    assert!(hard_discoveries > 0, "no hard object was ever discovered");
}

#[test]
fn realistic_gps_noise_preserves_cooperation() {
    let scene = scenario::tj_scenario_1();
    let ideal = evaluate_pair(pipeline(), &scene, 0, &EvaluationConfig::default());
    let noisy = evaluate_pair(
        pipeline(),
        &scene,
        0,
        &EvaluationConfig {
            sensor_model: GpsImuModel::realistic(),
            ..EvaluationConfig::default()
        },
    );
    // <10 cm GPS error must not collapse detection: within 2 cars of
    // the ideal-pose result.
    assert!(
        noisy.detected_coop() + 2 >= ideal.detected_coop(),
        "noisy {} vs ideal {}",
        noisy.detected_coop(),
        ideal.detected_coop()
    );
}

#[test]
fn detection_scores_are_valid_probabilities() {
    let scene = scenario::stop_sign();
    let eval = evaluate_pair(pipeline(), &scene, 0, &EvaluationConfig::default());
    for row in &eval.rows {
        for score in [row.score_a, row.score_b, row.score_coop]
            .into_iter()
            .flatten()
        {
            assert!((0.0..=1.0).contains(&score), "score {score}");
        }
    }
}

#[test]
fn fused_cloud_detection_equals_direct_detection() {
    // Detecting on the fused cloud via the pipeline must equal running
    // the detector directly on the same cloud — fusion adds nothing but
    // points.
    let scene = scenario::tj_scenario_3();
    let scanner = LidarScanner::new(scene.kind.beam_model());
    let (rx, tx) = scene.pairs[0];
    let local = scanner.scan(&scene.world, &scene.observers[rx], 5);
    let remote = scanner.scan(&scene.world, &scene.observers[tx], 6);
    let est_rx = PoseEstimate::from_pose(&scene.observers[rx], &origin());
    let est_tx = PoseEstimate::from_pose(&scene.observers[tx], &origin());
    let packet = ExchangePacket::build(1, 0, &remote, est_tx).expect("encodes");
    let result = pipeline().perceive(&local, &est_rx, &[packet], &origin());
    let direct = pipeline().perceive_single(&result.fused_cloud);
    assert_eq!(result.detections.len(), direct.len());
}

#[test]
fn demand_driven_roi_requests_recover_occluded_objects_cheaply() {
    use cooper_core::{requests_from_blind_zones, respond_to_roi_request};

    let scene = scenario::t_junction();
    let scanner = LidarScanner::new(scene.kind.beam_model());
    let (rx, tx) = scene.pairs[0];
    let local = scanner.scan(&scene.world, &scene.observers[rx], 1);
    let remote = scanner.scan(&scene.world, &scene.observers[tx], 2);
    let est_rx = PoseEstimate::from_pose(&scene.observers[rx], &origin());
    let est_tx = PoseEstimate::from_pose(&scene.observers[tx], &origin());

    // The receiver identifies its blocked wedges (the corner buildings).
    let requests = requests_from_blind_zones(
        rx as u32,
        &local,
        est_rx,
        40.0,
        4f64.to_radians(),
        60.0,
        1.73,
    );
    assert!(!requests.is_empty(), "T-junction must produce blind zones");

    // The transmitter answers each request with only the wedge content.
    let mut packets = Vec::new();
    let mut demand_bytes = 0;
    for request in &requests {
        let response = respond_to_roi_request(&remote, &est_tx, request, &origin());
        let packet = ExchangePacket::build(tx as u32, 0, &response, est_tx).expect("encodes");
        demand_bytes += packet.wire_size();
        packets.push(packet);
    }
    let full_bytes = ExchangePacket::build(tx as u32, 0, &remote, est_tx)
        .expect("encodes")
        .wire_size();
    assert!(
        (demand_bytes as f64) < 0.8 * full_bytes as f64,
        "demand-driven exchange ({demand_bytes} B) should undercut a full frame ({full_bytes} B)"
    );

    // Fusing only the requested wedges still beats the single shot.
    let single = pipeline().perceive_single(&local);
    let result = pipeline().perceive(&local, &est_rx, &packets, &origin());
    assert!(
        result.detections.len() >= single.len(),
        "demand-driven fusion lost detections: {} vs {}",
        result.detections.len(),
        single.len()
    );
}
