//! Smoke test of the `cooper profile` subcommand's engine: the ranked
//! self-time table must decompose at least 90% of the perceive-phase
//! CPU time into the named SPOD sub-phases, and the exported Chrome
//! trace must be well-formed JSON with per-thread lanes. Calls
//! [`cooper_cli::run_profile`] directly so the assertions run on data,
//! not parsed stdout. One test function owns the global registry (this
//! file is its own test binary).

use cooper_cli::run_profile;
use cooper_telemetry::names;

#[test]
fn profile_decomposes_perceive_and_exports_chrome_trace() {
    let report = run_profile("kitti1", 4, 2, Some(2), 1).expect("profile runs");

    assert_eq!(report.vehicles, 4);
    assert_eq!(report.steps, 2);

    // The acceptance bar: at least 90% of perceive-phase time is
    // attributed to named SPOD sub-phases, so the table answers "where
    // does perceive_us go" rather than hiding it in parent spans.
    assert!(
        report.coverage_pct >= 90.0,
        "SPOD sub-phases cover only {:.1}% of perceive time\n{}",
        report.coverage_pct,
        report.table
    );

    // The ranked table lists every sub-phase.
    for sub in names::SPOD_SUBPHASES {
        assert!(
            report.table.contains(sub),
            "self-time table is missing {sub}:\n{}",
            report.table
        );
    }

    // Chrome trace-event JSON: the `traceEvents` envelope, balanced
    // braces/brackets, thread-name metadata for more than one lane
    // (phase 3 ran on 2 workers plus the coordinating thread), span
    // slices, and per-transfer instant marks that terminate.
    let json = &report.trace_json;
    assert!(json.starts_with("{\"traceEvents\":["), "bad envelope");
    assert!(json.ends_with("]}"), "bad envelope tail");
    for (open, close) in [('{', '}'), ('[', ']')] {
        assert_eq!(
            json.matches(open).count(),
            json.matches(close).count(),
            "unbalanced {open}{close} in trace JSON"
        );
    }
    assert!(report.lane_count >= 2, "expected multi-thread lanes");
    assert!(
        json.contains("\"name\":\"thread_name\""),
        "no lane metadata"
    );
    assert!(
        json.contains("\"args\":{\"name\":\"lane-1\"}"),
        "missing lane-1"
    );
    assert!(json.contains("\"ph\":\"X\""), "no duration slices");
    assert!(json.contains("\"ph\":\"i\""), "no instant marks");
    assert!(json.contains("\"trace\":\"s0:"), "no step-0 transfer marks");
    assert!(json.contains("\"terminal\":true"), "no terminal marks");
    // Every SPOD sub-phase shows up as a slice somewhere in the trace.
    for sub in names::SPOD_SUBPHASES {
        assert!(json.contains(sub), "trace has no {sub} slice");
    }
}
